//! Online (streaming) analysis — the paper's stated future work:
//! "While MC-Checker analyzes the traces offline, we can extend it to
//! perform online analysis by leveraging streaming processing algorithms"
//! (§VII-B).
//!
//! The key enabler is the concurrent-region theorem of §III-B: operations
//! separated by a global synchronization can never conflict. The
//! [`StreamingChecker`] therefore buffers events only until every rank has
//! passed its next global synchronization point, analyzes that region
//! with the ordinary pipeline, emits its findings, and discards the
//! region's events — memory stays bounded by the largest region plus the
//! (small) registry events that must persist (window/datatype/group
//! definitions).
//!
//! # Batch equivalence
//!
//! Findings are reported exactly as the batch [`AnalysisSession`] would
//! report them — same event references, same epoch numbers, same
//! canonical order, same surviving representative per deduplicated
//! conflict — so a streamed report and a batch report over the same
//! trace are byte-comparable. Three mechanisms make this work:
//!
//! * every finding's [`EventRef`] is remapped from its region-local index
//!   back to the event's position in the rank's full stream;
//! * epochs are numbered by **per-rank ordinal** (their position among
//!   the rank's epochs), which is invariant under splitting the trace at
//!   global synchronization, and each flushed region advances a per-rank
//!   base so ordinals stay continuous across regions;
//! * deduplication keeps, for each source-level conflict, the occurrence
//!   with the smallest [`ConsistencyError::canonical_key`] seen in *any*
//!   region — the same representative the batch canonical
//!   sort-then-dedup selects — and [`StreamingChecker::finish`] returns
//!   the survivors in canonical order.
//!
//! # Bounded memory
//!
//! A stream that never reaches a global synchronization would otherwise
//! buffer without bound. [`StreamingChecker::set_high_watermark`] caps
//! the buffer: when it fills and no region is flushable, the checker
//! *evicts* — it analyzes everything buffered as one partial region in
//! degraded mode (epoch closes synthesized via [`crate::degrade`]),
//! drops the buffer, and downgrades the session to
//! [`Confidence::Degraded`], since a conflict between an evicted event
//! and a later one can no longer be observed.
//!
//! Known limitation (inherent to discarding flushed regions): an epoch
//! that *spans* a global synchronization point is analyzed piecewise, so
//! an intra-epoch pair straddling the boundary is missed. Well-formed
//! programs close epochs before global synchronization; the batch
//! checker remains the completeness reference.

use crate::report::{Confidence, ConsistencyError, ErrorScope, OpInfo};
use crate::session::AnalysisSession;
use mcc_types::{CommId, Event, EventKind, EventRef, Rank, SourceLoc, Trace, TraceBuilder, WinId};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

/// Why the streaming checker rejected a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A checker must cover at least one rank.
    ZeroRanks,
    /// An event named a rank outside `0..nprocs`.
    RankOutOfRange {
        /// The offending rank.
        rank: u32,
        /// The checker's world size.
        nprocs: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::ZeroRanks => f.write_str("a streaming checker needs at least one rank"),
            StreamError::RankOutOfRange { rank, nprocs } => {
                write!(f, "event names rank {rank}, but the session covers {nprocs} rank(s)")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Estimated resident cost, in bytes, of one buffered event: the inline
/// `(EventKind, SourceLoc)` pair plus every heap allocation hanging off
/// it (location strings, datatype field tables, group rank lists). The
/// estimate is deterministic — a pure function of the event, never of
/// allocator behavior — so any byte-denominated policy built on it
/// (quotas, the daemon's memory accountant) makes the same decisions on
/// every run and on journal replay.
pub fn event_cost(kind: &EventKind, loc: &SourceLoc) -> usize {
    let heap = match kind {
        EventKind::TypeStruct { fields, .. } => {
            fields.capacity() * std::mem::size_of::<(u64, u32, mcc_types::DatatypeId)>()
        }
        EventKind::GroupIncl { ranks, .. } => ranks.capacity() * std::mem::size_of::<u32>(),
        _ => 0,
    };
    std::mem::size_of::<(EventKind, SourceLoc)>() + loc.file.len() + loc.func.len() + heap
}

/// Incremental, bounded-memory checker.
pub struct StreamingChecker {
    nprocs: usize,
    session: AnalysisSession,
    /// Registry events that must survive region flushes, per rank.
    ctx_events: Vec<Vec<(EventKind, SourceLoc)>>,
    /// Buffered (unflushed) events per rank.
    buf: Vec<Vec<(EventKind, SourceLoc)>>,
    /// Boundary (global-sync) indices inside `buf`, per rank.
    boundaries: Vec<Vec<usize>>,
    /// Window → communicator table learned from WinCreate events.
    win_comm: HashMap<WinId, CommId>,
    /// Communicators known to span all ranks.
    world_comms: HashSet<CommId>,
    /// Canonical-minimum finding per dedup key, event refs remapped to
    /// the full stream. Bounded by the number of distinct source-level
    /// conflicts, not by trace length.
    best: HashMap<String, ConsistencyError>,
    /// Events already consumed (flushed or evicted) per rank — the global
    /// stream index of each rank's first buffered event.
    consumed: Vec<usize>,
    /// Per-rank epoch ordinal base: epochs owned by each rank in regions
    /// analyzed so far.
    epoch_base: Vec<u32>,
    /// Buffered-event cap; exceeding it with no flushable region evicts.
    high_watermark: Option<usize>,
    degraded: bool,
    /// A failure notification passed through the stream; the failed
    /// rank's unflushed tail is handled by the failure-aware pipeline at
    /// the final drain.
    recovered: bool,
    /// Regions flushed so far.
    pub regions_flushed: usize,
    /// High-water mark of buffered events (the memory bound).
    pub peak_buffered: usize,
    /// Estimated bytes currently buffered (see [`event_cost`]).
    buffered_bytes: usize,
    /// High-water mark of [`Self::buffered_bytes`].
    pub peak_buffered_bytes: usize,
    /// Partial regions force-analyzed at the high watermark.
    pub evictions: usize,
    /// When the first event arrived — the start of the first-finding
    /// latency clock (ROADMAP's time-to-first-finding metric).
    first_event_at: Option<Instant>,
    /// Whether the first-finding latency was already observed.
    first_finding_seen: bool,
}

impl StreamingChecker {
    /// Creates a streaming checker for `nprocs` ranks with the default
    /// (paper-configuration) analysis session.
    pub fn new(nprocs: usize) -> Result<Self, StreamError> {
        Self::with_session(nprocs, AnalysisSession::new())
    }

    /// Creates a streaming checker that analyzes regions with a custom
    /// session (thread count, engine, ...).
    pub fn with_session(nprocs: usize, session: AnalysisSession) -> Result<Self, StreamError> {
        if nprocs == 0 {
            return Err(StreamError::ZeroRanks);
        }
        let mut world_comms = HashSet::new();
        world_comms.insert(CommId::WORLD);
        Ok(Self {
            nprocs,
            session,
            ctx_events: vec![Vec::new(); nprocs],
            buf: vec![Vec::new(); nprocs],
            boundaries: vec![Vec::new(); nprocs],
            win_comm: HashMap::new(),
            world_comms,
            best: HashMap::new(),
            consumed: vec![0; nprocs],
            epoch_base: vec![0; nprocs],
            high_watermark: None,
            degraded: false,
            recovered: false,
            regions_flushed: 0,
            peak_buffered: 0,
            buffered_bytes: 0,
            peak_buffered_bytes: 0,
            evictions: 0,
            first_event_at: None,
            first_finding_seen: false,
        })
    }

    /// Caps the number of buffered events. When the cap is reached and no
    /// region is flushable, the buffer is analyzed as a degraded partial
    /// region and dropped instead of growing without bound. `None`
    /// removes the cap.
    pub fn set_high_watermark(&mut self, cap: Option<usize>) {
        self.high_watermark = cap.map(|c| c.max(1));
    }

    /// Events currently buffered across all ranks.
    pub fn buffered(&self) -> usize {
        self.buf.iter().map(Vec::len).sum()
    }

    /// Estimated bytes currently buffered across all ranks — the
    /// per-event [`event_cost`] summed over every unflushed event. This
    /// is what the daemon's memory accountant charges against its global
    /// ceiling; it is maintained incrementally, so reading it is O(1).
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes
    }

    /// Whether any eviction or degraded analysis happened; if so, the
    /// final findings carry [`Confidence::Degraded`].
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Whether a failure notification was streamed: the session covers a
    /// survivable rank failure, and the overall verdict is
    /// [`Confidence::Recovered`] (unless also degraded, which wins).
    pub fn is_recovered(&self) -> bool {
        self.recovered
    }

    /// The session's overall confidence so far: degraded beats recovered
    /// beats complete.
    pub fn confidence(&self) -> Confidence {
        if self.is_degraded() {
            Confidence::Degraded
        } else if self.is_recovered() {
            Confidence::Recovered
        } else {
            Confidence::Complete
        }
    }

    /// Distinct source-level conflicts found so far.
    pub fn findings_so_far(&self) -> usize {
        self.best.len()
    }

    fn is_registry(kind: &EventKind) -> bool {
        matches!(
            kind,
            EventKind::WinCreate { .. }
                | EventKind::TypeContiguous { .. }
                | EventKind::TypeVector { .. }
                | EventKind::TypeStruct { .. }
                | EventKind::GroupIncl { .. }
                | EventKind::CommGroup { .. }
                | EventKind::CommCreate { .. }
        )
    }

    fn is_global_sync(&self, kind: &EventKind) -> bool {
        match kind {
            EventKind::Barrier { comm }
            | EventKind::Bcast { comm, .. }
            | EventKind::Reduce { comm, .. }
            | EventKind::Allreduce { comm, .. } => self.world_comms.contains(comm),
            EventKind::Fence { win } | EventKind::WinFree { win } => {
                self.win_comm.get(win).is_some_and(|c| self.world_comms.contains(c))
            }
            EventKind::WinCreate { comm, .. } => self.world_comms.contains(comm),
            _ => false,
        }
    }

    /// Feeds one event from `rank`'s instrumentation stream. Returns any
    /// findings completed by this event (i.e. the analysis of a region
    /// that just became flushable, or of a partial region evicted at the
    /// high watermark).
    pub fn push(
        &mut self,
        rank: Rank,
        kind: EventKind,
        loc: SourceLoc,
    ) -> Result<Vec<ConsistencyError>, StreamError> {
        let r = rank.idx();
        if r >= self.nprocs {
            return Err(StreamError::RankOutOfRange { rank: rank.0, nprocs: self.nprocs });
        }
        self.session.recorder().add("stream_events_total", 1);
        if self.first_event_at.is_none() {
            self.first_event_at = Some(Instant::now());
        }
        // Maintain the lightweight registry needed for boundary detection.
        match &kind {
            EventKind::WinCreate { win, comm, .. } => {
                self.win_comm.insert(*win, *comm);
            }
            EventKind::CommCreate { new: Some(_c), .. } => {
                // Sub-communicators never span all ranks unless they
                // mirror the world; conservatively treat them as local
                // (their collectives do not flush regions).
            }
            _ => {}
        }
        if matches!(kind, EventKind::RankFailed { .. }) {
            self.recovered = true;
        }
        if self.is_global_sync(&kind) {
            self.boundaries[r].push(self.buf[r].len());
        }
        self.buffered_bytes += event_cost(&kind, &loc);
        self.peak_buffered_bytes = self.peak_buffered_bytes.max(self.buffered_bytes);
        self.buf[r].push((kind, loc));
        let buffered = self.buffered();
        self.peak_buffered = self.peak_buffered.max(buffered);

        if self.boundaries.iter().all(|b| !b.is_empty()) {
            Ok(self.flush_region())
        } else if self.high_watermark.is_some_and(|cap| buffered >= cap) {
            Ok(self.evict())
        } else {
            Ok(Vec::new())
        }
    }

    /// Replays a recorded event stream — the recovery entry point. The
    /// events must be in their original ingest order (e.g. read back
    /// from a session journal); pushing them one by one rebuilds the
    /// checker's exact mid-stream state, so a caller that sets the same
    /// high watermark *before* replaying gets the same flushes and
    /// evictions — and ultimately the byte-identical report — the
    /// uninterrupted run would have produced. Returns the number of
    /// events replayed.
    pub fn replay<I>(&mut self, events: I) -> Result<u64, StreamError>
    where
        I: IntoIterator<Item = (Rank, EventKind, SourceLoc)>,
    {
        let mut n = 0u64;
        for (rank, kind, loc) in events {
            self.push(rank, kind, loc)?;
            n += 1;
        }
        Ok(n)
    }

    /// Advances each rank's consumed-event count after a drain.
    fn advance_consumed(&mut self, cuts: &[usize]) {
        for (c, n) in self.consumed.iter_mut().zip(cuts) {
            *c += n;
        }
    }

    /// Cuts one region (through each rank's first boundary) and analyzes
    /// it together with the persistent registry events.
    fn flush_region(&mut self) -> Vec<ConsistencyError> {
        let _span = self.session.recorder().span("stream.flush_region");
        let flush_started = Instant::now();
        self.session.recorder().add("stream_regions_flushed_total", 1);
        let ctx_counts: Vec<usize> = self.ctx_events.iter().map(Vec::len).collect();
        let mut b = TraceBuilder::new(self.nprocs);
        let mut cuts = vec![0usize; self.nprocs];
        #[allow(clippy::needless_range_loop)] // r indexes four parallel per-rank arrays
        for r in 0..self.nprocs {
            let rank = Rank(r as u32);
            for (kind, loc) in &self.ctx_events[r] {
                b.push_at(rank, kind.clone(), loc.clone());
            }
            let cut = self.boundaries[r][0] + 1;
            cuts[r] = cut;
            let rest = self.buf[r].split_off(cut);
            for (kind, loc) in self.buf[r].drain(..) {
                self.buffered_bytes = self.buffered_bytes.saturating_sub(event_cost(&kind, &loc));
                if Self::is_registry(&kind) {
                    self.ctx_events[r].push((kind.clone(), loc.clone()));
                }
                b.push_at(rank, kind, loc);
            }
            self.buf[r] = rest;
            self.boundaries[r].remove(0);
            for idx in self.boundaries[r].iter_mut() {
                *idx -= cut;
            }
        }
        self.regions_flushed += 1;
        let fresh = self.analyze_region(&b.build(), &ctx_counts, false);
        self.advance_consumed(&cuts);
        self.session
            .recorder()
            .observe(mcc_obs::names::REGION_FLUSH_US, flush_started.elapsed().as_micros() as u64);
        fresh
    }

    /// Drains *everything* buffered into one trace (no boundary needed) —
    /// the final drain of `finish`, and the partial region of an
    /// eviction or a degraded salvage.
    fn drain_all(&mut self) -> (Trace, Vec<usize>, Vec<usize>) {
        let ctx_counts: Vec<usize> = self.ctx_events.iter().map(Vec::len).collect();
        let mut b = TraceBuilder::new(self.nprocs);
        let mut cuts = vec![0usize; self.nprocs];
        #[allow(clippy::needless_range_loop)] // r indexes four parallel per-rank arrays
        for r in 0..self.nprocs {
            let rank = Rank(r as u32);
            for (kind, loc) in &self.ctx_events[r] {
                b.push_at(rank, kind.clone(), loc.clone());
            }
            cuts[r] = self.buf[r].len();
            for (kind, loc) in self.buf[r].drain(..) {
                self.buffered_bytes = self.buffered_bytes.saturating_sub(event_cost(&kind, &loc));
                if Self::is_registry(&kind) {
                    self.ctx_events[r].push((kind.clone(), loc.clone()));
                }
                b.push_at(rank, kind, loc);
            }
            self.boundaries[r].clear();
        }
        (b.build(), ctx_counts, cuts)
    }

    /// Analyzes everything buffered as a degraded partial region and
    /// drops it. Called at the high watermark; conflicts between evicted
    /// events and later ones can no longer be observed, so the session is
    /// degraded from here on.
    fn evict(&mut self) -> Vec<ConsistencyError> {
        let _span = self.session.recorder().span("stream.evict");
        self.session.recorder().add("stream_evictions_total", 1);
        mcc_obs::log!(
            Warn,
            "streaming buffer hit the high watermark with no flushable region; \
             evicting {} buffered event(s) in degraded mode",
            self.buffered()
        );
        self.degraded = true;
        self.evictions += 1;
        let (trace, ctx_counts, cuts) = self.drain_all();
        let fresh = self.analyze_region(&trace, &ctx_counts, true);
        self.advance_consumed(&cuts);
        fresh
    }

    /// Remaps a finding's event reference from its region-local index to
    /// the event's position in the rank's full stream, and its epoch
    /// index to the global per-rank ordinal. Findings never reference the
    /// replayed registry events at the front of a region trace (only RMA
    /// operations and local accesses appear in findings), so subtracting
    /// the replay prefix is always in range.
    fn remap_op(&self, o: &mut OpInfo, ctx_counts: &[usize]) {
        let r = o.rank.idx();
        debug_assert!(o.ev.idx >= ctx_counts[r], "findings never cite replayed registry events");
        let global = self.consumed[r] + o.ev.idx.saturating_sub(ctx_counts[r]);
        o.ev = EventRef::new(o.rank, global);
        if let Some(e) = o.epoch.as_mut() {
            *e += self.epoch_base[r];
        }
    }

    /// Runs the batch pipeline over one region trace, remaps the findings
    /// into full-stream coordinates, and merges them into the
    /// canonical-minimum table. Returns the findings whose dedup key was
    /// new, in canonical order.
    fn analyze_region(
        &mut self,
        trace: &Trace,
        ctx_counts: &[usize],
        degraded: bool,
    ) -> Vec<ConsistencyError> {
        let report =
            if degraded { self.session.run_with_repair(trace).0 } else { self.session.run(trace) };
        let mut fresh = Vec::new();
        for mut e in report.diagnostics {
            self.remap_op(&mut e.a, ctx_counts);
            self.remap_op(&mut e.b, ctx_counts);
            if self.degraded {
                e.confidence = Confidence::Degraded;
            }
            match self.best.entry(e.dedup_key()) {
                Entry::Vacant(v) => {
                    v.insert(e.clone());
                    fresh.push(e);
                }
                Entry::Occupied(mut o) => {
                    // Keep the canonically smallest occurrence — the same
                    // representative the batch sort-then-dedup keeps.
                    if e.canonical_key() < o.get().canonical_key() {
                        o.insert(e);
                    }
                }
            }
        }
        for (r, n) in report.stats.epochs_per_rank.iter().enumerate() {
            self.epoch_base[r] += *n as u32;
        }
        fresh.sort_by_key(batch_order);
        if !fresh.is_empty() && !self.first_finding_seen {
            self.first_finding_seen = true;
            if let Some(t0) = self.first_event_at {
                self.session.recorder().observe(
                    mcc_obs::names::FIRST_FINDING_LATENCY_US,
                    t0.elapsed().as_micros() as u64,
                );
            }
        }
        fresh
    }

    /// The accumulated findings in canonical order.
    fn collect(self) -> Vec<ConsistencyError> {
        let degraded = self.degraded;
        let mut out: Vec<ConsistencyError> = self.best.into_values().collect();
        out.sort_by_key(batch_order);
        if degraded {
            for e in &mut out {
                e.confidence = Confidence::Degraded;
            }
        }
        out
    }

    /// Flushes whatever remains and returns all findings in canonical
    /// order — byte-comparable with the batch report when the stream was
    /// complete and no eviction happened.
    pub fn finish(mut self) -> Vec<ConsistencyError> {
        let _span = self.session.recorder().span("stream.finish");
        if self.buffered() > 0 {
            let (trace, ctx_counts, cuts) = self.drain_all();
            self.analyze_region(&trace, &ctx_counts, false);
            self.advance_consumed(&cuts);
        }
        self.collect()
    }

    /// Salvages a session that ended abnormally (client died mid-stream,
    /// idle timeout): the remaining buffer is analyzed in degraded mode —
    /// truncated epochs get synthesized closes via [`crate::degrade`] —
    /// and **every** finding is downgraded to [`Confidence::Degraded`],
    /// because the unseen tail could have contained synchronization that
    /// changes any verdict.
    pub fn finish_degraded(mut self) -> Vec<ConsistencyError> {
        let _span = self.session.recorder().span("stream.finish");
        self.degraded = true;
        if self.buffered() > 0 {
            let (trace, ctx_counts, cuts) = self.drain_all();
            self.analyze_region(&trace, &ctx_counts, true);
            self.advance_consumed(&cuts);
        }
        self.collect()
    }

    /// Convenience: streams a complete trace through the checker (used by
    /// the equivalence tests and benches).
    pub fn run_over(trace: &Trace) -> (Vec<ConsistencyError>, StreamingStats) {
        let mut sc = StreamingChecker::new(trace.nprocs()).expect("trace has at least one rank");
        // Interleave ranks round-robin, as events would arrive online.
        let mut idx = vec![0usize; trace.nprocs()];
        let mut remaining: usize = trace.total_events();
        while remaining > 0 {
            #[allow(clippy::needless_range_loop)] // r doubles as the rank id
            for r in 0..trace.nprocs() {
                if idx[r] < trace.procs[r].events.len() {
                    let ev: &Event = &trace.procs[r].events[idx[r]];
                    let loc = trace.procs[r].loc(ev.loc);
                    sc.push(Rank(r as u32), ev.kind.clone(), loc).expect("rank is in range");
                    idx[r] += 1;
                    remaining -= 1;
                }
            }
        }
        let stats = StreamingStats {
            regions_flushed: sc.regions_flushed,
            peak_buffered: sc.peak_buffered,
            peak_buffered_bytes: sc.peak_buffered_bytes,
            total_events: trace.total_events(),
            evictions: sc.evictions,
        };
        (sc.finish(), stats)
    }
}

/// The batch report's total order. The batch pipeline stably sorts by
/// [`ConsistencyError::canonical_key`] over findings generated intra
/// before inter, so when one event pair yields both an intra-epoch and a
/// cross-process finding (equal canonical keys, distinct dedup keys) the
/// intra-epoch one comes first. The streaming checker accumulates
/// findings in a hash map, which loses that generation order, so the
/// scope class is restored here as an explicit tiebreaker.
fn batch_order(e: &ConsistencyError) -> ((EventRef, EventRef, u64, u64), u8) {
    let class = match e.scope {
        ErrorScope::IntraEpoch { .. } => 0,
        ErrorScope::CrossProcess { .. } => 1,
    };
    (e.canonical_key(), class)
}

/// Memory-profile statistics of a streaming run.
#[derive(Debug, Clone, Copy)]
pub struct StreamingStats {
    /// Regions flushed before the final drain.
    pub regions_flushed: usize,
    /// Maximum simultaneously buffered events.
    pub peak_buffered: usize,
    /// Maximum simultaneously buffered bytes (estimated).
    pub peak_buffered_bytes: usize,
    /// Events processed in total.
    pub total_events: usize,
    /// Partial regions force-analyzed at the high watermark.
    pub evictions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_types::{DatatypeId, RmaKind, RmaOp};

    fn put(target: u32) -> EventKind {
        EventKind::Rma(RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(target),
            origin_addr: 0x200,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: 0,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        })
    }

    /// Many fence-separated rounds, one conflict in round 5.
    fn rounds_trace(rounds: usize) -> Trace {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        for round in 0..rounds {
            if round == 5 {
                b.push(Rank(0), put(1));
                b.push(Rank(1), EventKind::Store { addr: 0x40, len: 4 });
            } else {
                b.push(Rank(0), put(1));
            }
            for r in 0..2u32 {
                b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            }
        }
        b.build()
    }

    #[test]
    fn zero_ranks_rejected() {
        assert_eq!(StreamingChecker::new(0).err(), Some(StreamError::ZeroRanks));
        assert!(StreamError::ZeroRanks.to_string().contains("at least one rank"));
    }

    #[test]
    fn out_of_range_rank_rejected() {
        let mut sc = StreamingChecker::new(2).unwrap();
        let err = sc.push(Rank(2), put(1), SourceLoc::unknown()).unwrap_err();
        assert_eq!(err, StreamError::RankOutOfRange { rank: 2, nprocs: 2 });
        assert!(err.to_string().contains("rank 2"));
    }

    #[test]
    fn streaming_matches_batch_exactly() {
        // Not just the same dedup keys: the same findings — event refs in
        // full-stream coordinates, per-rank epoch ordinals, canonical
        // order, canonical representative.
        let trace = rounds_trace(12);
        let batch = AnalysisSession::new().run(&trace);
        let (streamed, stats) = StreamingChecker::run_over(&trace);
        assert_eq!(streamed, batch.diagnostics);
        assert!(stats.regions_flushed >= 10, "regions flushed incrementally");
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn memory_stays_bounded() {
        // 100 rounds: the peak buffer must stay near one round's worth of
        // events, far below the total.
        let trace = rounds_trace(100);
        let (_, stats) = StreamingChecker::run_over(&trace);
        assert!(
            stats.peak_buffered * 4 < stats.total_events,
            "peak {} vs total {}",
            stats.peak_buffered,
            stats.total_events
        );
    }

    #[test]
    fn incremental_findings_surface_early() {
        let trace = rounds_trace(12);
        let mut sc = StreamingChecker::new(2).unwrap();
        let mut found_at = None;
        let mut pushed = 0usize;
        let mut idx = [0usize; 2];
        'outer: loop {
            let mut progressed = false;
            #[allow(clippy::needless_range_loop)] // r doubles as the rank id
            for r in 0..2 {
                if idx[r] < trace.procs[r].events.len() {
                    let ev = &trace.procs[r].events[idx[r]];
                    let loc = trace.procs[r].loc(ev.loc);
                    let fresh = sc.push(Rank(r as u32), ev.kind.clone(), loc).unwrap();
                    idx[r] += 1;
                    pushed += 1;
                    progressed = true;
                    if !fresh.is_empty() {
                        found_at = Some(pushed);
                        break 'outer;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        let total = trace.total_events();
        let at = found_at.expect("conflict reported during the stream");
        assert!(at < total, "finding surfaced before the end ({at}/{total})");
    }

    #[test]
    fn clean_stream_reports_nothing() {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let (findings, _) = StreamingChecker::run_over(&b.build());
        assert!(findings.is_empty());
    }

    /// A stream with no global synchronization at all: the high watermark
    /// must bound memory by evicting partial regions, and the result is
    /// degraded — never an unbounded buffer.
    #[test]
    fn high_watermark_evicts_and_degrades() {
        let mut sc = StreamingChecker::new(2).unwrap();
        sc.set_high_watermark(Some(16));
        for r in 0..2u32 {
            sc.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
                SourceLoc::unknown(),
            )
            .unwrap();
        }
        // Rank 0 locks and floods puts; rank 1 stays silent, so no global
        // sync ever completes and nothing is flushable.
        sc.push(
            Rank(0),
            EventKind::Lock { win: WinId(0), target: Rank(1), kind: mcc_types::LockKind::Shared },
            SourceLoc::unknown(),
        )
        .unwrap();
        for i in 0..64u32 {
            sc.push(Rank(0), put(1), SourceLoc::new("flood.c", i, "main")).unwrap();
            assert!(sc.buffered() <= 16, "buffer stays at or below the watermark");
        }
        assert!(sc.evictions >= 1, "eviction happened");
        assert!(sc.is_degraded());
        let findings = sc.finish();
        assert!(findings.iter().all(|e| e.confidence == Confidence::Degraded));
    }

    /// A session killed mid-stream: `finish_degraded` salvages what was
    /// buffered (synthesizing the missing epoch close) and every finding
    /// is downgraded.
    #[test]
    fn finish_degraded_salvages_partial_region() {
        let mut sc = StreamingChecker::new(2).unwrap();
        for r in 0..2u32 {
            sc.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
                SourceLoc::unknown(),
            )
            .unwrap();
            sc.push(Rank(r), EventKind::Fence { win: WinId(0) }, SourceLoc::unknown()).unwrap();
        }
        // The intra-epoch bug: a put whose origin buffer is stored to
        // before the (never-seen) closing fence.
        sc.push(Rank(0), put(1), SourceLoc::new("kill.c", 3, "main")).unwrap();
        sc.push(
            Rank(0),
            EventKind::Store { addr: 0x200, len: 4 },
            SourceLoc::new("kill.c", 4, "main"),
        )
        .unwrap();
        let findings = sc.finish_degraded();
        assert!(!findings.is_empty(), "the pre-kill bug is salvaged");
        assert!(findings.iter().all(|e| e.confidence == Confidence::Degraded));
    }

    /// The byte accountant tracks every push and every drain: it charges
    /// the heap behind location strings, returns to (near) zero once the
    /// buffer is flushed, and records a peak that reflects the strings'
    /// length, not just the event count.
    #[test]
    fn buffered_bytes_follow_pushes_and_flushes() {
        let mut sc = StreamingChecker::new(2).unwrap();
        assert_eq!(sc.buffered_bytes(), 0);
        let long_func = "f".repeat(1000);
        for r in 0..2u32 {
            sc.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
                SourceLoc::unknown(),
            )
            .unwrap();
        }
        sc.push(Rank(0), put(1), SourceLoc::new("big.c", 1, &long_func)).unwrap();
        let with_big_loc = sc.buffered_bytes();
        assert!(with_big_loc >= 1000, "loc strings are charged ({with_big_loc} bytes)");
        assert_eq!(sc.peak_buffered_bytes, with_big_loc);
        // A fence on each rank makes the region flushable; the buffer
        // drains and the accountant follows it down.
        for r in 0..2u32 {
            sc.push(Rank(r), EventKind::Fence { win: WinId(0) }, SourceLoc::unknown()).unwrap();
        }
        assert_eq!(sc.buffered(), 0);
        assert_eq!(sc.buffered_bytes(), 0);
        assert_eq!(sc.peak_buffered_bytes, with_big_loc.max(sc.peak_buffered_bytes));
    }

    /// WinCreate counts as the first global synchronization, so the batch
    /// comparison holds from the very first region.
    #[test]
    fn streaming_matches_batch_on_multiwindow_trace() {
        let mut b = TraceBuilder::new(3);
        for r in 0..3u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b.push(Rank(0), put(1));
        b.push(Rank(2), put(1));
        b.push(Rank(1), EventKind::Store { addr: 0x40, len: 4 });
        for r in 0..3u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let trace = b.build();
        let batch = AnalysisSession::new().run(&trace);
        let (streamed, _) = StreamingChecker::run_over(&trace);
        assert_eq!(streamed, batch.diagnostics);
        assert!(!streamed.is_empty());
    }
}

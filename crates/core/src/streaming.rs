//! Online (streaming) analysis — the paper's stated future work:
//! "While MC-Checker analyzes the traces offline, we can extend it to
//! perform online analysis by leveraging streaming processing algorithms"
//! (§VII-B).
//!
//! The key enabler is the concurrent-region theorem of §III-B: operations
//! separated by a global synchronization can never conflict. The
//! [`StreamingChecker`] therefore buffers events only until every rank has
//! passed its next global synchronization point, analyzes that region
//! with the ordinary pipeline, emits its findings, and discards the
//! region's events — memory stays bounded by the largest region plus the
//! (small) registry events that must persist (window/datatype/group
//! definitions).
//!
//! Known limitation (inherent to discarding flushed regions): an epoch
//! that *spans* a global synchronization point is analyzed piecewise, so
//! an intra-epoch pair straddling the boundary is missed. Well-formed
//! programs close epochs before global synchronization; the batch
//! checker remains the completeness reference.

use crate::report::ConsistencyError;
use crate::session::AnalysisSession;
use mcc_types::{CommId, Event, EventKind, Rank, SourceLoc, Trace, TraceBuilder, WinId};
use std::collections::{HashMap, HashSet};

/// Incremental, bounded-memory checker.
pub struct StreamingChecker {
    nprocs: usize,
    session: AnalysisSession,
    /// Registry events that must survive region flushes, per rank.
    ctx_events: Vec<Vec<(EventKind, SourceLoc)>>,
    /// Buffered (unflushed) events per rank.
    buf: Vec<Vec<(EventKind, SourceLoc)>>,
    /// Boundary (global-sync) indices inside `buf`, per rank.
    boundaries: Vec<Vec<usize>>,
    /// Window → communicator table learned from WinCreate events.
    win_comm: HashMap<WinId, CommId>,
    /// Communicators known to span all ranks.
    world_comms: HashSet<CommId>,
    /// Accumulated findings (deduplicated).
    findings: Vec<ConsistencyError>,
    seen: HashSet<String>,
    /// Regions flushed so far.
    pub regions_flushed: usize,
    /// High-water mark of buffered events (the memory bound).
    pub peak_buffered: usize,
}

impl StreamingChecker {
    /// Creates a streaming checker for `nprocs` ranks.
    pub fn new(nprocs: usize) -> Self {
        let mut world_comms = HashSet::new();
        world_comms.insert(CommId::WORLD);
        Self {
            nprocs,
            session: AnalysisSession::new(),
            ctx_events: vec![Vec::new(); nprocs],
            buf: vec![Vec::new(); nprocs],
            boundaries: vec![Vec::new(); nprocs],
            win_comm: HashMap::new(),
            world_comms,
            findings: Vec::new(),
            seen: HashSet::new(),
            regions_flushed: 0,
            peak_buffered: 0,
        }
    }

    fn is_registry(kind: &EventKind) -> bool {
        matches!(
            kind,
            EventKind::WinCreate { .. }
                | EventKind::TypeContiguous { .. }
                | EventKind::TypeVector { .. }
                | EventKind::TypeStruct { .. }
                | EventKind::GroupIncl { .. }
                | EventKind::CommGroup { .. }
                | EventKind::CommCreate { .. }
        )
    }

    fn is_global_sync(&self, kind: &EventKind) -> bool {
        match kind {
            EventKind::Barrier { comm }
            | EventKind::Bcast { comm, .. }
            | EventKind::Reduce { comm, .. }
            | EventKind::Allreduce { comm, .. } => self.world_comms.contains(comm),
            EventKind::Fence { win } | EventKind::WinFree { win } => {
                self.win_comm.get(win).is_some_and(|c| self.world_comms.contains(c))
            }
            EventKind::WinCreate { comm, .. } => self.world_comms.contains(comm),
            _ => false,
        }
    }

    /// Feeds one event from `rank`'s instrumentation stream. Returns any
    /// findings completed by this event (i.e. the analysis of a region
    /// that just became flushable).
    pub fn push(&mut self, rank: Rank, kind: EventKind, loc: SourceLoc) -> Vec<ConsistencyError> {
        // Maintain the lightweight registry needed for boundary detection.
        match &kind {
            EventKind::WinCreate { win, comm, .. } => {
                self.win_comm.insert(*win, *comm);
            }
            EventKind::CommCreate { new: Some(_c), .. } => {
                // Sub-communicators never span all ranks unless they
                // mirror the world; conservatively treat them as local
                // (their collectives do not flush regions).
            }
            _ => {}
        }
        let r = rank.idx();
        if self.is_global_sync(&kind) {
            self.boundaries[r].push(self.buf[r].len());
        }
        self.buf[r].push((kind, loc));
        let buffered: usize = self.buf.iter().map(Vec::len).sum();
        self.peak_buffered = self.peak_buffered.max(buffered);

        if self.boundaries.iter().all(|b| !b.is_empty()) {
            self.flush_region()
        } else {
            Vec::new()
        }
    }

    /// Cuts one region (through each rank's first boundary) and analyzes
    /// it together with the persistent registry events.
    fn flush_region(&mut self) -> Vec<ConsistencyError> {
        let mut b = TraceBuilder::new(self.nprocs);
        for r in 0..self.nprocs {
            let rank = Rank(r as u32);
            for (kind, loc) in &self.ctx_events[r] {
                b.push_at(rank, kind.clone(), loc.clone());
            }
            let cut = self.boundaries[r][0] + 1;
            let rest = self.buf[r].split_off(cut);
            for (kind, loc) in self.buf[r].drain(..) {
                if Self::is_registry(&kind) {
                    self.ctx_events[r].push((kind.clone(), loc.clone()));
                }
                b.push_at(rank, kind, loc);
            }
            self.buf[r] = rest;
            self.boundaries[r].remove(0);
            for idx in self.boundaries[r].iter_mut() {
                *idx -= cut;
            }
        }
        self.regions_flushed += 1;
        self.analyze(b.build())
    }

    fn analyze(&mut self, trace: Trace) -> Vec<ConsistencyError> {
        let report = self.session.run(&trace);
        let mut fresh = Vec::new();
        for e in report.diagnostics {
            if self.seen.insert(e.dedup_key()) {
                self.findings.push(e.clone());
                fresh.push(e);
            }
        }
        fresh
    }

    /// Flushes whatever remains and returns all findings.
    pub fn finish(mut self) -> Vec<ConsistencyError> {
        let mut b = TraceBuilder::new(self.nprocs);
        for r in 0..self.nprocs {
            let rank = Rank(r as u32);
            for (kind, loc) in &self.ctx_events[r] {
                b.push_at(rank, kind.clone(), loc.clone());
            }
            for (kind, loc) in self.buf[r].drain(..) {
                b.push_at(rank, kind, loc);
            }
        }
        self.analyze(b.build());
        self.findings
    }

    /// Convenience: streams a complete trace through the checker (used by
    /// the equivalence tests and benches).
    pub fn run_over(trace: &Trace) -> (Vec<ConsistencyError>, StreamingStats) {
        let mut sc = StreamingChecker::new(trace.nprocs());
        // Interleave ranks round-robin, as events would arrive online.
        let mut idx = vec![0usize; trace.nprocs()];
        let mut remaining: usize = trace.total_events();
        while remaining > 0 {
            #[allow(clippy::needless_range_loop)] // r doubles as the rank id
            for r in 0..trace.nprocs() {
                if idx[r] < trace.procs[r].events.len() {
                    let ev: &Event = &trace.procs[r].events[idx[r]];
                    let loc = trace.procs[r].loc(ev.loc);
                    sc.push(Rank(r as u32), ev.kind.clone(), loc);
                    idx[r] += 1;
                    remaining -= 1;
                }
            }
        }
        let stats = StreamingStats {
            regions_flushed: sc.regions_flushed,
            peak_buffered: sc.peak_buffered,
            total_events: trace.total_events(),
        };
        (sc.finish(), stats)
    }
}

/// Memory-profile statistics of a streaming run.
#[derive(Debug, Clone, Copy)]
pub struct StreamingStats {
    /// Regions flushed before the final drain.
    pub regions_flushed: usize,
    /// Maximum simultaneously buffered events.
    pub peak_buffered: usize,
    /// Events processed in total.
    pub total_events: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_types::{DatatypeId, RmaKind, RmaOp};

    fn put(target: u32) -> EventKind {
        EventKind::Rma(RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(target),
            origin_addr: 0x200,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: 0,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        })
    }

    /// Many fence-separated rounds, one conflict in round 5.
    fn rounds_trace(rounds: usize) -> Trace {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        for round in 0..rounds {
            if round == 5 {
                b.push(Rank(0), put(1));
                b.push(Rank(1), EventKind::Store { addr: 0x40, len: 4 });
            } else {
                b.push(Rank(0), put(1));
            }
            for r in 0..2u32 {
                b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            }
        }
        b.build()
    }

    #[test]
    fn streaming_matches_batch() {
        let trace = rounds_trace(12);
        let batch = AnalysisSession::new().run(&trace);
        let (streamed, stats) = StreamingChecker::run_over(&trace);
        assert_eq!(streamed.len(), batch.diagnostics.len());
        let key = |v: &[ConsistencyError]| {
            let mut k: Vec<String> = v.iter().map(|e| e.dedup_key()).collect();
            k.sort();
            k
        };
        assert_eq!(key(&streamed), key(&batch.diagnostics));
        assert!(stats.regions_flushed >= 10, "regions flushed incrementally");
    }

    #[test]
    fn memory_stays_bounded() {
        // 100 rounds: the peak buffer must stay near one round's worth of
        // events, far below the total.
        let trace = rounds_trace(100);
        let (_, stats) = StreamingChecker::run_over(&trace);
        assert!(
            stats.peak_buffered * 4 < stats.total_events,
            "peak {} vs total {}",
            stats.peak_buffered,
            stats.total_events
        );
    }

    #[test]
    fn incremental_findings_surface_early() {
        let trace = rounds_trace(12);
        let mut sc = StreamingChecker::new(2);
        let mut found_at = None;
        let mut pushed = 0usize;
        let mut idx = [0usize; 2];
        'outer: loop {
            let mut progressed = false;
            #[allow(clippy::needless_range_loop)] // r doubles as the rank id
            for r in 0..2 {
                if idx[r] < trace.procs[r].events.len() {
                    let ev = &trace.procs[r].events[idx[r]];
                    let loc = trace.procs[r].loc(ev.loc);
                    let fresh = sc.push(Rank(r as u32), ev.kind.clone(), loc);
                    idx[r] += 1;
                    pushed += 1;
                    progressed = true;
                    if !fresh.is_empty() {
                        found_at = Some(pushed);
                        break 'outer;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        let total = trace.total_events();
        let at = found_at.expect("conflict reported during the stream");
        assert!(at < total, "finding surfaced before the end ({at}/{total})");
    }

    #[test]
    fn clean_stream_reports_nothing() {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let (findings, _) = StreamingChecker::run_over(&b.build());
        assert!(findings.is_empty());
    }
}

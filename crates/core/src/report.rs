//! Error reports and diagnostics.
//!
//! "After detecting the conflicting operations, MC-Checker will provide
//! diagnostic information, such as pairs of conflicting operations and
//! operation locations including file names, routine names, and line
//! numbers, to help programmers locate and fix the bugs." (§III-C)

use mcc_types::{ConflictKind, EventRef, MemRegion, Rank, SourceLoc, Trace, WinId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error severity. The original lockopts bug (exclusive lock) is reported
/// as a warning — the runtime's mutual exclusion may serialize the
/// conflicting epochs (§VII-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// A definite memory consistency error.
    Error,
    /// A possible error; runtime lock ordering may serialize it.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("ERROR"),
            Severity::Warning => f.write_str("WARNING"),
        }
    }
}

/// How much of the evidence behind a finding was actually observed.
///
/// Findings from an intact trace are [`Confidence::Complete`]. When the
/// trace had to be repaired first (events dropped, epoch closes
/// synthesized — see [`crate::degrade::sanitize`]) every finding is
/// [`Confidence::Degraded`]: the conflict is real in what survived, but
/// the lost tail could have contained synchronization that changes the
/// verdict.
/// A third state, [`Confidence::Recovered`], sits between the two: the
/// trace records a *survivable* rank failure (failure notifications and —
/// optionally — checkpoint/restore or window re-exposure markers), and the
/// analysis accounted for the failure explicitly. Nothing was guessed, so
/// findings are trustworthy, but the failed rank's final epoch is
/// necessarily incomplete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Confidence {
    /// The whole trace was available and internally consistent.
    #[default]
    Complete,
    /// A rank failed survivably; the analysis is complete over the
    /// surviving data with the failure modeled explicitly.
    Recovered,
    /// The trace was truncated or damaged and analyzed in degraded mode.
    Degraded,
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Confidence::Complete => f.write_str("complete"),
            Confidence::Recovered => f.write_str("recovered"),
            Confidence::Degraded => f.write_str("degraded"),
        }
    }
}

/// Where a conflict was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorScope {
    /// Conflicting operations within a single epoch at one process
    /// (paper's first error class).
    IntraEpoch {
        /// The rank whose epoch it is.
        rank: Rank,
        /// The window of the epoch.
        win: WinId,
    },
    /// Conflicting operations across processes on a target window
    /// (paper's second error class).
    CrossProcess {
        /// The window.
        win: WinId,
        /// The target rank whose window memory is contended.
        target: Rank,
    },
}

impl fmt::Display for ErrorScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorScope::IntraEpoch { rank, win } => {
                write!(f, "within an epoch at {rank} on {win}")
            }
            ErrorScope::CrossProcess { win, target } => {
                write!(f, "across processes on {win} at target {target}")
            }
        }
    }
}

/// One side of a conflicting pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpInfo {
    /// The rank that performed the operation.
    pub rank: Rank,
    /// The trace event.
    pub ev: EventRef,
    /// Human-readable operation name (`MPI_Put`, `load`, ...).
    pub op: String,
    /// Source location.
    pub loc: SourceLoc,
    /// The contended memory, if byte-precise information applies.
    pub region: Option<MemRegion>,
    /// Index of the epoch the operation belongs to (RMA operations only;
    /// `None` for local accesses and operations outside any epoch).
    pub epoch: Option<u32>,
}

impl OpInfo {
    /// Builds an `OpInfo` from a trace reference.
    pub fn from_trace(trace: &Trace, ev: EventRef, region: Option<MemRegion>) -> Self {
        let e = trace.event(ev);
        OpInfo {
            rank: ev.rank,
            ev,
            op: e.kind.call_name().to_string(),
            loc: trace.loc_of(ev),
            region,
            epoch: None,
        }
    }

    /// Attaches the epoch index.
    pub fn with_epoch(mut self, epoch: Option<u32>) -> Self {
        self.epoch = epoch;
        self
    }
}

impl fmt::Display for OpInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by {} at {}", self.op, self.rank, self.loc)?;
        if let Some(r) = self.region {
            write!(f, " touching {r}")?;
        }
        Ok(())
    }
}

/// A detected memory consistency error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyError {
    /// Error or warning.
    pub severity: Severity,
    /// Intra-epoch or cross-process.
    pub scope: ErrorScope,
    /// First conflicting operation.
    pub a: OpInfo,
    /// Second conflicting operation.
    pub b: OpInfo,
    /// Which rule was violated.
    pub kind: ConflictKind,
    /// One-line explanation for the programmer.
    pub explanation: String,
    /// Whether the finding comes from an intact or a repaired trace.
    pub confidence: Confidence,
}

impl ConsistencyError {
    /// A stable key used to deduplicate reports that repeat the same
    /// source-level conflict (e.g. each iteration of a loop). The key is
    /// order-insensitive in the pair and includes the scope and the rule
    /// violated, so the same two source lines conflicting both within an
    /// epoch and across processes — or under an ordinary data race *and* a
    /// failure-specific rule — count as distinct findings.
    pub fn dedup_key(&self) -> String {
        let pa = format!("{}:{}:{}", self.a.loc.file, self.a.loc.line, self.a.op);
        let pb = format!("{}:{}:{}", self.b.loc.file, self.b.loc.line, self.b.op);
        let (lo, hi) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        format!("{}|{:?}|{lo}|{hi}", self.scope, self.kind)
    }

    /// The canonical presentation order of findings: by (rank, event id)
    /// of the first operation, then of the second, then by the byte
    /// offsets of the contended memory. Every engine and thread count
    /// merges findings in this order, so reports are bit-identical
    /// however the analysis was scheduled.
    pub fn canonical_key(&self) -> (EventRef, EventRef, u64, u64) {
        let off = |o: &OpInfo| o.region.map_or(u64::MAX, |r| r.base);
        (self.a.ev, self.b.ev, off(&self.a), off(&self.b))
    }
}

impl fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: memory consistency error {}", self.severity, self.scope)?;
        match self.confidence {
            Confidence::Complete => {}
            Confidence::Recovered => {
                writeln!(f, "  confidence: recovered (a rank failure was modeled explicitly)")?;
            }
            Confidence::Degraded => {
                writeln!(f, "  confidence: degraded (analyzed from a damaged trace)")?;
            }
        }
        writeln!(f, "  (1) {}", self.a)?;
        writeln!(f, "  (2) {}", self.b)?;
        writeln!(f, "  rule: {}", self.kind)?;
        write!(f, "  {}", self.explanation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_types::{EventKind, TraceBuilder};

    fn sample() -> ConsistencyError {
        let mut b = TraceBuilder::new(2);
        let a = b.push_at(
            Rank(0),
            EventKind::Store { addr: 64, len: 4 },
            SourceLoc::new("app.c", 4, "main"),
        );
        let c = b.push_at(
            Rank(1),
            EventKind::Load { addr: 64, len: 4 },
            SourceLoc::new("app.c", 9, "main"),
        );
        let t = b.build();
        ConsistencyError {
            severity: Severity::Error,
            scope: ErrorScope::CrossProcess { win: WinId(0), target: Rank(1) },
            a: OpInfo::from_trace(&t, a, Some(MemRegion::new(64, 4))),
            b: OpInfo::from_trace(&t, c, None),
            kind: ConflictKind::OverlapViolation,
            explanation: "test".into(),
            confidence: Confidence::Complete,
        }
    }

    #[test]
    fn display_contains_diagnostics() {
        let e = sample();
        let s = e.to_string();
        assert!(s.contains("ERROR"));
        assert!(s.contains("app.c:4"));
        assert!(s.contains("app.c:9"));
        assert!(s.contains("P0"));
        assert!(s.contains("P1"));
        assert!(s.contains("store"));
        assert!(s.contains("load"));
    }

    #[test]
    fn dedup_key_stable() {
        let e = sample();
        assert_eq!(e.dedup_key(), e.dedup_key());
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error < Severity::Warning);
    }

    #[test]
    fn scope_display() {
        let s = ErrorScope::IntraEpoch { rank: Rank(2), win: WinId(1) };
        assert!(s.to_string().contains("P2"));
        assert!(s.to_string().contains("win1"));
    }
}

//! The data-access DAG (paper §III-B).
//!
//! Every event becomes a vertex; synchronizing events that order *other*
//! ranks (matched collectives) are split into an **enter** and an **exit**
//! phase so that all-to-all synchronization can be encoded without cycles
//! (`enter_i → exit_j` for members `i, j`).
//!
//! Intra-rank edges implement the one-sided epoch semantics: blocking
//! events chain in program order, while a nonblocking RMA operation hangs
//! off its issue point and re-joins the chain only at the synchronization
//! that closes its epoch — "while the epochs in each MPI process are
//! ordered based on their execution, the nonblocking RMA operations within
//! each epoch are not ordered". This yields exactly the diamond shapes of
//! the paper's Figure 4.

use crate::matching::{CollKind, Matching};
use crate::preprocess::Ctx;
use mcc_types::{EventKind, EventRef, Rank, Trace};
use std::collections::{HashMap, HashSet};

/// Index of a DAG node.
pub type NodeId = u32;

/// How a node participates in each rank's program-order structure.
///
/// Blocking events form a total **chain** per rank; nonblocking RMA
/// operations float between their issue point and their epoch-closing
/// synchronization. Happens-before queries on floating nodes are answered
/// through their `issue`/`close` chain anchors (see [`crate::vc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A blocking event on the rank's program-order chain.
    Chain,
    /// A nonblocking RMA operation: `issue` is the chain node it was
    /// issued after (if any), `close` the chain node of its epoch-closing
    /// synchronization (if the epoch was closed in the trace).
    Rma {
        /// Chain predecessor at issue.
        issue: Option<NodeId>,
        /// Chain node of the closing synchronization.
        close: Option<NodeId>,
    },
}

/// The happens-before DAG.
#[derive(Debug)]
pub struct Dag {
    /// Number of ranks.
    pub nprocs: usize,
    /// Owning rank of each node.
    pub node_rank: Vec<Rank>,
    /// The event each node represents.
    pub node_event: Vec<EventRef>,
    /// Chain/floating classification of each node.
    pub node_kind: Vec<NodeKind>,
    /// Successor adjacency.
    pub succ: Vec<Vec<NodeId>>,
    /// Per rank, per event index: `(enter, exit)` node ids (equal for
    /// single-phase events).
    pub(crate) nodes_of: Vec<Vec<(NodeId, NodeId)>>,
}

impl Dag {
    /// The node at which an event's effect may begin.
    pub fn enter(&self, er: EventRef) -> NodeId {
        self.nodes_of[er.rank.idx()][er.idx].0
    }

    /// The node after which an event has fully completed.
    pub fn exit(&self, er: EventRef) -> NodeId {
        self.nodes_of[er.rank.idx()][er.idx].1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_rank.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }
}

/// Builds the DAG from a trace, its preprocessed context, and the matched
/// synchronization.
pub fn build(trace: &Trace, ctx: &Ctx, matching: &Matching) -> Dag {
    let n = trace.nprocs();
    // Events participating in a matched collective get two phases.
    let two_phase: HashSet<EventRef> =
        matching.collectives.iter().flat_map(|c| c.events.iter().copied()).collect();

    let mut dag = Dag {
        nprocs: n,
        node_rank: Vec::new(),
        node_event: Vec::new(),
        node_kind: Vec::new(),
        succ: Vec::new(),
        nodes_of: (0..n).map(|r| Vec::with_capacity(trace.procs[r].events.len())).collect(),
    };

    let new_node = |dag: &mut Dag, rank: Rank, er: EventRef, kind: NodeKind| -> NodeId {
        let id = dag.node_rank.len() as NodeId;
        dag.node_rank.push(rank);
        dag.node_event.push(er);
        dag.node_kind.push(kind);
        dag.succ.push(Vec::new());
        id
    };

    // --- intra-rank structure ---
    for r in 0..n {
        let rank = Rank(r as u32);
        let mut prev: Option<NodeId> = None;
        // Pending (unclosed) RMA op nodes per epoch bucket.
        let mut fence_pending: HashMap<u32, Vec<NodeId>> = HashMap::new();
        let mut lock_pending: HashMap<(u32, u32), Vec<NodeId>> = HashMap::new();
        let mut start_pending: HashMap<u32, Vec<NodeId>> = HashMap::new();
        let mut lock_held: HashSet<(u32, u32)> = HashSet::new();
        let mut start_active: HashSet<u32> = HashSet::new();

        // Request-based ops awaiting their MPI_Wait: req id → node plus
        // the (win, target) bucket that would otherwise close them.
        let mut req_pending: HashMap<u64, NodeId> = HashMap::new();
        let mut lock_all_held: HashSet<u32> = HashSet::new();

        // Closes a batch of pending op nodes at chain node `close`. A
        // node already completed (e.g. a request op closed by its wait)
        // keeps its first completion point.
        let close_ops = |dag: &mut Dag, ops: Vec<NodeId>, close: NodeId| {
            for op in ops {
                match &mut dag.node_kind[op as usize] {
                    NodeKind::Rma { close: c @ None, .. } => {
                        *c = Some(close);
                        dag.succ[op as usize].push(close);
                    }
                    NodeKind::Rma { .. } => {}
                    NodeKind::Chain => unreachable!("pending node is always an RMA op"),
                }
            }
        };

        for (idx, event) in trace.procs[r].events.iter().enumerate() {
            let er = EventRef::new(rank, idx);

            // All one-sided communication flavours float off the chain.
            if let Some((win, target_abs, req)) = match &event.kind {
                EventKind::Rma(op) => {
                    let meta = &ctx.wins[&op.win];
                    Some((op.win.0, ctx.abs_rank(meta.comm, op.target).0, None))
                }
                EventKind::RmaAtomic(op) => {
                    let meta = &ctx.wins[&op.win];
                    Some((op.win.0, ctx.abs_rank(meta.comm, op.target).0, None))
                }
                EventKind::RmaReq { op, req } => {
                    let meta = &ctx.wins[&op.win];
                    Some((op.win.0, ctx.abs_rank(meta.comm, op.target).0, Some(*req)))
                }
                _ => None,
            } {
                // Issue point: ordered after the previous blocking event,
                // unordered with everything until the close.
                let enter =
                    new_node(&mut dag, rank, er, NodeKind::Rma { issue: prev, close: None });
                dag.nodes_of[r].push((enter, enter));
                if let Some(p) = prev {
                    dag.succ[p as usize].push(enter);
                }
                if let Some(req) = req {
                    req_pending.insert(req, enter);
                }
                if lock_held.contains(&(win, target_abs)) || lock_all_held.contains(&win) {
                    lock_pending.entry((win, target_abs)).or_default().push(enter);
                } else if start_active.contains(&win) {
                    start_pending.entry(win).or_default().push(enter);
                } else {
                    fence_pending.entry(win).or_default().push(enter);
                }
                // `prev` unchanged: the op does not block program order.
                continue;
            }

            let enter = new_node(&mut dag, rank, er, NodeKind::Chain);
            let exit = if two_phase.contains(&er) {
                let x = new_node(&mut dag, rank, er, NodeKind::Chain);
                dag.succ[enter as usize].push(x);
                x
            } else {
                enter
            };
            dag.nodes_of[r].push((enter, exit));

            match &event.kind {
                EventKind::Fence { win } => {
                    let ops = fence_pending.remove(&win.0).unwrap_or_default();
                    close_ops(&mut dag, ops, enter);
                }
                EventKind::Lock { win, target, .. } => {
                    let meta = &ctx.wins[win];
                    let abs = ctx.abs_rank(meta.comm, *target);
                    lock_held.insert((win.0, abs.0));
                }
                EventKind::Unlock { win, target } => {
                    let meta = &ctx.wins[win];
                    let abs = ctx.abs_rank(meta.comm, *target);
                    lock_held.remove(&(win.0, abs.0));
                    let ops = lock_pending.remove(&(win.0, abs.0)).unwrap_or_default();
                    close_ops(&mut dag, ops, enter);
                }
                EventKind::LockAll { win } => {
                    lock_all_held.insert(win.0);
                }
                EventKind::UnlockAll { win } => {
                    lock_all_held.remove(&win.0);
                    let keys: Vec<_> =
                        lock_pending.keys().filter(|(w, _)| *w == win.0).copied().collect();
                    for key in keys {
                        let ops = lock_pending.remove(&key).unwrap_or_default();
                        close_ops(&mut dag, ops, enter);
                    }
                }
                EventKind::Flush { win, target } => {
                    // Consistency order: completes pending ops to that
                    // target without closing the epoch.
                    let meta = &ctx.wins[win];
                    let abs = ctx.abs_rank(meta.comm, *target);
                    let ops = lock_pending.remove(&(win.0, abs.0)).unwrap_or_default();
                    close_ops(&mut dag, ops, enter);
                }
                EventKind::FlushAll { win } => {
                    let keys: Vec<_> =
                        lock_pending.keys().filter(|(w, _)| *w == win.0).copied().collect();
                    for key in keys {
                        let ops = lock_pending.remove(&key).unwrap_or_default();
                        close_ops(&mut dag, ops, enter);
                    }
                }
                EventKind::WaitReq { req } => {
                    if let Some(op) = req_pending.remove(req) {
                        close_ops(&mut dag, vec![op], enter);
                    }
                }
                EventKind::Start { win, .. } => {
                    start_active.insert(win.0);
                }
                EventKind::Complete { win } => {
                    start_active.remove(&win.0);
                    let ops = start_pending.remove(&win.0).unwrap_or_default();
                    close_ops(&mut dag, ops, enter);
                }
                _ => {}
            }

            if let Some(p) = prev {
                dag.succ[p as usize].push(enter);
            }
            prev = Some(exit);
        }
    }

    // --- cross-rank edges ---
    for &(a, b) in &matching.edges {
        let from = dag.exit(a);
        let to = dag.enter(b);
        dag.succ[from as usize].push(to);
    }
    for coll in &matching.collectives {
        match coll.kind {
            CollKind::AllToAll => {
                for &a in &coll.events {
                    for &b in &coll.events {
                        if a != b {
                            let from = dag.enter(a);
                            let to = dag.exit(b);
                            dag.succ[from as usize].push(to);
                        }
                    }
                }
            }
            CollKind::RootToAll(root) => {
                if let Some(&re) = coll.events.iter().find(|e| e.rank == root) {
                    for &b in &coll.events {
                        if b != re {
                            let from = dag.enter(re);
                            let to = dag.exit(b);
                            dag.succ[from as usize].push(to);
                        }
                    }
                }
            }
            CollKind::AllToRoot(root) => {
                if let Some(&re) = coll.events.iter().find(|e| e.rank == root) {
                    for &a in &coll.events {
                        if a != re {
                            let from = dag.enter(a);
                            let to = dag.exit(re);
                            dag.succ[from as usize].push(to);
                        }
                    }
                }
            }
        }
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::match_sync;
    use crate::preprocess::preprocess;
    use mcc_types::{CommId, DatatypeId, RmaKind, RmaOp, TraceBuilder, WinId};

    fn put_op(target: u32) -> EventKind {
        EventKind::Rma(RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(target),
            origin_addr: 64,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: 0,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        })
    }

    /// Figure 4 shape: fence; put; store; fence — the put must be
    /// unordered with the store but ordered before the closing fence.
    #[test]
    fn fig4_epoch_diamond() {
        let mut b = TraceBuilder::new(2);
        let mut refs = Vec::new();
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 16, comm: CommId::WORLD },
            );
            let f1 = b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            let (put, store) = if r == 0 {
                let put = b.push(Rank(0), put_op(1));
                let store = b.push(Rank(0), EventKind::Store { addr: 64, len: 4 });
                (Some(put), Some(store))
            } else {
                (None, None)
            };
            let f2 = b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            refs.push((f1, put, store, f2));
        }
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let (f1, put, store, f2) = refs[0];
        let put = put.unwrap();
        let store = store.unwrap();
        // Edges: f1.exit → put, f1.exit → store, put → f2.enter,
        // store → f2.enter. No edge between put and store.
        let has = |a: NodeId, b: NodeId| dag.succ[a as usize].contains(&b);
        assert!(has(dag.exit(f1), dag.enter(put)));
        assert!(has(dag.exit(f1), dag.enter(store)));
        assert!(has(dag.enter(put), dag.enter(f2)));
        assert!(has(dag.enter(store), dag.enter(f2)));
        assert!(!has(dag.enter(put), dag.enter(store)));
        assert!(!has(dag.enter(store), dag.enter(put)));
        // The fences are two-phase (matched collectives).
        assert_ne!(dag.enter(f1), dag.exit(f1));
    }

    #[test]
    fn blocking_events_chain_in_program_order() {
        let mut b = TraceBuilder::new(1);
        let a = b.push(Rank(0), EventKind::Load { addr: 64, len: 4 });
        let c = b.push(Rank(0), EventKind::Store { addr: 64, len: 4 });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        assert!(dag.succ[dag.enter(a) as usize].contains(&dag.enter(c)));
        assert_eq!(dag.node_count(), 2);
    }

    #[test]
    fn collective_all_to_all_edges() {
        let mut b = TraceBuilder::new(2);
        let b0 = b.push(Rank(0), EventKind::Barrier { comm: CommId::WORLD });
        let b1 = b.push(Rank(1), EventKind::Barrier { comm: CommId::WORLD });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        assert!(dag.succ[dag.enter(b0) as usize].contains(&dag.exit(b1)));
        assert!(dag.succ[dag.enter(b1) as usize].contains(&dag.exit(b0)));
        // 2 events × 2 phases.
        assert_eq!(dag.node_count(), 4);
    }

    #[test]
    fn lock_epoch_ops_close_at_unlock() {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 16, comm: CommId::WORLD },
            );
        }
        let lock = b.push(
            Rank(0),
            EventKind::Lock { win: WinId(0), target: Rank(1), kind: mcc_types::LockKind::Shared },
        );
        let put = b.push(Rank(0), put_op(1));
        let unlock = b.push(Rank(0), EventKind::Unlock { win: WinId(0), target: Rank(1) });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let has = |a: NodeId, c: NodeId| dag.succ[a as usize].contains(&c);
        assert!(has(dag.exit(lock), dag.enter(put)));
        assert!(has(dag.enter(put), dag.enter(unlock)));
        assert!(has(dag.exit(lock), dag.enter(unlock)), "program order maintained");
    }

    #[test]
    fn send_recv_edge() {
        let mut b = TraceBuilder::new(2);
        let s = b.push(
            Rank(0),
            EventKind::Send { comm: CommId::WORLD, to: Rank(1), tag: mcc_types::Tag(0), bytes: 4 },
        );
        let r = b.push(
            Rank(1),
            EventKind::Recv {
                comm: CommId::WORLD,
                from: Rank(0),
                tag: mcc_types::Tag(0),
                bytes: 4,
            },
        );
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        assert!(dag.succ[dag.exit(s) as usize].contains(&dag.enter(r)));
    }
}

//! Vector clocks over the data-access DAG.
//!
//! The paper extracts "sets of operations that are unordered in the DAG"
//! (§I); deciding unorderedness per pair by graph search would be
//! quadratic, so we assign vector clocks in one topological sweep.
//!
//! The classic O(1) query — `a happens-before b` iff
//! `VC_b[rank(a)] ≥ VC_a[rank(a)]` — is only sound when each rank's
//! clocked nodes are **totally ordered**. Blocking events satisfy that
//! (they form each rank's program-order chain), but nonblocking RMA nodes
//! deliberately do not: they float between issue and epoch close. So only
//! chain nodes tick the clock, and a floating node is queried through its
//! chain anchors: its effect is complete no earlier than its **close**
//! node and cannot begin before its **issue** node:
//!
//! * `rma_a →  x`  iff  `close(a) →= x`
//! * `x → rma_b`   iff  `x →= issue(b)`
//!
//! where `→=` is reflexive ordering on chain nodes. An RMA operation whose
//! epoch is never closed in the trace is not ordered before anything.

use crate::dag::{Dag, NodeId, NodeKind};

/// Vector clocks for every DAG node.
#[derive(Debug)]
pub struct Clocks {
    n: usize,
    /// Flattened `node_count × nprocs` clock matrix.
    vcs: Vec<u32>,
    ranks: Vec<u32>,
    kinds: Vec<NodeKind>,
}

impl Clocks {
    /// Computes clocks with a Kahn topological traversal.
    ///
    /// # Panics
    /// Panics if the DAG contains a cycle (which would mean the matching
    /// produced an inconsistent ordering — a malformed trace).
    pub fn compute(dag: &Dag) -> Clocks {
        let nodes = dag.node_count();
        let n = dag.nprocs;
        let mut indeg = vec![0u32; nodes];
        for succs in &dag.succ {
            for &s in succs {
                indeg[s as usize] += 1;
            }
        }
        let mut vcs = vec![0u32; nodes * n];
        let mut queue: Vec<NodeId> =
            (0..nodes as NodeId).filter(|&i| indeg[i as usize] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            if dag.node_kind[u as usize] == NodeKind::Chain {
                let r = dag.node_rank[u as usize].idx();
                vcs[u as usize * n + r] += 1;
            }
            let head = u as usize * n;
            // Propagate to successors: succ VC = max(succ VC, this VC).
            let this: Vec<u32> = vcs[head..head + n].to_vec();
            for &s in &dag.succ[u as usize] {
                let sh = s as usize * n;
                for k in 0..n {
                    if this[k] > vcs[sh + k] {
                        vcs[sh + k] = this[k];
                    }
                }
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(seen, nodes, "cycle in happens-before DAG: malformed trace");
        Clocks {
            n,
            vcs,
            ranks: dag.node_rank.iter().map(|r| r.0).collect(),
            kinds: dag.node_kind.clone(),
        }
    }

    /// The clock of a node.
    pub fn clock(&self, node: NodeId) -> &[u32] {
        let h = node as usize * self.n;
        &self.vcs[h..h + self.n]
    }

    /// Reflexive ordering between two **chain** nodes.
    #[inline]
    fn chain_ordered_eq(&self, a: NodeId, b: NodeId) -> bool {
        debug_assert_eq!(self.kinds[a as usize], NodeKind::Chain);
        debug_assert_eq!(self.kinds[b as usize], NodeKind::Chain);
        if a == b {
            return true;
        }
        let ra = self.ranks[a as usize] as usize;
        self.clock(b)[ra] >= self.clock(a)[ra]
    }

    /// The chain node at which a node's effect is certainly complete.
    fn start_anchor(&self, x: NodeId) -> Option<NodeId> {
        match self.kinds[x as usize] {
            NodeKind::Chain => Some(x),
            NodeKind::Rma { close, .. } => close,
        }
    }

    /// The chain node that must precede a node's effect.
    fn end_anchor(&self, x: NodeId) -> Option<NodeId> {
        match self.kinds[x as usize] {
            NodeKind::Chain => Some(x),
            NodeKind::Rma { issue, .. } => issue,
        }
    }

    /// Whether `a` happens-before `b` (strictly).
    pub fn ordered(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let (Some(ca), Some(cb)) = (self.start_anchor(a), self.end_anchor(b)) else {
            return false;
        };
        self.chain_ordered_eq(ca, cb)
    }

    /// Whether two nodes are concurrent (no ordering either way).
    #[inline]
    pub fn concurrent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && !self.ordered(a, b) && !self.ordered(b, a)
    }
}

/// A per-shard memo over [`Clocks`] queries.
///
/// Floating RMA nodes are queried through their chain anchors, and every
/// operation of one epoch shares the same anchor pair with every
/// operation of another epoch — so a shard that compares m × k operations
/// across two epochs asks the same anchor-level question m·k times. The
/// cache keys on the `(start_anchor, end_anchor)` chain pair, making
/// repeated epoch-pair lookups a single hash probe.
///
/// The cache is intentionally *not* shared between shards: each shard of
/// the parallel conflict engine owns one, so no locking is needed and
/// results stay independent of shard scheduling.
#[derive(Debug)]
pub struct ReachCache<'a> {
    clocks: &'a Clocks,
    memo: std::collections::HashMap<(NodeId, NodeId), bool>,
    hits: u64,
    misses: u64,
}

impl<'a> ReachCache<'a> {
    /// A fresh cache over `clocks`.
    pub fn new(clocks: &'a Clocks) -> Self {
        Self { clocks, memo: std::collections::HashMap::new(), hits: 0, misses: 0 }
    }

    /// Memoized [`Clocks::ordered`].
    pub fn ordered(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let (Some(ca), Some(cb)) = (self.clocks.start_anchor(a), self.clocks.end_anchor(b)) else {
            return false;
        };
        if ca == cb {
            return true; // reflexive on the shared chain anchor
        }
        let clocks = self.clocks;
        match self.memo.entry((ca, cb)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses += 1;
                *v.insert(clocks.chain_ordered_eq(ca, cb))
            }
        }
    }

    /// Memoized [`Clocks::concurrent`].
    #[inline]
    pub fn concurrent(&mut self, a: NodeId, b: NodeId) -> bool {
        a != b && !self.ordered(a, b) && !self.ordered(b, a)
    }

    /// Distinct anchor pairs resolved so far (exposed for stats/tests).
    pub fn entries(&self) -> usize {
        self.memo.len()
    }

    /// Memo lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Memo lookups that had to consult the vector clocks.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::build;
    use crate::matching::match_sync;
    use crate::preprocess::preprocess;
    use mcc_types::{CommId, EventKind, Rank, Tag, TraceBuilder};

    #[test]
    fn program_order_is_ordered() {
        let mut b = TraceBuilder::new(1);
        let a = b.push(Rank(0), EventKind::Load { addr: 64, len: 4 });
        let c = b.push(Rank(0), EventKind::Store { addr: 64, len: 4 });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let vc = Clocks::compute(&dag);
        assert!(vc.ordered(dag.enter(a), dag.enter(c)));
        assert!(!vc.ordered(dag.enter(c), dag.enter(a)));
        assert!(!vc.concurrent(dag.enter(a), dag.enter(c)));
    }

    #[test]
    fn unsynchronized_ranks_are_concurrent() {
        let mut b = TraceBuilder::new(2);
        let a = b.push(Rank(0), EventKind::Store { addr: 64, len: 4 });
        let c = b.push(Rank(1), EventKind::Store { addr: 64, len: 4 });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let vc = Clocks::compute(&dag);
        assert!(vc.concurrent(dag.enter(a), dag.enter(c)));
    }

    #[test]
    fn barrier_orders_across_ranks() {
        let mut b = TraceBuilder::new(2);
        let before = b.push(Rank(0), EventKind::Store { addr: 64, len: 4 });
        b.push(Rank(0), EventKind::Barrier { comm: CommId::WORLD });
        b.push(Rank(1), EventKind::Barrier { comm: CommId::WORLD });
        let after = b.push(Rank(1), EventKind::Load { addr: 64, len: 4 });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let vc = Clocks::compute(&dag);
        assert!(vc.ordered(dag.enter(before), dag.enter(after)));
        assert!(!vc.ordered(dag.enter(after), dag.enter(before)));
    }

    #[test]
    fn send_recv_orders_only_that_direction() {
        let mut b = TraceBuilder::new(2);
        let s_pre = b.push(Rank(0), EventKind::Store { addr: 64, len: 4 });
        b.push(
            Rank(0),
            EventKind::Send { comm: CommId::WORLD, to: Rank(1), tag: Tag(0), bytes: 4 },
        );
        b.push(
            Rank(1),
            EventKind::Recv { comm: CommId::WORLD, from: Rank(0), tag: Tag(0), bytes: 4 },
        );
        let r_post = b.push(Rank(1), EventKind::Load { addr: 64, len: 4 });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let vc = Clocks::compute(&dag);
        assert!(vc.ordered(dag.enter(s_pre), dag.enter(r_post)));
        assert!(!vc.ordered(dag.enter(r_post), dag.enter(s_pre)));
    }

    #[test]
    fn bcast_root_asymmetry() {
        // Bcast rooted at 0: rank 0's pre-event is ordered before rank 1's
        // post-event, but rank 1's pre-event is NOT ordered before rank
        // 0's post-event.
        let mut b = TraceBuilder::new(2);
        let pre0 = b.push(Rank(0), EventKind::Store { addr: 64, len: 4 });
        b.push(Rank(0), EventKind::Bcast { comm: CommId::WORLD, root: Rank(0), bytes: 4 });
        let post0 = b.push(Rank(0), EventKind::Load { addr: 64, len: 4 });
        let pre1 = b.push(Rank(1), EventKind::Store { addr: 128, len: 4 });
        b.push(Rank(1), EventKind::Bcast { comm: CommId::WORLD, root: Rank(0), bytes: 4 });
        let post1 = b.push(Rank(1), EventKind::Load { addr: 128, len: 4 });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let vc = Clocks::compute(&dag);
        assert!(vc.ordered(dag.enter(pre0), dag.enter(post1)), "root data flows out");
        assert!(
            !vc.ordered(dag.enter(pre1), dag.enter(post0)),
            "bcast does not synchronize non-root towards root"
        );
        assert!(vc.concurrent(dag.enter(pre1), dag.enter(post0)));
    }

    #[test]
    fn rma_op_concurrent_with_epoch_body() {
        use mcc_types::{DatatypeId, RmaKind, RmaOp, WinId};
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 16, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let pre_store = b.push(Rank(0), EventKind::Store { addr: 80, len: 4 });
        let put = b.push(
            Rank(0),
            EventKind::Rma(RmaOp {
                kind: RmaKind::Put,
                win: WinId(0),
                target: Rank(1),
                origin_addr: 64,
                origin_count: 1,
                origin_dtype: DatatypeId::INT,
                target_disp: 0,
                target_count: 1,
                target_dtype: DatatypeId::INT,
            }),
        );
        let store = b.push(Rank(0), EventKind::Store { addr: 64, len: 4 });
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let after = b.push(Rank(0), EventKind::Load { addr: 64, len: 4 });
        let remote_after = b.push(Rank(1), EventKind::Load { addr: 64, len: 4 });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let vc = Clocks::compute(&dag);
        // The store after the put's issue is a race with the put (Fig 2a).
        assert!(vc.concurrent(dag.enter(put), dag.enter(store)));
        // The store before the put's issue is ordered before it.
        assert!(vc.ordered(dag.enter(pre_store), dag.enter(put)));
        assert!(!vc.concurrent(dag.enter(pre_store), dag.enter(put)));
        // The closing fence orders the put before everything after it —
        // on its own rank and across ranks.
        assert!(vc.ordered(dag.enter(put), dag.enter(after)));
        assert!(vc.ordered(dag.enter(put), dag.enter(remote_after)));
    }

    #[test]
    fn two_rma_ops_same_epoch_concurrent() {
        use mcc_types::{DatatypeId, RmaKind, RmaOp, WinId};
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 16, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let mk = |addr: u64| {
            EventKind::Rma(RmaOp {
                kind: RmaKind::Put,
                win: WinId(0),
                target: Rank(1),
                origin_addr: addr,
                origin_count: 1,
                origin_dtype: DatatypeId::INT,
                target_disp: 0,
                target_count: 1,
                target_dtype: DatatypeId::INT,
            })
        };
        let p1 = b.push(Rank(0), mk(64));
        let p2 = b.push(Rank(0), mk(68));
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let vc = Clocks::compute(&dag);
        assert!(vc.concurrent(dag.enter(p1), dag.enter(p2)), "ops within an epoch are unordered");
    }

    #[test]
    fn reach_cache_agrees_with_clocks() {
        use mcc_types::{DatatypeId, RmaKind, RmaOp, WinId};
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 16, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        for i in 0..4u64 {
            b.push(
                Rank(0),
                EventKind::Rma(RmaOp {
                    kind: RmaKind::Put,
                    win: WinId(0),
                    target: Rank(1),
                    origin_addr: 64 + 4 * i,
                    origin_count: 1,
                    origin_dtype: DatatypeId::INT,
                    target_disp: 0,
                    target_count: 1,
                    target_dtype: DatatypeId::INT,
                }),
            );
        }
        b.push(Rank(1), EventKind::Store { addr: 64, len: 4 });
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let vc = Clocks::compute(&dag);
        let mut cache = ReachCache::new(&vc);
        let nodes = dag.node_count() as u32;
        for a in 0..nodes {
            for b in 0..nodes {
                assert_eq!(cache.ordered(a, b), vc.ordered(a, b), "ordered({a}, {b})");
                assert_eq!(cache.concurrent(a, b), vc.concurrent(a, b), "concurrent({a}, {b})");
            }
        }
        // The four same-epoch puts share one anchor pair each way, so the
        // memo stays far below the number of queries made.
        assert!(cache.entries() > 0);
        assert!(cache.entries() < (nodes as usize).pow(2));
    }

    #[test]
    fn unclosed_epoch_op_never_ordered_before() {
        use mcc_types::{DatatypeId, RmaKind, RmaOp, WinId};
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 16, comm: CommId::WORLD },
            );
        }
        let put = b.push(
            Rank(0),
            EventKind::Rma(RmaOp {
                kind: RmaKind::Put,
                win: WinId(0),
                target: Rank(1),
                origin_addr: 64,
                origin_count: 1,
                origin_dtype: DatatypeId::INT,
                target_disp: 0,
                target_count: 1,
                target_dtype: DatatypeId::INT,
            }),
        );
        let later = b.push(Rank(0), EventKind::Load { addr: 64, len: 4 });
        let t = b.build();
        let ctx = preprocess(&t);
        let m = match_sync(&t, &ctx);
        let dag = build(&t, &ctx, &m);
        let vc = Clocks::compute(&dag);
        assert!(!vc.ordered(dag.enter(put), dag.enter(later)), "no closing sync in trace");
        assert!(vc.concurrent(dag.enter(put), dag.enter(later)));
    }
}

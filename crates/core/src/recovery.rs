//! Failure-aware analysis: quarantine and the failure-specific conflict
//! rules.
//!
//! When a rank dies survivably in the simulator (`Fault::RankFailure`),
//! every survivor logs a [`EventKind::RankFailed`] notification at the
//! first synchronization that completed around the corpse. This module is
//! the checker side of that contract:
//!
//! 1. **Quarantine.** Events the failed rank logged after its *recovery
//!    line* — the last synchronization call it completed (world
//!    collective, epoch close, or window re-exposure) — are quarantined:
//!    kept in the trace, but excluded from the ordinary conflict rules,
//!    because their memory effects may never have been delivered. The
//!    recovery line coincides with the last region boundary the streaming
//!    checker could have flushed, so batch and streaming analyses
//!    quarantine the same events and stay byte-comparable.
//! 2. **Ghost synchronization.** The simulator lets collectives complete
//!    *around* a corpse, so the survivors keep logging fences the failed
//!    rank never joins. The matcher only closes a collective when every
//!    communicator member arrives, which would leave every post-failure
//!    epoch boundary unmatched — the whole post-failure suffix would
//!    collapse into one concurrent region and drown the survivors in
//!    false conflicts. [`synthesize_ghost_sync`] therefore appends the
//!    failed rank's *ghost participation* in each collective the
//!    survivors completed around it: the synthesized epoch closure the
//!    failure semantics promise, attributed to the failure (the ghosts
//!    are bookkeeping, never evidence).
//! 3. **Failure-specific rules.** A quarantined window *update* is a
//!    logged write that may never have landed. If the window was later
//!    re-exposed (fresh generation over the same memory), the update can
//!    never land at all — [`ConflictKind::LostUpdateAcrossReexposure`].
//!    Otherwise, any survivor that reads the update's target bytes after
//!    observing the failure — a `Get`, or the memory owner's own load —
//!    without an intervening restore or re-exposure of that window reads
//!    data the log says was overwritten: [`ConflictKind::StaleReadFromFailedRank`].
//!
//! Both rules are evaluated by a deterministic scan in (rank, index)
//! order, so the resulting findings are scheduling-independent like every
//! other part of the pipeline.

use crate::degrade::DegradedInfo;
use crate::preprocess::{self, Ctx};
use crate::report::{Confidence, ConsistencyError, ErrorScope, OpInfo, Severity};
use mcc_types::{
    AccessCategory, CommId, ConflictKind, DataMap, Event, EventKind, EventRef, LocId, MemRegion,
    Rank, Trace, WinId,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// What the failure-aware pass established about a trace.
#[derive(Debug, Default)]
pub struct RecoveryAnalysis {
    /// Failed ranks with the epoch count they completed, from the
    /// survivors' notifications; sorted by rank.
    pub failed: Vec<(Rank, u64)>,
    /// Quarantined events (failed-rank events past the recovery line), in
    /// (rank, index) order.
    pub quarantined: Vec<EventRef>,
    /// Findings produced by the failure-specific rules.
    pub findings: Vec<ConsistencyError>,
}

/// Whether any survivor logged a failure notification — the trigger for
/// routing a trace through the failure-aware pipeline.
pub fn has_failure_markers(trace: &Trace) -> bool {
    trace
        .procs
        .iter()
        .any(|p| p.events.iter().any(|e| matches!(e.kind, EventKind::RankFailed { .. })))
}

/// Collects the failed ranks named by `RankFailed` notifications, with
/// the epoch count each completed before dying. Sorted by rank; the first
/// notification wins if survivors ever disagree (they cannot, in traces
/// produced by the simulator).
pub fn failure_notices(trace: &Trace) -> Vec<(Rank, u64)> {
    let mut map: BTreeMap<u32, u64> = BTreeMap::new();
    for (_, event) in trace.iter_events() {
        if let EventKind::RankFailed { failed, epoch } = event.kind {
            map.entry(failed.0).or_insert(epoch);
        }
    }
    map.into_iter().map(|(r, e)| (Rank(r), e)).collect()
}

/// Normalized identity of one collective call, used to line up the
/// failed rank's collective history against the survivors'. Roots are
/// kept communicator-relative — every member logs the same value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollId {
    Barrier(CommId),
    Bcast(CommId, Rank),
    Reduce(CommId, Rank),
    Allreduce(CommId),
    WinCreate(WinId, CommId),
    Fence(WinId),
    WinFree(WinId),
}

impl CollId {
    fn of(kind: &EventKind) -> Option<CollId> {
        Some(match kind {
            EventKind::Barrier { comm } => CollId::Barrier(*comm),
            EventKind::Bcast { comm, root, .. } => CollId::Bcast(*comm, *root),
            EventKind::Reduce { comm, root, .. } => CollId::Reduce(*comm, *root),
            EventKind::Allreduce { comm, .. } => CollId::Allreduce(*comm),
            EventKind::WinCreate { win, comm, .. } => CollId::WinCreate(*win, *comm),
            EventKind::Fence { win } => CollId::Fence(*win),
            EventKind::WinFree { win } => CollId::WinFree(*win),
            _ => return None,
        })
    }

    /// The communicator the collective runs over (`None` for a fence or
    /// free of a window the preprocessor never saw created).
    fn comm(&self, ctx: &Ctx) -> Option<CommId> {
        match self {
            CollId::Barrier(c)
            | CollId::Bcast(c, _)
            | CollId::Reduce(c, _)
            | CollId::Allreduce(c)
            | CollId::WinCreate(_, c) => Some(*c),
            CollId::Fence(w) | CollId::WinFree(w) => ctx.wins.get(w).map(|m| m.comm),
        }
    }
}

/// Appends each failed rank's *ghost participation* in the collectives
/// the survivors completed around it, so post-failure epoch boundaries
/// match and partition regions exactly as they did while the rank was
/// alive.
///
/// For each failed rank the survivors' collective histories (restricted
/// to communicators the failed rank belongs to) must agree with each
/// other and extend the failed rank's own history; the common
/// continuation is appended to the failed rank's log as events at
/// [`LocId::UNKNOWN`]. Synthesis stops at the first window creation in
/// the continuation — a corpse cannot retroactively expose memory — and
/// bails entirely (appending nothing) if the histories do not line up.
///
/// Returns `(rank, appended)` pairs in rank order. Callers must exclude
/// the appended tail from evidence: the ghosts exist so the matcher can
/// close the survivors' collectives, not because the rank did anything.
pub fn synthesize_ghost_sync(trace: &mut Trace) -> Vec<(Rank, usize)> {
    let notices = failure_notices(trace);
    if notices.is_empty() {
        return Vec::new();
    }
    let ctx = preprocess::preprocess(trace);
    let failed: HashSet<u32> = notices.iter().map(|&(f, _)| f.0).collect();

    // Compute every append before mutating: a failed rank's ghosts are
    // derived from survivor logs only, never from another corpse's.
    let mut appends: Vec<(Rank, Vec<EventKind>)> = Vec::new();
    for &(f, _) in &notices {
        // The collective history of `r`, restricted to collectives that
        // include `f` as a member.
        let history = |r: usize| -> Vec<(CollId, &EventKind)> {
            trace.procs[r]
                .events
                .iter()
                .filter_map(|e| {
                    let id = CollId::of(&e.kind)?;
                    let comm = id.comm(&ctx)?;
                    ctx.comm_members(comm).contains(&f).then_some((id, &e.kind))
                })
                .collect()
        };
        let own: Vec<CollId> = history(f.idx()).into_iter().map(|(id, _)| id).collect();

        // The survivors' common continuation beyond the corpse's history.
        let mut ghost: Option<Vec<(CollId, EventKind)>> = None;
        let mut aligned = true;
        for s in 0..trace.nprocs() {
            if s == f.idx() || failed.contains(&(s as u32)) {
                continue;
            }
            let sseq = history(s);
            if sseq.len() < own.len() || !sseq[..own.len()].iter().map(|(id, _)| id).eq(own.iter())
            {
                aligned = false;
                break;
            }
            let tail: Vec<(CollId, EventKind)> =
                sseq[own.len()..].iter().map(|(id, k)| (*id, (*k).clone())).collect();
            match &mut ghost {
                None => ghost = Some(tail),
                Some(g) => {
                    let common = g.iter().zip(&tail).take_while(|(a, b)| a.0 == b.0).count();
                    g.truncate(common);
                }
            }
        }
        let Some(mut ghost) = ghost else { continue };
        if !aligned {
            continue;
        }
        if let Some(p) = ghost.iter().position(|(id, _)| matches!(id, CollId::WinCreate(..))) {
            ghost.truncate(p);
        }
        if !ghost.is_empty() {
            appends.push((f, ghost.into_iter().map(|(_, k)| k).collect()));
        }
    }

    let mut out = Vec::new();
    for (f, kinds) in appends {
        out.push((f, kinds.len()));
        for kind in kinds {
            trace.procs[f.idx()].events.push(Event::new(kind, LocId::UNKNOWN));
        }
    }
    out
}

/// Whether an event is a *recovery line*: a synchronization the rank
/// completed, such that everything before it is known delivered (or
/// separated into an earlier concurrent region) and everything after it
/// is in flight when the rank dies. World collectives are included so the
/// quarantine boundary never falls inside a region the streaming checker
/// already flushed.
fn is_recovery_line(ctx: &Ctx, kind: &EventKind) -> bool {
    let world_win =
        |win: &WinId| ctx.wins.get(win).is_some_and(|meta| ctx.is_world_comm(meta.comm));
    match kind {
        EventKind::Barrier { comm }
        | EventKind::Bcast { comm, .. }
        | EventKind::Reduce { comm, .. }
        | EventKind::Allreduce { comm, .. } => ctx.is_world_comm(*comm),
        EventKind::WinCreate { comm, .. } => ctx.is_world_comm(*comm),
        EventKind::Fence { win } | EventKind::WinFree { win } => world_win(win),
        EventKind::Unlock { .. }
        | EventKind::UnlockAll { .. }
        | EventKind::Complete { .. }
        | EventKind::WaitWin { .. }
        | EventKind::WinReexpose { .. } => true,
        _ => false,
    }
}

/// A quarantined window update: a write the failed rank logged whose
/// memory effect may never have been delivered.
struct QuarantinedWrite {
    ev: EventRef,
    win: WinId,
    /// Absolute rank owning the written memory.
    owner: Rank,
    /// Footprint in the owner's address space.
    map: DataMap,
}

/// Runs the failure-aware pass over a (sanitized) trace. `info` is the
/// sanitizer's record, used to skip the synthetic closes it appended —
/// those are attributed to the failure, not treated as real recovery
/// lines.
pub fn analyze(trace: &Trace, info: &DegradedInfo) -> RecoveryAnalysis {
    let failed = failure_notices(trace);
    if failed.is_empty() {
        return RecoveryAnalysis::default();
    }
    let ctx = preprocess::preprocess(trace);
    let mut synth: HashMap<u32, usize> = HashMap::new();
    for (rank, _) in &info.synthesized {
        *synth.entry(rank.0).or_insert(0) += 1;
    }

    // Quarantine: per failed rank, everything after the last real
    // recovery line (synthetic closes at the tail are skipped).
    let mut quarantined: Vec<EventRef> = Vec::new();
    for &(f, _) in &failed {
        let events = &trace.procs[f.idx()].events;
        let real_len = events.len() - synth.get(&f.0).copied().unwrap_or(0);
        let line = events[..real_len].iter().rposition(|e| is_recovery_line(&ctx, &e.kind));
        let start = line.map_or(0, |i| i + 1);
        quarantined.extend((start..real_len).map(|idx| EventRef::new(f, idx)));
    }

    // Observation points: the first RankFailed{f} in each survivor's log.
    let mut marker: HashMap<(u32, u32), usize> = HashMap::new();
    // First re-exposure of each window, in (rank, index) order.
    let mut reexposed: HashMap<u32, EventRef> = HashMap::new();
    // Recovery actions (Restore / WinReexpose) per (rank, win), ascending.
    let mut restores: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    for (r, proc) in trace.procs.iter().enumerate() {
        for (idx, event) in proc.events.iter().enumerate() {
            match event.kind {
                EventKind::RankFailed { failed: f, .. } => {
                    marker.entry((r as u32, f.0)).or_insert(idx);
                }
                EventKind::WinReexpose { win, .. } => {
                    reexposed.entry(win.0).or_insert(EventRef::new(Rank(r as u32), idx));
                    restores.entry((r as u32, win.0)).or_default().push(idx);
                }
                EventKind::Restore { win, .. } => {
                    restores.entry((r as u32, win.0)).or_default().push(idx);
                }
                _ => {}
            }
        }
    }

    // Quarantined window updates.
    let quarantine_set: HashSet<EventRef> = quarantined.iter().copied().collect();
    let mut writes: Vec<QuarantinedWrite> = Vec::new();
    for &q in &quarantined {
        let kind = &trace.procs[q.rank.idx()].events[q.idx].kind;
        if let Some(acc) = ctx.resolve_rma_event(q.rank, kind) {
            if acc.class.category.is_window_update() {
                writes.push(QuarantinedWrite {
                    ev: q,
                    win: acc.win,
                    owner: acc.target_abs,
                    map: acc.target_map,
                });
            }
        } else if let EventKind::Store { addr, len } = *kind {
            // A local store into the failed rank's own exposed window
            // memory is a window update too (Table I's store class).
            let region = MemRegion::new(addr, len);
            for (win, wr) in ctx.wins_of_rank(q.rank) {
                if wr.overlaps(region) {
                    writes.push(QuarantinedWrite {
                        ev: q,
                        win,
                        owner: q.rank,
                        map: DataMap::contiguous(len).shifted(addr),
                    });
                }
            }
        }
    }

    // The failure-specific rules, in deterministic write order.
    let mut findings = Vec::new();
    for w in &writes {
        let region = w.map.bounding_region_at(0);
        if let Some(&rex) = reexposed.get(&w.win.0) {
            let a = OpInfo::from_trace(trace, w.ev, Some(region));
            let b = OpInfo::from_trace(trace, rex, None);
            findings.push(ConsistencyError {
                severity: Severity::Error,
                scope: ErrorScope::CrossProcess { win: w.win, target: w.owner },
                explanation: format!(
                    "{} was still in flight when {} failed, and {} was re-exposed \
                     afterwards: the update can never land in the fresh generation",
                    a.op, w.ev.rank, w.win
                ),
                a,
                b,
                kind: ConflictKind::LostUpdateAcrossReexposure,
                confidence: Confidence::Recovered,
            });
            continue;
        }
        // Not re-exposed: look for survivors reading the stale bytes
        // after observing the failure. A restore of the window by its
        // owner clears the hazard.
        let owner_restored_after = |upto: Option<usize>| {
            let Some(&m) = marker.get(&(w.owner.0, w.ev.rank.0)) else { return false };
            restores
                .get(&(w.owner.0, w.win.0))
                .is_some_and(|v| v.iter().any(|&i| i > m && upto.is_none_or(|u| i < u)))
        };
        for (s, proc) in trace.procs.iter().enumerate() {
            let s = s as u32;
            if s == w.ev.rank.0 {
                continue;
            }
            let Some(&m) = marker.get(&(s, w.ev.rank.0)) else { continue };
            for (idx, event) in proc.events.iter().enumerate().skip(m + 1) {
                let ev = EventRef::new(Rank(s), idx);
                if quarantine_set.contains(&ev) {
                    continue;
                }
                let (read_region, hazard) = match &event.kind {
                    EventKind::Load { addr, len } if s == w.owner.0 => {
                        let r = MemRegion::new(*addr, *len);
                        let stale =
                            w.map.overlaps_region_at(0, r) && !owner_restored_after(Some(idx));
                        (r, stale)
                    }
                    kind => match ctx.resolve_rma_event(Rank(s), kind) {
                        Some(acc)
                            if acc.class.category == AccessCategory::Get
                                && acc.win == w.win
                                && acc.target_abs == w.owner =>
                        {
                            let stale = acc.target_map.overlaps_at(0, &w.map, 0)
                                && !owner_restored_after(None);
                            (acc.target_map.bounding_region_at(0), stale)
                        }
                        _ => continue,
                    },
                };
                if !hazard {
                    continue;
                }
                let a = OpInfo::from_trace(trace, w.ev, Some(w.map.bounding_region_at(0)));
                let b = OpInfo::from_trace(trace, ev, Some(read_region));
                findings.push(ConsistencyError {
                    severity: Severity::Error,
                    scope: ErrorScope::CrossProcess { win: w.win, target: w.owner },
                    explanation: format!(
                        "{} reads window memory whose last logged writer ({}) failed \
                         before completing its epoch; the logged update may never \
                         have been delivered",
                        b.op, w.ev.rank
                    ),
                    a,
                    b,
                    kind: ConflictKind::StaleReadFromFailedRank,
                    confidence: Confidence::Recovered,
                });
            }
        }
    }

    RecoveryAnalysis { failed, quarantined, findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_types::{CommId, DatatypeId, RmaKind, RmaOp, TraceBuilder};

    fn put(target: u32, disp: u64) -> EventKind {
        EventKind::Rma(RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(target),
            origin_addr: 0x200,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: disp,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        })
    }

    fn get(target: u32, disp: u64) -> EventKind {
        EventKind::Rma(RmaOp {
            kind: RmaKind::Get,
            win: WinId(0),
            target: Rank(target),
            origin_addr: 0x300,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: disp,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        })
    }

    /// Rank 1 dies with a put in flight; rank 0 observes the failure and
    /// gets the bytes the put targeted.
    fn failure_trace(reexpose: bool, restore: bool) -> Trace {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b.push(Rank(1), put(0, 0)); // in flight at death
        b.push(Rank(0), EventKind::Fence { win: WinId(0) });
        b.push(Rank(0), EventKind::RankFailed { failed: Rank(1), epoch: 1 });
        if reexpose {
            b.push(Rank(0), EventKind::WinReexpose { win: WinId(0), generation: 1 });
        }
        if restore {
            b.push(Rank(0), EventKind::Restore { win: WinId(0), id: 0 });
        }
        b.push(Rank(0), EventKind::Load { addr: 0x40, len: 4 });
        b.build()
    }

    #[test]
    fn notices_and_quarantine() {
        let t = failure_trace(false, false);
        assert!(has_failure_markers(&t));
        assert_eq!(failure_notices(&t), vec![(Rank(1), 1)]);
        let rec = analyze(&t, &DegradedInfo::default());
        assert_eq!(rec.failed, vec![(Rank(1), 1)]);
        // Rank 1's put (index 2) is past its last fence? No — the fence at
        // index 1 is its recovery line, so index 2 is quarantined.
        assert_eq!(rec.quarantined, vec![EventRef::new(Rank(1), 2)]);
    }

    #[test]
    fn stale_read_detected() {
        let rec = analyze(&failure_trace(false, false), &DegradedInfo::default());
        assert_eq!(rec.findings.len(), 1, "{:?}", rec.findings);
        let f = &rec.findings[0];
        assert_eq!(f.kind, ConflictKind::StaleReadFromFailedRank);
        assert_eq!(f.a.rank, Rank(1));
        assert_eq!(f.b.rank, Rank(0));
        assert_eq!(f.confidence, Confidence::Recovered);
    }

    #[test]
    fn reexposure_turns_the_write_into_a_lost_update() {
        let rec = analyze(&failure_trace(true, false), &DegradedInfo::default());
        assert_eq!(rec.findings.len(), 1, "{:?}", rec.findings);
        assert_eq!(rec.findings[0].kind, ConflictKind::LostUpdateAcrossReexposure);
    }

    #[test]
    fn restore_clears_the_stale_read() {
        let rec = analyze(&failure_trace(false, true), &DegradedInfo::default());
        assert!(rec.findings.is_empty(), "{:?}", rec.findings);
    }

    #[test]
    fn get_after_failure_is_a_stale_read() {
        // 3 ranks: rank 2 dies with a put to rank 0 in flight; rank 1
        // gets the same bytes after observing the failure.
        let mut b = TraceBuilder::new(3);
        for r in 0..3u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b.push(Rank(2), put(0, 0));
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            b.push(Rank(r), EventKind::RankFailed { failed: Rank(2), epoch: 1 });
        }
        b.push(Rank(1), get(0, 0));
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let rec = analyze(&b.build(), &DegradedInfo::default());
        assert_eq!(rec.findings.len(), 1, "{:?}", rec.findings);
        let f = &rec.findings[0];
        assert_eq!(f.kind, ConflictKind::StaleReadFromFailedRank);
        assert_eq!(f.b.rank, Rank(1));
        assert_eq!(f.b.op, "MPI_Get");
    }

    #[test]
    fn disjoint_read_is_not_stale() {
        // The survivor reads a different displacement: no overlap, no
        // finding.
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b.push(Rank(1), put(0, 0));
        b.push(Rank(0), EventKind::Fence { win: WinId(0) });
        b.push(Rank(0), EventKind::RankFailed { failed: Rank(1), epoch: 1 });
        b.push(Rank(0), EventKind::Load { addr: 0x50, len: 4 });
        let rec = analyze(&b.build(), &DegradedInfo::default());
        assert!(rec.findings.is_empty(), "{:?}", rec.findings);
    }

    #[test]
    fn clean_trace_yields_nothing() {
        let t = TraceBuilder::new(2).build();
        assert!(!has_failure_markers(&t));
        assert!(analyze(&t, &DegradedInfo::default()).findings.is_empty());
    }

    /// Three ranks, rank 2 dies; the survivors complete two more fences
    /// and a free around the corpse. Ghost synthesis appends exactly that
    /// continuation to rank 2's log, at the unknown location.
    #[test]
    fn ghost_sync_appends_the_survivor_continuation() {
        let mut b = TraceBuilder::new(3);
        for r in 0..3u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b.push(Rank(2), put(0, 0)); // in flight at death
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            b.push(Rank(r), EventKind::RankFailed { failed: Rank(2), epoch: 1 });
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            b.push(Rank(r), EventKind::WinFree { win: WinId(0) });
        }
        let mut t = b.build();
        let before = t.procs[2].events.len();
        let ghosts = synthesize_ghost_sync(&mut t);
        assert_eq!(ghosts, vec![(Rank(2), 3)]);
        let tail: Vec<_> = t.procs[2].events[before..].iter().collect();
        assert!(matches!(tail[0].kind, EventKind::Fence { .. }));
        assert!(matches!(tail[1].kind, EventKind::Fence { .. }));
        assert!(matches!(tail[2].kind, EventKind::WinFree { .. }));
        assert!(tail.iter().all(|e| e.loc == mcc_types::LocId::UNKNOWN));
    }

    /// A window the survivors create after the death is not ghosted — a
    /// corpse cannot retroactively expose memory — and synthesis stops
    /// there.
    #[test]
    fn ghost_sync_stops_at_a_post_failure_win_create() {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b.push(Rank(0), EventKind::Fence { win: WinId(0) });
        b.push(Rank(0), EventKind::RankFailed { failed: Rank(1), epoch: 1 });
        b.push(
            Rank(0),
            EventKind::WinCreate { win: WinId(1), base: 0x80, len: 0x10, comm: CommId::WORLD },
        );
        b.push(Rank(0), EventKind::Fence { win: WinId(1) });
        let mut t = b.build();
        let ghosts = synthesize_ghost_sync(&mut t);
        // Only the fence the survivor completed on the *old* window is
        // ghosted; the new window and its fence are not.
        assert_eq!(ghosts, vec![(Rank(1), 1)]);
        assert!(matches!(
            t.procs[1].events.last().map(|e| &e.kind),
            Some(EventKind::Fence { win: WinId(0) })
        ));
    }

    /// A clean trace gets no ghosts.
    #[test]
    fn ghost_sync_is_a_no_op_without_failures() {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Barrier { comm: CommId::WORLD });
        }
        let mut t = b.build();
        assert!(synthesize_ghost_sync(&mut t).is_empty());
        assert_eq!(t.procs[0].events.len(), 1);
        assert_eq!(t.procs[1].events.len(), 1);
    }
}

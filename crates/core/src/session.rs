//! The analysis pipeline API: [`AnalysisSession`].
//!
//! A session owns the configuration of one analysis — thread count,
//! conflict engine, degraded-mode tolerance, and the ablation knobs — and
//! runs the full DN-Analyzer pipeline (preprocessing, synchronization
//! matching, DAG construction, vector clocks, concurrent-region and epoch
//! extraction, the two detectors) on any number of traces:
//!
//! ```
//! use mcc_core::session::{AnalysisSession, Engine};
//! # use mcc_types::Trace;
//! let session = AnalysisSession::builder()
//!     .threads(4)
//!     .engine(Engine::Sweep)
//!     .tolerate_truncation(false)
//!     .build();
//! let report = session.run(&Trace::new(2));
//! assert!(!report.has_errors());
//! ```
//!
//! # Parallel sharded detection
//!
//! Both detectors decompose into independent shards: the intra-epoch
//! detector works epoch by epoch, the cross-process detector window
//! instance by window instance (`(region, window, target)` — see
//! [`crate::inter`]). With `threads(n)`, shards run on up to `n` OS
//! threads via the vendored `rayon::par_map`.
//!
//! # Determinism
//!
//! The report is **bit-identical at every thread count and in both
//! engines' finding order**: shards are enumerated in a fixed order,
//! `par_map` returns results in index order regardless of scheduling, and
//! the merged findings are stably sorted by
//! [`ConsistencyError::canonical_key`] — `(rank, event id, byte offset)`
//! of the two operations — before deduplication, so even the surviving
//! representative of a duplicated finding is scheduling-independent.

use crate::check::{AnalysisStats, CheckReport};
use crate::dag;
use crate::degrade::{self, DegradedInfo};
use crate::epoch;
use crate::inter;
use crate::intra;
use crate::matching;
use crate::preprocess;
use crate::recovery;
use crate::regions::{self, Regions};
use crate::report::{Confidence, ConsistencyError};
use crate::vc::Clocks;
use mcc_obs::RecorderHandle;
use mcc_types::Trace;
use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

/// Which cross-process conflict engine to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The sharded sort-and-sweep engine: O(n log n + k) per shard,
    /// parallelizable. The default.
    #[default]
    Sweep,
    /// The combinatorial all-pairs baseline (§IV-C4 ablation; always
    /// sequential).
    Naive,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Sweep => f.write_str("sweep"),
            Engine::Naive => f.write_str("naive"),
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sweep" => Ok(Engine::Sweep),
            "naive" => Ok(Engine::Naive),
            other => Err(format!("unknown engine '{other}' (expected 'sweep' or 'naive')")),
        }
    }
}

/// Builder for [`AnalysisSession`]. Defaults reproduce the paper's
/// configuration: single-threaded, sweep engine, strict (non-tolerant)
/// trace handling, region partitioning on, progress-counter matching.
#[derive(Debug, Clone)]
pub struct AnalysisSessionBuilder {
    threads: usize,
    engine: Engine,
    tolerate_truncation: bool,
    partition_regions: bool,
    naive_matching: bool,
    recorder: RecorderHandle,
}

impl Default for AnalysisSessionBuilder {
    fn default() -> Self {
        Self {
            threads: 1,
            engine: Engine::Sweep,
            tolerate_truncation: false,
            partition_regions: true,
            naive_matching: false,
            recorder: RecorderHandle::disabled(),
        }
    }
}

impl AnalysisSessionBuilder {
    /// Number of worker threads for the detection phase. `0` is treated
    /// as `1`. The report is identical at every thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Selects the cross-process conflict engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// When set, [`AnalysisSession::run`] first repairs damaged traces
    /// via [`degrade::sanitize`] and downgrades the report to degraded
    /// confidence if the sanitizer had to intervene, instead of assuming
    /// an internally consistent trace.
    pub fn tolerate_truncation(mut self, yes: bool) -> Self {
        self.tolerate_truncation = yes;
        self
    }

    /// Partition the trace into concurrent regions at global
    /// synchronization (§III-B); off = one region (ablation).
    pub fn partition_regions(mut self, yes: bool) -> Self {
        self.partition_regions = yes;
        self
    }

    /// Use the scan-from-the-start synchronization matcher instead of the
    /// progress-counter Algorithm 1 (ablation).
    pub fn naive_matching(mut self, yes: bool) -> Self {
        self.naive_matching = yes;
        self
    }

    /// Attaches an observability recorder: phase spans and pipeline
    /// counters of every run flow into it. Defaults to
    /// [`RecorderHandle::disabled`], whose operations are single-branch
    /// no-ops, so un-instrumented sessions pay (nearly) nothing.
    pub fn recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> AnalysisSession {
        AnalysisSession { cfg: self }
    }
}

/// A configured analysis pipeline. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct AnalysisSession {
    cfg: AnalysisSessionBuilder,
}

impl AnalysisSession {
    /// Starts configuring a session.
    pub fn builder() -> AnalysisSessionBuilder {
        AnalysisSessionBuilder::default()
    }

    /// A session with the default (paper) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// The configured engine.
    pub fn engine(&self) -> Engine {
        self.cfg.engine
    }

    /// The attached observability recorder (disabled unless
    /// [`AnalysisSessionBuilder::recorder`] installed one).
    pub fn recorder(&self) -> &RecorderHandle {
        &self.cfg.recorder
    }

    /// Runs the pipeline on a trace.
    ///
    /// Without [`AnalysisSessionBuilder::tolerate_truncation`] the trace
    /// must be internally consistent (as produced by the profiler or
    /// [`mcc_types::TraceBuilder`]); with it, damaged traces are repaired
    /// first and the report is marked degraded when repair was needed.
    ///
    /// Traces carrying failure notifications
    /// ([`mcc_types::EventKind::RankFailed`]) are automatically routed
    /// through the failure-aware pipeline ([`Self::run_recovered`])
    /// regardless of the tolerance setting: a survivable failure is not
    /// trace damage, and analyzing the failed rank's in-flight tail with
    /// the ordinary rules would mix delivered and undelivered effects.
    pub fn run(&self, trace: &Trace) -> CheckReport {
        if recovery::has_failure_markers(trace) {
            self.run_recovered(trace).0
        } else if self.cfg.tolerate_truncation {
            self.run_with_repair(trace).0
        } else {
            self.analyze(trace)
        }
    }

    /// Like [`run`](Self::run) with tolerance on, but also returns what
    /// the sanitizer did — the entry point for the CLI's tolerant path.
    pub fn run_with_repair(&self, trace: &Trace) -> (CheckReport, DegradedInfo) {
        if recovery::has_failure_markers(trace) {
            return self.run_recovered(trace);
        }
        let (repaired, info) = degrade::sanitize(trace);
        if !info.is_clean() {
            let obs = &self.cfg.recorder;
            obs.add("degraded_dropped_events_total", info.dropped.len() as u64);
            obs.add("degraded_synthesized_closes_total", info.synthesized.len() as u64);
            mcc_obs::log!(
                Warn,
                "trace repaired before analysis: {} event(s) dropped, {} close(s) synthesized",
                info.dropped.len(),
                info.synthesized.len()
            );
        }
        let mut report = self.analyze(&repaired);
        if !info.is_clean() {
            report.mark_degraded();
        }
        (report, info)
    }

    /// The failure-aware pipeline for traces that record a survivable
    /// rank failure.
    ///
    /// The trace is sanitized (the failed rank's torn tail gets its
    /// synthetic epoch closes, attributed to the failure), analyzed with
    /// the ordinary rules, and then post-processed against the
    /// [`recovery`] pass: regular findings that cite *quarantined* events
    /// — the failed rank's in-flight tail, whose memory effects may never
    /// have been delivered — are retracted, and the failure-specific
    /// findings (stale reads, lost updates across re-exposure) are merged
    /// in canonical order. The report is
    /// [`Confidence::Recovered`] unless a *surviving* rank's log also
    /// needed repair, which is real damage and keeps the report
    /// [`Confidence::Degraded`].
    pub fn run_recovered(&self, trace: &Trace) -> (CheckReport, DegradedInfo) {
        let obs = &self.cfg.recorder;
        // Ghost synchronization first: append the failed ranks' ghost
        // participation in the collectives the survivors completed around
        // them, so post-failure epoch boundaries still match. The ghosts
        // are recorded as synthesized events — the recovery pass skips
        // them when placing the quarantine line, and the degraded summary
        // attributes them to the failure.
        let mut ghosted = trace.clone();
        let ghosts = recovery::synthesize_ghost_sync(&mut ghosted);
        let (repaired, mut info) = degrade::sanitize(&ghosted);
        for &(rank, n) in &ghosts {
            obs.add("recovered_ghost_sync_total", n as u64);
            for _ in 0..n {
                info.synthesized
                    .push((rank, "ghost participation in a survivor collective".to_string()));
            }
        }
        let mut report = self.analyze(&repaired);
        let rec = recovery::analyze(&repaired, &info);
        obs.add("recovered_failed_ranks_total", rec.failed.len() as u64);
        obs.add("recovered_quarantined_events_total", rec.quarantined.len() as u64);
        mcc_obs::log!(
            Warn,
            "failure-aware analysis: {} failed rank(s), {} event(s) quarantined, \
             {} failure-specific finding(s)",
            rec.failed.len(),
            rec.quarantined.len(),
            rec.findings.len()
        );

        // Retract regular findings built on quarantined evidence BEFORE
        // merging the failure-specific ones (which legitimately cite the
        // quarantined write as one side of the pair).
        let quarantined: HashSet<_> = rec.quarantined.iter().copied().collect();
        report
            .diagnostics
            .retain(|d| !quarantined.contains(&d.a.ev) && !quarantined.contains(&d.b.ev));
        for d in &rec.findings {
            use crate::report::Severity;
            use mcc_types::ConflictKind;
            obs.add(
                match d.severity {
                    Severity::Error => "findings_error_total",
                    Severity::Warning => "findings_warning_total",
                },
                1,
            );
            obs.add(
                match d.kind {
                    ConflictKind::StaleReadFromFailedRank => "findings_stale_read_total",
                    ConflictKind::LostUpdateAcrossReexposure => "findings_lost_update_total",
                    ConflictKind::OverlapViolation => "findings_overlap_total",
                    ConflictKind::SeparationViolation => "findings_separation_total",
                },
                1,
            );
        }
        report.diagnostics.extend(rec.findings);
        report.diagnostics.sort_by_key(|x| x.canonical_key());
        let mut seen = HashSet::new();
        report.diagnostics.retain(|e| seen.insert(e.dedup_key()));

        // Repair at a rank that did NOT fail is genuine trace damage.
        let failed: HashSet<u32> = rec.failed.iter().map(|(r, _)| r.0).collect();
        let survivor_damage =
            info.dropped.iter().map(|(r, _, _)| r.0).any(|r| !failed.contains(&r))
                || info.synthesized.iter().map(|(r, _)| r.0).any(|r| !failed.contains(&r));
        if survivor_damage {
            report.mark_degraded();
        } else {
            report.mark_recovered();
        }
        obs.add(
            mcc_obs::names::FINDINGS_RECOVERED,
            report
                .diagnostics
                .iter()
                .filter(|d| d.confidence == crate::report::Confidence::Recovered)
                .count() as u64,
        );
        (report, info)
    }

    fn analyze(&self, trace: &Trace) -> CheckReport {
        let obs = &self.cfg.recorder;
        let _run_span = obs.span("check.run");
        let run_start = Instant::now();
        let mut stats = AnalysisStats { total_events: trace.total_events(), ..Default::default() };
        obs.add("events_total", stats.total_events as u64);

        let t0 = Instant::now();
        let ctx = {
            let _s = obs.span("check.preprocess");
            preprocess::preprocess(trace)
        };
        stats.preprocess_time = t0.elapsed();

        let t0 = Instant::now();
        let matching = {
            let _s = obs.span("check.matching");
            if self.cfg.naive_matching {
                matching::match_sync_naive(trace, &ctx)
            } else {
                matching::match_sync(trace, &ctx)
            }
        };
        stats.matching_time = t0.elapsed();
        stats.unmatched_sync = matching.unmatched.len();
        obs.add("unmatched_sync_total", stats.unmatched_sync as u64);

        let t0 = Instant::now();
        let (dag, clocks) = {
            let _s = obs.span("check.dag");
            let dag = dag::build(trace, &ctx, &matching);
            let clocks = Clocks::compute(&dag);
            (dag, clocks)
        };
        stats.dag_nodes = dag.node_count();
        stats.dag_edges = dag.edge_count();
        stats.dag_time = t0.elapsed();
        obs.add("dag_nodes_total", stats.dag_nodes as u64);
        obs.add("dag_edges_total", stats.dag_edges as u64);

        let t0 = Instant::now();
        let (regions, epochs) = {
            let _s = obs.span("check.regions");
            let regions = if self.cfg.partition_regions {
                regions::partition(trace, &matching)
            } else {
                Regions::whole(trace)
            };
            let epochs = epoch::extract(trace, &ctx);
            (regions, epochs)
        };
        stats.regions = regions.count;
        stats.epochs = epochs.epochs.len();
        stats.epochs_per_rank = epochs.per_rank_counts(trace.nprocs());
        stats.region_time = t0.elapsed();
        obs.add("regions_total", stats.regions as u64);
        obs.add("epochs_total", stats.epochs as u64);

        // Detection over independent shards. Shard lists are built in a
        // fixed order and `par_map` returns per-shard results in index
        // order, so the concatenation below does not depend on
        // scheduling. Per-shard counters are accumulated inside each
        // shard and added once on completion, so totals commute and the
        // metrics snapshot is identical at every thread count.
        let t0 = Instant::now();
        let threads = self.cfg.threads;
        let detect_span = obs.span("check.detect");
        let intra_found = {
            let _s = obs.span("check.detect.intra");
            rayon::par_map(epochs.epochs.len(), threads, |i| {
                intra::check_epoch(trace, &ctx, &epochs.epochs[i], epochs.ordinals[i])
            })
        };
        let inter_found = {
            let _s = obs.span("check.detect.inter");
            match self.cfg.engine {
                Engine::Sweep => {
                    let shards = {
                        let _s = obs.span("check.shard");
                        inter::build_shards(trace, &ctx, &epochs, &regions, threads)
                    };
                    obs.add("shards_total", shards.len() as u64);
                    for shard in &shards {
                        obs.observe("shard_items", shard.len() as u64);
                    }
                    rayon::par_map(shards.len(), threads, |i| {
                        inter::detect_shard(trace, &dag, &clocks, &shards[i], obs)
                    })
                }
                Engine::Naive => {
                    vec![inter::detect_naive(trace, &ctx, &epochs, &regions, &dag, &clocks, obs)]
                }
            }
        };
        drop(detect_span);
        let mut diagnostics: Vec<ConsistencyError> =
            intra_found.into_iter().chain(inter_found).flatten().collect();
        stats.detect_time = t0.elapsed();

        // Canonical merge: stable sort by (rank, event id, byte offset)
        // of the pair, THEN deduplicate, so the representative of each
        // duplicated source-level conflict is the canonically smallest
        // occurrence whatever order the shards produced them in.
        let t0 = Instant::now();
        let raw = diagnostics.len();
        {
            let _s = obs.span("check.merge");
            diagnostics.sort_by_key(|x| x.canonical_key());
            let mut seen = HashSet::new();
            diagnostics.retain(|e| seen.insert(e.dedup_key()));
        }
        stats.merge_time = t0.elapsed();
        obs.add("dedup_dropped_total", (raw - diagnostics.len()) as u64);
        for d in &diagnostics {
            use crate::report::Severity;
            use mcc_types::ConflictKind;
            obs.add(
                match d.severity {
                    Severity::Error => "findings_error_total",
                    Severity::Warning => "findings_warning_total",
                },
                1,
            );
            obs.add(
                match d.kind {
                    ConflictKind::OverlapViolation => "findings_overlap_total",
                    ConflictKind::SeparationViolation => "findings_separation_total",
                    ConflictKind::StaleReadFromFailedRank => "findings_stale_read_total",
                    ConflictKind::LostUpdateAcrossReexposure => "findings_lost_update_total",
                },
                1,
            );
        }
        mcc_obs::log!(
            Debug,
            "analysis done: {} event(s), {} finding(s) ({} raw), {} epoch(s), {} region(s)",
            stats.total_events,
            diagnostics.len(),
            raw,
            stats.epochs,
            stats.regions
        );
        stats.total_time = run_start.elapsed();

        CheckReport { diagnostics, stats, confidence: Confidence::Complete }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_types::{CommId, DatatypeId, EventKind, Rank, RmaKind, RmaOp, TraceBuilder, WinId};

    fn buggy_trace() -> Trace {
        let mut b = TraceBuilder::new(3);
        for r in 0..3u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 64, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let put = |target: u32| {
            EventKind::Rma(RmaOp {
                kind: RmaKind::Put,
                win: WinId(0),
                target: Rank(target),
                origin_addr: 200,
                origin_count: 1,
                origin_dtype: DatatypeId::INT,
                target_disp: 0,
                target_count: 1,
                target_dtype: DatatypeId::INT,
            })
        };
        b.push(Rank(0), put(1));
        b.push(Rank(2), put(1));
        b.push(Rank(0), EventKind::Store { addr: 200, len: 4 });
        b.push(Rank(1), EventKind::Store { addr: 64, len: 4 });
        for r in 0..3u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b.build()
    }

    #[test]
    fn builder_defaults() {
        let s = AnalysisSession::new();
        assert_eq!(s.threads(), 1);
        assert_eq!(s.engine(), Engine::Sweep);
        let s = AnalysisSession::builder().threads(0).build();
        assert_eq!(s.threads(), 1, "zero threads clamps to one");
    }

    #[test]
    fn engine_parses_from_str() {
        assert_eq!("sweep".parse::<Engine>().unwrap(), Engine::Sweep);
        assert_eq!("naive".parse::<Engine>().unwrap(), Engine::Naive);
        assert!("fast".parse::<Engine>().is_err());
        assert_eq!(Engine::Sweep.to_string(), "sweep");
    }

    #[test]
    fn session_finds_both_error_classes() {
        let report = AnalysisSession::new().run(&buggy_trace());
        assert!(report.has_errors());
        assert!(report.diagnostics.len() >= 3, "intra + two cross findings");
    }

    #[test]
    fn identical_reports_across_thread_counts_and_engines() {
        let trace = buggy_trace();
        let base = AnalysisSession::new().run(&trace);
        for threads in [1, 2, 4, 8] {
            for engine in [Engine::Sweep, Engine::Naive] {
                let r =
                    AnalysisSession::builder().threads(threads).engine(engine).build().run(&trace);
                assert_eq!(
                    r.diagnostics.len(),
                    base.diagnostics.len(),
                    "threads={threads} engine={engine}"
                );
                for (x, y) in r.diagnostics.iter().zip(&base.diagnostics) {
                    assert_eq!(x.canonical_key(), y.canonical_key());
                    assert_eq!(x.severity, y.severity);
                    assert_eq!(x.kind, y.kind);
                }
            }
        }
    }

    #[test]
    fn findings_in_canonical_order() {
        let report = AnalysisSession::builder().threads(4).build().run(&buggy_trace());
        let keys: Vec<_> = report.diagnostics.iter().map(|e| e.canonical_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "findings sorted by (rank, event id, byte offset)");
    }

    #[test]
    fn tolerant_session_repairs_truncated_trace() {
        let mut t = buggy_trace();
        let cut = t.procs[0].events.len() - 1;
        t.procs[0].events.truncate(cut);
        let session = AnalysisSession::builder().tolerate_truncation(true).build();
        let report = session.run(&t);
        assert_eq!(report.confidence, Confidence::Degraded);
        assert!(report.has_errors());
        let (report2, info) = session.run_with_repair(&t);
        assert!(!info.is_clean());
        assert_eq!(report2.diagnostics.len(), report.diagnostics.len());
    }

    #[test]
    fn degraded_reports_identical_across_thread_counts() {
        let mut t = buggy_trace();
        let cut = t.procs[0].events.len() - 1;
        t.procs[0].events.truncate(cut);
        let run = |threads| {
            AnalysisSession::builder()
                .threads(threads)
                .tolerate_truncation(true)
                .build()
                .run(&t)
                .render()
        };
        let base = run(1);
        assert_eq!(run(2), base);
        assert_eq!(run(4), base);
    }
}

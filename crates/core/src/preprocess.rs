//! Trace preprocessing (paper §IV-C1): rebuilding communicator, group,
//! window and datatype information from the logged support calls.
//!
//! The DN-Analyzer is an offline tool: everything it knows comes from the
//! trace. Group-manipulation calls log *relative* ranks, so this pass
//! resolves them to absolute ranks ("DN-Analyzer needs to convert the
//! relative ranks in the user-defined communicators/groups to absolute
//! ranks in the basic communicator"); datatype-manipulation calls are
//! folded into data-maps; `MPI_Win_create` events are combined into a
//! per-window table of each member's exposed buffer.

use mcc_types::{
    AccessClass, AtomicOp, CommId, DataMap, DatatypeId, EventKind, EventRef, GroupId, MemRegion,
    Rank, RmaOp, Trace, WinId,
};
use std::collections::HashMap;

/// Resolved datatype: layout plus basic element type (for the accumulate
/// exception).
#[derive(Debug, Clone)]
pub struct DtypeInfo {
    /// Byte layout of one element.
    pub map: DataMap,
    /// Underlying primitive type if homogeneous.
    pub basic: Option<DatatypeId>,
}

/// Window metadata reconstructed from the collective `MPI_Win_create`.
#[derive(Debug, Clone)]
pub struct WinMeta {
    /// Communicator the window spans.
    pub comm: CommId,
    /// Exposed `(base, len)` per member position (comm-relative).
    pub ranks: Vec<(u64, u64)>,
}

impl WinMeta {
    /// The exposed region of the member at position `rel`.
    pub fn region_of_rel(&self, rel: u32) -> MemRegion {
        let (base, len) = self.ranks[rel as usize];
        MemRegion::new(base, len)
    }
}

/// A fully-resolved one-sided operation.
#[derive(Debug, Clone)]
pub struct RmaFootprint {
    /// Absolute target rank.
    pub target_abs: Rank,
    /// Origin-buffer footprint, shifted to absolute addresses in the
    /// origin rank's space.
    pub origin_map: DataMap,
    /// Target footprint, shifted to absolute addresses in the target
    /// rank's space (window base + displacement applied).
    pub target_map: DataMap,
    /// Basic element type of the transfer (for the accumulate exception).
    pub basic: Option<DatatypeId>,
}

/// The preprocessed context.
#[derive(Debug)]
pub struct Ctx {
    /// Number of ranks.
    pub nprocs: usize,
    /// Per-rank group tables (group handles are process-local).
    pub groups: Vec<HashMap<GroupId, Vec<Rank>>>,
    /// Communicator members, absolute, in member order.
    pub comms: HashMap<CommId, Vec<Rank>>,
    /// Window table.
    pub wins: HashMap<WinId, WinMeta>,
    /// Per-rank datatype tables.
    pub dtypes: Vec<HashMap<DatatypeId, DtypeInfo>>,
}

impl Ctx {
    /// Resolves a datatype handle for `rank`.
    pub fn resolve_dtype(&self, rank: Rank, id: DatatypeId) -> DtypeInfo {
        if let Some(size) = id.primitive_size() {
            return DtypeInfo { map: DataMap::contiguous(size), basic: Some(id) };
        }
        self.dtypes[rank.idx()]
            .get(&id)
            .cloned()
            .unwrap_or_else(|| panic!("{rank}: unknown datatype {id} in trace"))
    }

    /// Translates a comm-relative rank to absolute.
    pub fn abs_rank(&self, comm: CommId, rel: Rank) -> Rank {
        self.comms
            .get(&comm)
            .and_then(|m| m.get(rel.0 as usize))
            .copied()
            .unwrap_or_else(|| panic!("rank {rel} out of range for {comm}"))
    }

    /// The members of a communicator.
    pub fn comm_members(&self, comm: CommId) -> &[Rank] {
        self.comms.get(&comm).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether a communicator spans every rank (its collectives globally
    /// synchronize and partition the DAG into regions).
    pub fn is_world_comm(&self, comm: CommId) -> bool {
        self.comms.get(&comm).is_some_and(|m| m.len() == self.nprocs)
    }

    /// The window region exposed by absolute rank `abs` in `win`, if that
    /// rank is a member.
    pub fn win_region(&self, win: WinId, abs: Rank) -> Option<MemRegion> {
        let meta = self.wins.get(&win)?;
        let members = self.comms.get(&meta.comm)?;
        let rel = members.iter().position(|&r| r == abs)?;
        Some(meta.region_of_rel(rel as u32))
    }

    /// All windows that expose memory of `abs`, with their regions.
    pub fn wins_of_rank(&self, abs: Rank) -> Vec<(WinId, MemRegion)> {
        let mut out: Vec<(WinId, MemRegion)> =
            self.wins.keys().filter_map(|&w| self.win_region(w, abs).map(|r| (w, r))).collect();
        out.sort_by_key(|(w, _)| *w);
        out
    }

    /// Resolves a logged RMA operation (issued by `origin`) to absolute
    /// footprints.
    pub fn rma_footprint(&self, origin: Rank, op: &RmaOp) -> RmaFootprint {
        let meta = self.wins.get(&op.win).unwrap_or_else(|| panic!("unknown {} in trace", op.win));
        let target_abs = self.abs_rank(meta.comm, op.target);
        let (win_base, _) = meta.ranks[op.target.0 as usize];
        let origin_info = self.resolve_dtype(origin, op.origin_dtype);
        let target_info = self.resolve_dtype(origin, op.target_dtype);
        RmaFootprint {
            target_abs,
            origin_map: origin_info.map.tiled(op.origin_count as u64).shifted(op.origin_addr),
            target_map: target_info
                .map
                .tiled(op.target_count as u64)
                .shifted(win_base + op.target_disp),
            basic: origin_info.basic,
        }
    }
}

/// A one-sided operation of any flavour (MPI-2 put/get/accumulate, MPI-3
/// atomics, request-based ops), resolved to the footprint model the
/// detectors work with.
#[derive(Debug, Clone)]
pub struct ResolvedAccess {
    /// The window.
    pub win: WinId,
    /// Absolute target rank.
    pub target_abs: Rank,
    /// Table I classification at the target window.
    pub class: AccessClass,
    /// Footprint in the target's window (absolute addresses).
    pub target_map: DataMap,
    /// Local bytes the pending operation *reads* (put/accumulate origin,
    /// atomic operand and compare buffers).
    pub reads: DataMap,
    /// Local bytes the pending operation *writes* (get origin, atomic
    /// result buffer).
    pub writes: DataMap,
}

impl ResolvedAccess {
    /// Whether the pending operation's local effects conflict with
    /// another operation's (both at the same rank, unordered).
    pub fn origin_conflicts_with(&self, other: &ResolvedAccess) -> bool {
        self.writes.overlaps_at(0, &other.writes, 0)
            || self.writes.overlaps_at(0, &other.reads, 0)
            || self.reads.overlaps_at(0, &other.writes, 0)
    }

    /// Whether a local CPU access (load/store of `region`) conflicts with
    /// the pending operation's local effects.
    pub fn origin_conflicts_with_access(&self, is_store: bool, region: MemRegion) -> bool {
        if self.writes.overlaps_region_at(0, region) {
            return true; // the op writes bytes the CPU touches either way
        }
        is_store && self.reads.overlaps_region_at(0, region)
    }
}

impl Ctx {
    /// Resolves any one-sided communication event; `None` for non-RMA
    /// events.
    pub fn resolve_rma_event(&self, origin: Rank, kind: &EventKind) -> Option<ResolvedAccess> {
        match kind {
            EventKind::Rma(op) | EventKind::RmaReq { op, .. } => {
                Some(self.resolve_plain(origin, op))
            }
            EventKind::RmaAtomic(op) => Some(self.resolve_atomic(origin, op)),
            _ => None,
        }
    }

    fn resolve_plain(&self, origin: Rank, op: &RmaOp) -> ResolvedAccess {
        let fp = self.rma_footprint(origin, op);
        let class = op.kind.access_class(fp.basic.unwrap_or(DatatypeId::BYTE));
        let (reads, writes) = match op.kind {
            mcc_types::RmaKind::Get => (DataMap::empty(), fp.origin_map.clone()),
            _ => (fp.origin_map.clone(), DataMap::empty()),
        };
        ResolvedAccess {
            win: op.win,
            target_abs: fp.target_abs,
            class,
            target_map: fp.target_map,
            reads,
            writes,
        }
    }

    fn resolve_atomic(&self, _origin: Rank, op: &AtomicOp) -> ResolvedAccess {
        let meta = self.wins.get(&op.win).unwrap_or_else(|| panic!("unknown {} in trace", op.win));
        let target_abs = self.abs_rank(meta.comm, op.target);
        let (win_base, _) = meta.ranks[op.target.0 as usize];
        let elem = op.dtype.primitive_size().expect("atomics use basic datatypes");
        let span = DataMap::contiguous(elem).tiled(op.count as u64);
        let mut reads = vec![span.clone().shifted(op.origin_addr)];
        if let Some(cmp) = op.compare_addr {
            reads.push(span.clone().shifted(cmp));
        }
        let reads = DataMap::from_segments(reads.iter().flat_map(|m| m.segments().iter().copied()));
        let writes = span.clone().shifted(op.result_addr);
        ResolvedAccess {
            win: op.win,
            target_abs,
            class: op.kind.access_class(op.dtype),
            target_map: span.shifted(win_base + op.target_disp),
            reads,
            writes,
        }
    }
}

/// Scans a trace and builds the context.
pub fn preprocess(trace: &Trace) -> Ctx {
    let n = trace.nprocs();
    let mut ctx = Ctx {
        nprocs: n,
        groups: vec![HashMap::new(); n],
        comms: HashMap::new(),
        wins: HashMap::new(),
        dtypes: vec![HashMap::new(); n],
    };
    let world: Vec<Rank> = (0..n as u32).map(Rank).collect();
    ctx.comms.insert(CommId::WORLD, world.clone());
    for g in &mut ctx.groups {
        g.insert(GroupId::WORLD, world.clone());
    }

    // Window creation needs each member's contribution; collect pieces.
    type WinParts = HashMap<WinId, (CommId, HashMap<Rank, (u64, u64)>)>;
    let mut win_parts: WinParts = HashMap::new();
    // Ranks the survivors report failed: a window created *after* the
    // failure legitimately has no contribution from the corpse.
    let mut failed: std::collections::HashSet<Rank> = std::collections::HashSet::new();

    for (er, event) in trace.iter_events() {
        let rank = er.rank;
        match &event.kind {
            EventKind::RankFailed { failed: f, .. } => {
                failed.insert(*f);
            }
            EventKind::GroupIncl { old, new, ranks } => {
                let old_members = ctx.groups[rank.idx()]
                    .get(old)
                    .cloned()
                    .unwrap_or_else(|| panic!("{rank}: GroupIncl references unknown {old}"));
                let members: Vec<Rank> = ranks.iter().map(|&r| old_members[r as usize]).collect();
                ctx.groups[rank.idx()].insert(*new, members);
            }
            EventKind::CommGroup { comm, group } => {
                let members = ctx
                    .comms
                    .get(comm)
                    .cloned()
                    .unwrap_or_else(|| panic!("{rank}: CommGroup references unknown {comm}"));
                ctx.groups[rank.idx()].insert(*group, members);
            }
            EventKind::CommCreate { group, new: Some(c), .. } => {
                let members = ctx.groups[rank.idx()]
                    .get(group)
                    .cloned()
                    .unwrap_or_else(|| panic!("{rank}: CommCreate references unknown {group}"));
                ctx.comms.insert(*c, members);
            }
            EventKind::WinCreate { win, base, len, comm } => {
                let entry = win_parts.entry(*win).or_insert_with(|| (*comm, HashMap::new()));
                entry.1.insert(rank, (*base, *len));
            }
            EventKind::TypeContiguous { new, count, elem } => {
                let info = ctx.resolve_dtype(rank, *elem);
                ctx.dtypes[rank.idx()].insert(
                    *new,
                    DtypeInfo { map: info.map.tiled(*count as u64), basic: info.basic },
                );
            }
            EventKind::TypeVector { new, count, blocklen, stride, elem } => {
                let info = ctx.resolve_dtype(rank, *elem);
                let block = info.map.tiled(*blocklen as u64);
                let span = block.span();
                let one = block.with_extent((info.map.extent() * *stride as u64).max(span));
                ctx.dtypes[rank.idx()]
                    .insert(*new, DtypeInfo { map: one.tiled(*count as u64), basic: info.basic });
            }
            EventKind::TypeStruct { new, fields } => {
                let mut parts = Vec::with_capacity(fields.len());
                let mut basic: Option<Option<DatatypeId>> = None;
                for &(disp, count, ty) in fields {
                    let info = ctx.resolve_dtype(rank, ty);
                    basic = Some(match basic {
                        None => info.basic,
                        Some(b) if b == info.basic => b,
                        Some(_) => None,
                    });
                    parts.push((disp, info.map.tiled(count as u64)));
                }
                ctx.dtypes[rank.idx()].insert(
                    *new,
                    DtypeInfo { map: DataMap::structured(parts), basic: basic.flatten() },
                );
            }
            _ => {}
        }
        let _ = er;
    }

    // Assemble window tables in member order.
    for (win, (comm, parts)) in win_parts {
        let members = ctx
            .comms
            .get(&comm)
            .cloned()
            .unwrap_or_else(|| panic!("window {win} created over unknown {comm}"));
        let ranks = members
            .iter()
            .map(|m| {
                parts.get(m).copied().unwrap_or_else(|| {
                    // A failed rank exposes nothing in windows created
                    // after its death; anyone else missing is a torn log.
                    if failed.contains(m) {
                        (0, 0)
                    } else {
                        panic!("window {win}: member {m} logged no WinCreate")
                    }
                })
            })
            .collect();
        ctx.wins.insert(win, WinMeta { comm, ranks });
    }
    ctx
}

/// Convenience re-export: a reference to an event plus its resolved
/// footprint, used by the detectors.
pub type OpRef = (EventRef, RmaFootprint);

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_types::{RmaKind, TraceBuilder};

    fn two_rank_win_trace() -> Trace {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate {
                    win: WinId(0),
                    base: 100 + 100 * r as u64,
                    len: 64,
                    comm: CommId::WORLD,
                },
            );
        }
        b.build()
    }

    #[test]
    fn world_comm_prepopulated() {
        let ctx = preprocess(&Trace::new(3));
        assert_eq!(ctx.comm_members(CommId::WORLD), &[Rank(0), Rank(1), Rank(2)]);
        assert!(ctx.is_world_comm(CommId::WORLD));
        assert_eq!(ctx.abs_rank(CommId::WORLD, Rank(2)), Rank(2));
    }

    #[test]
    fn window_table_assembled() {
        let ctx = preprocess(&two_rank_win_trace());
        let meta = &ctx.wins[&WinId(0)];
        assert_eq!(meta.comm, CommId::WORLD);
        assert_eq!(meta.ranks, vec![(100, 64), (200, 64)]);
        assert_eq!(ctx.win_region(WinId(0), Rank(1)), Some(MemRegion::new(200, 64)));
        assert_eq!(ctx.wins_of_rank(Rank(0)), vec![(WinId(0), MemRegion::new(100, 64))]);
    }

    #[test]
    fn group_and_comm_resolution() {
        let mut b = TraceBuilder::new(4);
        // Rank 0 creates a group of ranks {1, 3} and a communicator; ranks
        // 1 and 3 do the same (each logs its own handles).
        for r in [0u32, 1, 3] {
            b.push(
                Rank(r),
                EventKind::GroupIncl { old: GroupId::WORLD, new: GroupId(5), ranks: vec![1, 3] },
            );
            b.push(
                Rank(r),
                EventKind::CommCreate {
                    old: CommId::WORLD,
                    group: GroupId(5),
                    new: if r == 0 { None } else { Some(CommId(1)) },
                },
            );
        }
        let t = b.build();
        let ctx = preprocess(&t);
        assert_eq!(ctx.groups[1][&GroupId(5)], vec![Rank(1), Rank(3)]);
        assert_eq!(ctx.comm_members(CommId(1)), &[Rank(1), Rank(3)]);
        assert!(!ctx.is_world_comm(CommId(1)));
        assert_eq!(ctx.abs_rank(CommId(1), Rank(1)), Rank(3));
    }

    #[test]
    fn nested_group_incl() {
        let mut b = TraceBuilder::new(6);
        b.push(
            Rank(0),
            EventKind::GroupIncl { old: GroupId::WORLD, new: GroupId(7), ranks: vec![0, 2, 4] },
        );
        // Relative to group 7: positions 1, 2 are world ranks 2, 4.
        b.push(
            Rank(0),
            EventKind::GroupIncl { old: GroupId(7), new: GroupId(8), ranks: vec![1, 2] },
        );
        let ctx = preprocess(&b.build());
        assert_eq!(ctx.groups[0][&GroupId(8)], vec![Rank(2), Rank(4)]);
    }

    #[test]
    fn datatype_reconstruction() {
        let mut b = TraceBuilder::new(1);
        b.push(
            Rank(0),
            EventKind::TypeContiguous { new: DatatypeId(16), count: 3, elem: DatatypeId::INT },
        );
        b.push(
            Rank(0),
            EventKind::TypeVector {
                new: DatatypeId(17),
                count: 2,
                blocklen: 1,
                stride: 4,
                elem: DatatypeId::INT,
            },
        );
        b.push(
            Rank(0),
            EventKind::TypeStruct {
                new: DatatypeId(18),
                fields: vec![(0, 1, DatatypeId::INT), (8, 1, DatatypeId::DOUBLE)],
            },
        );
        let ctx = preprocess(&b.build());
        assert_eq!(ctx.resolve_dtype(Rank(0), DatatypeId(16)).map.size(), 12);
        let v = ctx.resolve_dtype(Rank(0), DatatypeId(17));
        assert_eq!(v.map.segments().len(), 2);
        assert_eq!(v.map.segments()[1].disp, 16);
        let s = ctx.resolve_dtype(Rank(0), DatatypeId(18));
        assert_eq!(s.basic, None);
        assert_eq!(s.map.size(), 12);
    }

    #[test]
    fn rma_footprint_resolution() {
        let mut b = TraceBuilder::new(2);
        for r in 0..2u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate {
                    win: WinId(0),
                    base: 1000 * (r as u64 + 1),
                    len: 256,
                    comm: CommId::WORLD,
                },
            );
        }
        let t = b.build();
        let ctx = preprocess(&t);
        let op = RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(1),
            origin_addr: 500,
            origin_count: 2,
            origin_dtype: DatatypeId::INT,
            target_disp: 16,
            target_count: 2,
            target_dtype: DatatypeId::INT,
        };
        let fp = ctx.rma_footprint(Rank(0), &op);
        assert_eq!(fp.target_abs, Rank(1));
        assert_eq!(fp.origin_map.bounding_region_at(0), MemRegion::new(500, 8));
        // Target window of rank 1 starts at 2000; disp 16.
        assert_eq!(fp.target_map.bounding_region_at(0), MemRegion::new(2016, 8));
        assert_eq!(fp.basic, Some(DatatypeId::INT));
    }

    #[test]
    #[should_panic(expected = "unknown datatype")]
    fn unknown_dtype_panics() {
        let ctx = preprocess(&Trace::new(1));
        ctx.resolve_dtype(Rank(0), DatatypeId(99));
    }
}

//! Epoch extraction (paper §III-C): grouping each rank's RMA operations
//! and local accesses into access/exposure epochs.
//!
//! "For each concurrent region, MC-Checker first scans all the vertices
//! belonging to a process and identifies all the epochs within the process
//! by matching the synchronization calls."
//!
//! An epoch here is a per-rank, per-window span: fence-to-fence,
//! lock-to-unlock (with its lock kind, needed for the exclusive-lock
//! warning demotion), start-to-complete, or post-to-wait. Each RMA
//! operation is attributed to exactly the epoch that will complete it
//! (mirroring the runtime's rules); local load/store events are attributed
//! to every epoch that is open when they execute.

use mcc_types::{EventKind, EventRef, LockKind, Rank, Trace, WinId};
use std::collections::HashMap;

/// What kind of epoch a span is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// Fence-delimited active-target epoch.
    Fence,
    /// Passive-target epoch on `target` (absolute) with the given lock.
    Lock {
        /// Absolute target rank.
        target: Rank,
        /// Shared or exclusive.
        lock: LockKind,
    },
    /// PSCW access epoch (start..complete).
    Access,
    /// PSCW exposure epoch (post..wait).
    Exposure,
    /// MPI-3 `lock_all` passive epoch towards `target` (shared semantics;
    /// one sub-epoch per target actually addressed, split at flushes).
    LockAll {
        /// Absolute target rank of this sub-epoch.
        target: Rank,
    },
}

/// One epoch at one rank on one window.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// The rank the epoch belongs to.
    pub rank: Rank,
    /// The window.
    pub win: WinId,
    /// Kind (and lock details for passive target).
    pub kind: EpochKind,
    /// Opening synchronization event, if inside the trace.
    pub open: Option<EventRef>,
    /// Closing synchronization event, if the epoch was closed.
    pub close: Option<EventRef>,
    /// RMA operations completed by this epoch, in issue order.
    pub ops: Vec<EventRef>,
    /// Local load/store events inside the epoch span, in program order.
    pub locals: Vec<EventRef>,
    /// Early per-op completion points: a request-based operation waited
    /// with `MPI_Wait` completes there rather than at the epoch close.
    pub op_close: HashMap<EventRef, EventRef>,
}

/// All epochs of a trace plus the op → epoch attribution.
#[derive(Debug, Default)]
pub struct Epochs {
    /// The epochs, in per-rank discovery order.
    pub epochs: Vec<Epoch>,
    /// Maps each RMA op event to its epoch's index in `epochs`.
    pub of_op: HashMap<EventRef, usize>,
    /// Per-rank ordinal of each epoch: its position among the epochs of
    /// the same rank, in discovery order. This is the epoch number
    /// reported in findings — unlike the global index it survives
    /// splitting the trace at global synchronization, so the streaming
    /// checker and the batch pipeline number epochs identically.
    pub ordinals: Vec<u32>,
}

impl Epochs {
    /// The epoch an RMA op belongs to.
    pub fn epoch_of(&self, op: EventRef) -> Option<&Epoch> {
        self.of_op.get(&op).map(|&i| &self.epochs[i])
    }

    /// The per-rank ordinal of the epoch an RMA op belongs to.
    pub fn ordinal_of(&self, op: EventRef) -> Option<u32> {
        self.of_op.get(&op).map(|&i| self.ordinals[i])
    }

    /// How many epochs each rank owns (indexed by rank).
    pub fn per_rank_counts(&self, nprocs: usize) -> Vec<usize> {
        let mut counts = vec![0usize; nprocs];
        for e in &self.epochs {
            counts[e.rank.idx()] += 1;
        }
        counts
    }
}

/// Working state for one open epoch during the scan.
struct OpenEpoch {
    kind: EpochKind,
    open: Option<EventRef>,
    ops: Vec<EventRef>,
    locals: Vec<EventRef>,
    op_indices: Vec<EventRef>,
    op_close: HashMap<EventRef, EventRef>,
}

impl OpenEpoch {
    fn new(kind: EpochKind, open: Option<EventRef>) -> Self {
        Self {
            kind,
            open,
            ops: Vec::new(),
            locals: Vec::new(),
            op_indices: Vec::new(),
            op_close: HashMap::new(),
        }
    }

    fn into_epoch(self, rank: Rank, win: WinId, close: Option<EventRef>) -> (Epoch, Vec<EventRef>) {
        (
            Epoch {
                rank,
                win,
                kind: self.kind,
                open: self.open,
                close,
                ops: self.ops,
                locals: self.locals,
                op_close: self.op_close,
            },
            self.op_indices,
        )
    }
}

/// Extracts all epochs of a trace. Needs the preprocessed context to
/// resolve RMA targets to absolute ranks.
pub fn extract(trace: &Trace, ctx: &crate::preprocess::Ctx) -> Epochs {
    let mut out = Epochs::default();
    for (r, proc) in trace.procs.iter().enumerate() {
        let rank = Rank(r as u32);
        // Open epochs: ambient fence epoch per window (created lazily),
        // passive epochs per (win, target) (lock and lock_all sub-epochs),
        // PSCW epochs per win.
        let mut fence: HashMap<u32, OpenEpoch> = HashMap::new();
        let mut passive: HashMap<(u32, u32), OpenEpoch> = HashMap::new();
        let mut access: HashMap<u32, OpenEpoch> = HashMap::new();
        let mut exposure: HashMap<u32, OpenEpoch> = HashMap::new();
        let mut lock_all_open: HashMap<u32, EventRef> = HashMap::new();
        // Request-based ops and where they live: req → (bucket, op ref).
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        enum Bucket {
            Passive(u32, u32),
            Access(u32),
            Fence(u32),
        }
        let mut reqs: HashMap<u64, (Bucket, EventRef)> = HashMap::new();

        let finish = |out: &mut Epochs, open: OpenEpoch, win: WinId, close: Option<EventRef>| {
            // Keep only epochs that could matter: at least one RMA op.
            if open.ops.is_empty() {
                return;
            }
            let (epoch, op_refs) = open.into_epoch(rank, win, close);
            let idx = out.epochs.len();
            for op in op_refs {
                out.of_op.insert(op, idx);
            }
            out.epochs.push(epoch);
        };

        for (idx, event) in proc.events.iter().enumerate() {
            let er = EventRef::new(rank, idx);

            // Unified attribution for all one-sided communication kinds.
            if let Some((win, target_abs, req)) = match &event.kind {
                EventKind::Rma(op) => {
                    let meta = &ctx.wins[&op.win];
                    Some((op.win, ctx.abs_rank(meta.comm, op.target), None))
                }
                EventKind::RmaAtomic(op) => {
                    let meta = &ctx.wins[&op.win];
                    Some((op.win, ctx.abs_rank(meta.comm, op.target), None))
                }
                EventKind::RmaReq { op, req } => {
                    let meta = &ctx.wins[&op.win];
                    Some((op.win, ctx.abs_rank(meta.comm, op.target), Some(*req)))
                }
                _ => None,
            } {
                let key = (win.0, target_abs.0);
                let (bucket, slot) = if let Some(e) = passive.get_mut(&key) {
                    (Bucket::Passive(key.0, key.1), e)
                } else if let Some(&open) = lock_all_open.get(&win.0) {
                    // Lazily open a lock_all sub-epoch for this target.
                    let e = passive.entry(key).or_insert_with(|| {
                        OpenEpoch::new(EpochKind::LockAll { target: target_abs }, Some(open))
                    });
                    (Bucket::Passive(key.0, key.1), e)
                } else if let Some(e) = access.get_mut(&win.0) {
                    (Bucket::Access(win.0), e)
                } else {
                    let e = fence
                        .entry(win.0)
                        .or_insert_with(|| OpenEpoch::new(EpochKind::Fence, None));
                    (Bucket::Fence(win.0), e)
                };
                slot.ops.push(er);
                slot.op_indices.push(er);
                if let Some(req) = req {
                    reqs.insert(req, (bucket, er));
                }
                continue;
            }

            match &event.kind {
                EventKind::Load { .. } | EventKind::Store { .. } => {
                    for e in fence
                        .values_mut()
                        .chain(passive.values_mut())
                        .chain(access.values_mut())
                        .chain(exposure.values_mut())
                    {
                        e.locals.push(er);
                    }
                }
                EventKind::WaitReq { req } => {
                    if let Some((bucket, op)) = reqs.remove(req) {
                        let slot = match bucket {
                            Bucket::Passive(w, t) => passive.get_mut(&(w, t)),
                            Bucket::Access(w) => access.get_mut(&w),
                            Bucket::Fence(w) => fence.get_mut(&w),
                        };
                        if let Some(slot) = slot {
                            slot.op_close.insert(op, er);
                        }
                    }
                }
                EventKind::Fence { win } => {
                    if let Some(open) = fence.remove(&win.0) {
                        finish(&mut out, open, *win, Some(er));
                    }
                    fence.insert(win.0, OpenEpoch::new(EpochKind::Fence, Some(er)));
                }
                EventKind::Lock { win, target, kind } => {
                    let meta = &ctx.wins[win];
                    let abs = ctx.abs_rank(meta.comm, *target);
                    passive.insert(
                        (win.0, abs.0),
                        OpenEpoch::new(EpochKind::Lock { target: abs, lock: *kind }, Some(er)),
                    );
                }
                EventKind::Unlock { win, target } => {
                    let meta = &ctx.wins[win];
                    let abs = ctx.abs_rank(meta.comm, *target);
                    if let Some(open) = passive.remove(&(win.0, abs.0)) {
                        finish(&mut out, open, *win, Some(er));
                    }
                }
                EventKind::LockAll { win } => {
                    lock_all_open.insert(win.0, er);
                }
                EventKind::UnlockAll { win } => {
                    lock_all_open.remove(&win.0);
                    let keys: Vec<_> =
                        passive.keys().filter(|(w, _)| *w == win.0).copied().collect();
                    for key in keys {
                        if let Some(open) = passive.remove(&key) {
                            finish(&mut out, open, *win, Some(er));
                        }
                    }
                }
                EventKind::Flush { win, target } => {
                    // A flush ends the current sub-epoch towards that
                    // target and opens a fresh one of the same kind.
                    let meta = &ctx.wins[win];
                    let abs = ctx.abs_rank(meta.comm, *target);
                    if let Some(open) = passive.remove(&(win.0, abs.0)) {
                        let kind = open.kind;
                        finish(&mut out, open, *win, Some(er));
                        passive.insert((win.0, abs.0), OpenEpoch::new(kind, Some(er)));
                    }
                }
                EventKind::FlushAll { win } => {
                    let keys: Vec<_> =
                        passive.keys().filter(|(w, _)| *w == win.0).copied().collect();
                    for key in keys {
                        if let Some(open) = passive.remove(&key) {
                            let kind = open.kind;
                            finish(&mut out, open, *win, Some(er));
                            passive.insert(key, OpenEpoch::new(kind, Some(er)));
                        }
                    }
                }
                EventKind::Start { win, .. } => {
                    access.insert(win.0, OpenEpoch::new(EpochKind::Access, Some(er)));
                }
                EventKind::Complete { win } => {
                    if let Some(open) = access.remove(&win.0) {
                        finish(&mut out, open, *win, Some(er));
                    }
                }
                EventKind::Post { win, .. } => {
                    exposure.insert(win.0, OpenEpoch::new(EpochKind::Exposure, Some(er)));
                }
                EventKind::WaitWin { win } => {
                    if let Some(open) = exposure.remove(&win.0) {
                        finish(&mut out, open, *win, Some(er));
                    }
                }
                _ => {}
            }
        }
        // Unclosed epochs at end of trace. The open-epoch tables are hash
        // maps, so drain them into a vector and order by first-op event
        // index (unique per rank) — the flush order, and with it every
        // epoch ordinal, must not depend on hasher state.
        let mut unclosed: Vec<(u32, OpenEpoch)> = fence
            .into_iter()
            .chain(passive.into_iter().map(|((w, _), e)| (w, e)))
            .chain(access)
            .chain(exposure)
            .collect();
        unclosed.sort_by_key(|(_, e)| e.ops.first().map_or(usize::MAX, |op| op.idx));
        for (w, open) in unclosed {
            finish(&mut out, open, WinId(w), None);
        }
    }
    // Per-rank ordinals: epochs are discovered rank by rank, so a single
    // counter pass assigns each epoch its position within its rank.
    let mut next = vec![0u32; trace.nprocs()];
    out.ordinals = out
        .epochs
        .iter()
        .map(|e| {
            let c = &mut next[e.rank.idx()];
            let o = *c;
            *c += 1;
            o
        })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use mcc_types::{CommId, DatatypeId, EventKind, RmaKind, RmaOp, TraceBuilder};

    fn put(target: u32) -> EventKind {
        EventKind::Rma(RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(target),
            origin_addr: 64,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: 0,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        })
    }

    fn with_win(b: &mut TraceBuilder, n: u32) {
        for r in 0..n {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 16, comm: CommId::WORLD },
            );
        }
    }

    #[test]
    fn fence_epoch_collects_ops_and_locals() {
        let mut b = TraceBuilder::new(2);
        with_win(&mut b, 2);
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let op = b.push(Rank(0), put(1));
        let st = b.push(Rank(0), EventKind::Store { addr: 64, len: 4 });
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let t = b.build();
        let ctx = preprocess(&t);
        let eps = extract(&t, &ctx);
        assert_eq!(eps.epochs.len(), 1);
        let e = &eps.epochs[0];
        assert_eq!(e.kind, EpochKind::Fence);
        assert_eq!(e.ops, vec![op]);
        assert_eq!(e.locals, vec![st]);
        assert!(e.open.is_some());
        assert!(e.close.is_some());
        assert_eq!(eps.epoch_of(op).unwrap().win, WinId(0));
    }

    #[test]
    fn lock_epoch_attribution() {
        let mut b = TraceBuilder::new(2);
        with_win(&mut b, 2);
        b.push(
            Rank(0),
            EventKind::Lock { win: WinId(0), target: Rank(1), kind: LockKind::Exclusive },
        );
        let op = b.push(Rank(0), put(1));
        b.push(Rank(0), EventKind::Unlock { win: WinId(0), target: Rank(1) });
        let t = b.build();
        let ctx = preprocess(&t);
        let eps = extract(&t, &ctx);
        assert_eq!(eps.epochs.len(), 1);
        match eps.epochs[0].kind {
            EpochKind::Lock { target, lock } => {
                assert_eq!(target, Rank(1));
                assert_eq!(lock, LockKind::Exclusive);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(eps.epochs[0].ops, vec![op]);
    }

    #[test]
    fn ops_before_first_fence_form_ambient_epoch() {
        let mut b = TraceBuilder::new(2);
        with_win(&mut b, 2);
        let op = b.push(Rank(0), put(1));
        let t = b.build();
        let ctx = preprocess(&t);
        let eps = extract(&t, &ctx);
        assert_eq!(eps.epochs.len(), 1);
        assert!(eps.epochs[0].open.is_none());
        assert!(eps.epochs[0].close.is_none(), "never closed");
        assert_eq!(eps.epochs[0].ops, vec![op]);
    }

    #[test]
    fn empty_epochs_dropped() {
        let mut b = TraceBuilder::new(2);
        with_win(&mut b, 2);
        for _ in 0..3 {
            for r in 0..2u32 {
                b.push(Rank(r), EventKind::Fence { win: WinId(0) });
            }
        }
        let t = b.build();
        let ctx = preprocess(&t);
        let eps = extract(&t, &ctx);
        assert!(eps.epochs.is_empty(), "fences without ops make no epochs");
    }

    #[test]
    fn pscw_access_epoch() {
        let mut b = TraceBuilder::new(2);
        with_win(&mut b, 2);
        b.push(
            Rank(0),
            EventKind::GroupIncl {
                old: mcc_types::GroupId::WORLD,
                new: mcc_types::GroupId(3),
                ranks: vec![1],
            },
        );
        b.push(Rank(0), EventKind::Start { win: WinId(0), group: mcc_types::GroupId(3) });
        let op = b.push(Rank(0), put(1));
        b.push(Rank(0), EventKind::Complete { win: WinId(0) });
        let t = b.build();
        let ctx = preprocess(&t);
        let eps = extract(&t, &ctx);
        assert_eq!(eps.epochs.len(), 1);
        assert_eq!(eps.epochs[0].kind, EpochKind::Access);
        assert_eq!(eps.epochs[0].ops, vec![op]);
    }

    #[test]
    fn lock_epoch_shields_fence_epoch() {
        // An op issued while a lock is held goes to the lock epoch even if
        // a fence epoch is also open.
        let mut b = TraceBuilder::new(2);
        with_win(&mut b, 2);
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b.push(Rank(0), EventKind::Lock { win: WinId(0), target: Rank(1), kind: LockKind::Shared });
        let op = b.push(Rank(0), put(1));
        b.push(Rank(0), EventKind::Unlock { win: WinId(0), target: Rank(1) });
        for r in 0..2u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let t = b.build();
        let ctx = preprocess(&t);
        let eps = extract(&t, &ctx);
        assert_eq!(eps.epochs.len(), 1, "only the lock epoch has ops");
        assert!(matches!(eps.epochs[0].kind, EpochKind::Lock { .. }));
        assert_eq!(eps.epochs[0].ops, vec![op]);
    }
}

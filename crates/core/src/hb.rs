//! Reusable happens-before race export for schedule exploration.
//!
//! `mcc-explore` prunes its DFS over delivery schedules with a
//! sleep-set-style argument: flipping *when* an RMA operation's memory
//! effect lands can only change observable behaviour if some other access
//! is **concurrent** with it under the vector-clock happens-before
//! relation ([`crate::vc`]) *and* conflicts on the same memory — exactly
//! the unordered conflicting pairs the two detectors already enumerate.
//! An operation cited by no finding commutes with everything around it:
//! every access to its bytes is ordered before its issue or after its
//! completing synchronization, so any legal delivery point between the
//! two yields the same values everywhere.
//!
//! [`racing_events`] re-runs the pipeline up to the detectors and returns
//! the set of events cited by any **raw** (pre-deduplication) finding,
//! errors and warnings alike. The session's report deduplicates repeated
//! source-level conflicts, which is right for human output but would hide
//! racing loop iterations from the explorer — hence this dedicated
//! export.

use crate::vc::Clocks;
use crate::{dag, epoch, inter, intra, matching, preprocess, regions};
use mcc_obs::RecorderHandle;
use mcc_types::{EventRef, Trace};
use std::collections::HashSet;

/// Every event cited by a raw finding of either detector: the conflicting
/// (vector-clock concurrent) operations of the trace.
///
/// The trace must be internally consistent (as produced by the profiler
/// or a completed simulator run); repair damaged traces with
/// [`crate::degrade::sanitize`] first — and note that repair can drop
/// events, shifting the indices the returned references point at.
pub fn racing_events(trace: &Trace) -> HashSet<EventRef> {
    let obs = RecorderHandle::disabled();
    let ctx = preprocess::preprocess(trace);
    let matching = matching::match_sync(trace, &ctx);
    let dag = dag::build(trace, &ctx, &matching);
    let clocks = Clocks::compute(&dag);
    let regions = regions::partition(trace, &matching);
    let epochs = epoch::extract(trace, &ctx);

    let mut racing = HashSet::new();
    for (i, ep) in epochs.epochs.iter().enumerate() {
        for d in intra::check_epoch_raw(trace, &ctx, ep, epochs.ordinals[i]) {
            racing.insert(d.a.ev);
            racing.insert(d.b.ev);
        }
    }
    for shard in &inter::build_shards(trace, &ctx, &epochs, &regions, 1) {
        for d in inter::detect_shard(trace, &dag, &clocks, shard, &obs) {
            racing.insert(d.a.ev);
            racing.insert(d.b.ev);
        }
    }
    racing
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_types::{CommId, DatatypeId, EventKind, Rank, RmaKind, RmaOp, TraceBuilder, WinId};

    fn put(target: u32) -> EventKind {
        EventKind::Rma(RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(target),
            origin_addr: 200,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: 0,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        })
    }

    fn base(n: u32) -> TraceBuilder {
        let mut b = TraceBuilder::new(n as usize);
        for r in 0..n {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 64, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b
    }

    fn close(b: &mut TraceBuilder, n: u32) {
        for r in 0..n {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
    }

    #[test]
    fn racing_trace_cites_both_sides() {
        let mut b = base(2);
        let p = b.push(Rank(0), put(1));
        let s = b.push(Rank(0), EventKind::Store { addr: 200, len: 4 });
        close(&mut b, 2);
        let racing = racing_events(&b.build());
        assert!(racing.contains(&p), "the put is racing");
        assert!(racing.contains(&s), "the origin store is racing");
    }

    #[test]
    fn ordered_trace_has_no_racing_events() {
        let mut b = base(2);
        b.push(Rank(0), put(1));
        close(&mut b, 2);
        // Store only after the closing fence: ordered, not racing.
        b.push(Rank(0), EventKind::Store { addr: 200, len: 4 });
        close(&mut b, 2);
        assert!(racing_events(&b.build()).is_empty());
    }

    #[test]
    fn raw_findings_keep_deduplicated_repeats() {
        // Two puts from the same source line racing with two stores: the
        // session report deduplicates to one finding, but all four events
        // must be exported as racing.
        let mut b = base(2);
        let p1 = b.push(Rank(0), put(1));
        let s1 = b.push(Rank(0), EventKind::Store { addr: 200, len: 4 });
        let p2 = b.push(Rank(0), put(1));
        let s2 = b.push(Rank(0), EventKind::Store { addr: 200, len: 4 });
        close(&mut b, 2);
        let trace = b.build();
        let report = crate::AnalysisSession::new().run(&trace);
        assert!(report.diagnostics.len() < 4, "session output is deduplicated");
        let racing = racing_events(&trace);
        for ev in [p1, s1, p2, s2] {
            assert!(racing.contains(&ev), "raw export keeps every racing event");
        }
    }
}

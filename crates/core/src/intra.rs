//! Intra-epoch conflict detection (paper §III-C, first error class).
//!
//! Within an epoch, nonblocking RMA operations complete at an undefined
//! point before the closing synchronization, so they race with:
//!
//! * other operations of the same epoch whose **target** footprints
//!   overlap at the same target process (checked against Table I), and
//! * any access to the local buffers they read or write between issue and
//!   completion — a pending `MPI_Get` acts as a deferred store into its
//!   origin buffer (Figures 1 and 6), a pending `MPI_Put`/
//!   `MPI_Accumulate` as a deferred load of it (Figure 2a / the ADLB
//!   stack bug), and an MPI-3 atomic as a deferred load of its operand
//!   plus a deferred store into its result buffer.
//!
//! MPI-3 refinements: a request-based operation waited with `MPI_Wait`
//! completes at the wait, so later accesses in the same epoch are ordered
//! after it; flushes split passive epochs into sub-epochs upstream (in
//! [`crate::epoch`]), so cross-flush pairs never reach this detector.

use crate::epoch::Epoch;
#[cfg(test)]
use crate::epoch::Epochs;
use crate::preprocess::{Ctx, ResolvedAccess};
use crate::report::{Confidence, ConsistencyError, ErrorScope, OpInfo, Severity};
use mcc_types::{compat, conflicts, ConflictKind, EventKind, EventRef, MemRegion, Trace};
use std::collections::HashSet;

struct ResolvedOp {
    ev: EventRef,
    ra: ResolvedAccess,
    /// Early completion point (request-based op that was waited).
    close: Option<EventRef>,
}

impl ResolvedOp {
    /// Whether `other_idx` (an event index at the same rank) is ordered
    /// after this op's completion.
    fn completed_before(&self, other_idx: usize) -> bool {
        self.close.is_some_and(|c| other_idx > c.idx)
    }
}

/// Scans every epoch for conflicting pairs — the reference the unit
/// tests drive directly ([`crate::session::AnalysisSession`] runs
/// [`check_epoch`] per epoch on the thread pool and merges).
#[cfg(test)]
pub(crate) fn detect(trace: &Trace, ctx: &Ctx, epochs: &Epochs) -> Vec<ConsistencyError> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for (idx, epoch) in epochs.epochs.iter().enumerate() {
        for e in check_epoch(trace, ctx, epoch, epochs.ordinals[idx]) {
            if seen.insert(e.dedup_key()) {
                out.push(e);
            }
        }
    }
    out
}

/// Checks one epoch — the unit of parallel work of the intra-epoch
/// detector. Epochs are independent (every pair this detector reports
/// lives inside a single epoch), so the session can run them on any
/// thread in any order. Findings are deduplicated within the epoch; the
/// caller deduplicates globally.
pub(crate) fn check_epoch(
    trace: &Trace,
    ctx: &Ctx,
    epoch: &Epoch,
    epoch_idx: u32,
) -> Vec<ConsistencyError> {
    let mut out = check_epoch_raw(trace, ctx, epoch, epoch_idx);
    let mut seen = HashSet::new();
    out.retain(|e| seen.insert(e.dedup_key()));
    out
}

/// Like [`check_epoch`] but without the per-epoch source-location
/// deduplication: every conflicting pair is reported, loop repeats
/// included. [`crate::hb::racing_events`] needs the repeats — a
/// deduplicated report would hide racing loop iterations from the
/// schedule explorer.
pub(crate) fn check_epoch_raw(
    trace: &Trace,
    ctx: &Ctx,
    epoch: &Epoch,
    epoch_idx: u32,
) -> Vec<ConsistencyError> {
    let mut out = Vec::new();
    let ops: Vec<ResolvedOp> = epoch
        .ops
        .iter()
        .map(|&ev| {
            let ra = ctx
                .resolve_rma_event(ev.rank, &trace.event(ev).kind)
                .expect("epoch ops are RMA events");
            ResolvedOp { ev, ra, close: epoch.op_close.get(&ev).copied() }
        })
        .collect();

    let mut push = |e: ConsistencyError| out.push(e);

    // Operation pairs within the epoch. Pairs where one op completed
    // (early wait) before the other was issued are program-ordered.
    for i in 0..ops.len() {
        for j in (i + 1)..ops.len() {
            let (a, b) = (&ops[i], &ops[j]);
            debug_assert!(a.ev.idx < b.ev.idx, "epoch ops are in issue order");
            if a.completed_before(b.ev.idx) {
                continue;
            }
            // Origin-buffer side (both buffers live at this rank).
            if a.ra.origin_conflicts_with(&b.ra) {
                push(ConsistencyError {
                    severity: Severity::Error,
                    scope: ErrorScope::IntraEpoch { rank: epoch.rank, win: epoch.win },
                    confidence: Confidence::Complete,
                    a: op_info(trace, a, true).with_epoch(Some(epoch_idx)),
                    b: op_info(trace, b, true).with_epoch(Some(epoch_idx)),
                    kind: ConflictKind::OverlapViolation,
                    explanation: format!(
                        "both operations access the same local buffer while nonblocking \
                             and unordered within the epoch (at least one updates it); \
                             the result is undefined until the epoch closes at {}",
                        close_desc(trace, epoch)
                    ),
                });
            }
            // Target-window side.
            if a.ra.target_abs == b.ra.target_abs && a.ra.win == b.ra.win {
                let overlap = a.ra.target_map.overlaps_at(0, &b.ra.target_map, 0);
                if let Some(kind) = conflicts(a.ra.class, b.ra.class, overlap) {
                    push(ConsistencyError {
                        severity: Severity::Error,
                        scope: ErrorScope::IntraEpoch { rank: epoch.rank, win: epoch.win },
                        confidence: Confidence::Complete,
                        a: op_info(trace, a, false).with_epoch(Some(epoch_idx)),
                        b: op_info(trace, b, false).with_epoch(Some(epoch_idx)),
                        kind,
                        explanation: format!(
                            "unordered {} and {} update overlapping window memory at target \
                                 {} within one epoch (Table I: {})",
                            a.ra.class,
                            b.ra.class,
                            a.ra.target_abs,
                            compat(a.ra.class, b.ra.class)
                        ),
                    });
                }
            }
        }
    }

    // Operation vs. local access: only accesses between issue and the
    // op's completion (early wait, else epoch close).
    for op in &ops {
        for &acc in &epoch.locals {
            if acc.idx <= op.ev.idx || op.completed_before(acc.idx) {
                continue;
            }
            let (is_store, addr, len) = match trace.event(acc).kind {
                EventKind::Load { addr, len } => (false, addr, len),
                EventKind::Store { addr, len } => (true, addr, len),
                _ => continue,
            };
            let region = MemRegion::new(addr, len);
            if op.ra.origin_conflicts_with_access(is_store, region) {
                let effect = if op.ra.writes.overlaps_region_at(0, region) {
                    "writes local memory at an undefined time before it completes"
                } else {
                    "reads its local buffer at an undefined time before it completes"
                };
                push(ConsistencyError {
                    severity: Severity::Error,
                    scope: ErrorScope::IntraEpoch { rank: epoch.rank, win: epoch.win },
                    confidence: Confidence::Complete,
                    a: op_info(trace, op, true).with_epoch(Some(epoch_idx)),
                    b: OpInfo::from_trace(trace, acc, Some(region)),
                    kind: ConflictKind::OverlapViolation,
                    explanation: format!(
                        "the nonblocking {} {}; the {} of the same memory races with it \
                             (close: {})",
                        trace.event(op.ev).kind.call_name(),
                        effect,
                        if is_store { "store" } else { "load" },
                        close_desc(trace, epoch),
                    ),
                });
            }
        }
    }
    out
}

fn op_info(trace: &Trace, op: &ResolvedOp, origin_side: bool) -> OpInfo {
    let map = if origin_side {
        if op.ra.writes.is_empty() {
            &op.ra.reads
        } else {
            &op.ra.writes
        }
    } else {
        &op.ra.target_map
    };
    let region = (!map.is_empty()).then(|| map.bounding_region_at(0));
    OpInfo::from_trace(trace, op.ev, region)
}

fn close_desc(trace: &Trace, epoch: &Epoch) -> String {
    match epoch.close {
        Some(c) => format!("{} at {}", trace.event(c).kind.call_name(), trace.loc_of(c)),
        None => "never closed in this trace".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::extract;
    use crate::preprocess::preprocess;
    use mcc_types::{
        AtomicKind, AtomicOp, CommId, DatatypeId, Rank, ReduceOp, RmaKind, RmaOp, SourceLoc,
        TraceBuilder, WinId,
    };

    fn rma(kind: RmaKind, origin: u64, target: u32, disp: u64, count: u32) -> EventKind {
        EventKind::Rma(RmaOp {
            kind,
            win: WinId(0),
            target: Rank(target),
            origin_addr: origin,
            origin_count: count,
            origin_dtype: DatatypeId::INT,
            target_disp: disp,
            target_count: count,
            target_dtype: DatatypeId::INT,
        })
    }

    fn scaffold(b: &mut TraceBuilder, n: u32) {
        for r in 0..n {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 64, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
    }

    fn close(b: &mut TraceBuilder, n: u32) {
        for r in 0..n {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
    }

    fn run(t: &Trace) -> Vec<ConsistencyError> {
        let ctx = preprocess(t);
        let eps = extract(t, &ctx);
        detect(t, &ctx, &eps)
    }

    /// Figure 2a: put then store to the same buffer within one epoch.
    #[test]
    fn fig2a_put_then_store() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push_at(Rank(0), rma(RmaKind::Put, 200, 1, 0, 1), SourceLoc::new("fig2a.c", 3, "main"));
        b.push_at(
            Rank(0),
            EventKind::Store { addr: 200, len: 4 },
            SourceLoc::new("fig2a.c", 4, "main"),
        );
        close(&mut b, 2);
        let errors = run(&b.build());
        assert_eq!(errors.len(), 1);
        let e = &errors[0];
        assert_eq!(e.severity, Severity::Error);
        assert!(matches!(e.scope, ErrorScope::IntraEpoch { rank: Rank(0), .. }));
        assert_eq!(e.a.op, "MPI_Put");
        assert_eq!(e.b.op, "store");
        assert_eq!(e.a.loc.line, 3);
        assert_eq!(e.b.loc.line, 4);
    }

    /// Figure 1 / Figure 6: get then load of the origin buffer.
    #[test]
    fn fig6_get_then_load() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push_at(Rank(0), rma(RmaKind::Get, 200, 1, 0, 1), SourceLoc::new("bt.c", 5, "main"));
        b.push_at(
            Rank(0),
            EventKind::Load { addr: 200, len: 4 },
            SourceLoc::new("bt.c", 4, "main"),
        );
        close(&mut b, 2);
        let errors = run(&b.build());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].a.op, "MPI_Get");
        assert_eq!(errors[0].b.op, "load");
    }

    #[test]
    fn load_before_issue_is_ordered() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), EventKind::Load { addr: 200, len: 4 });
        b.push(Rank(0), rma(RmaKind::Get, 200, 1, 0, 1));
        close(&mut b, 2);
        assert!(run(&b.build()).is_empty(), "access before issue cannot race");
    }

    #[test]
    fn load_of_put_origin_is_fine() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), rma(RmaKind::Put, 200, 1, 0, 1));
        b.push(Rank(0), EventKind::Load { addr: 200, len: 4 });
        close(&mut b, 2);
        assert!(run(&b.build()).is_empty(), "both only read the origin buffer");
    }

    #[test]
    fn disjoint_buffers_no_conflict() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), rma(RmaKind::Get, 200, 1, 0, 1));
        b.push(Rank(0), EventKind::Store { addr: 300, len: 4 });
        close(&mut b, 2);
        assert!(run(&b.build()).is_empty());
    }

    #[test]
    fn two_puts_overlapping_target() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), rma(RmaKind::Put, 200, 1, 0, 1));
        b.push(Rank(0), rma(RmaKind::Put, 300, 1, 0, 1));
        close(&mut b, 2);
        let errors = run(&b.build());
        assert_eq!(errors.len(), 1, "two puts to the same target location in one epoch");
        assert_eq!(errors[0].kind, ConflictKind::OverlapViolation);
    }

    #[test]
    fn two_puts_disjoint_target_fine() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), rma(RmaKind::Put, 200, 1, 0, 1));
        b.push(Rank(0), rma(RmaKind::Put, 300, 1, 8, 1));
        close(&mut b, 2);
        assert!(run(&b.build()).is_empty());
    }

    #[test]
    fn same_op_accumulates_may_overlap() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), rma(RmaKind::Acc(ReduceOp::Sum), 200, 1, 0, 1));
        b.push(Rank(0), rma(RmaKind::Acc(ReduceOp::Sum), 300, 1, 0, 1));
        close(&mut b, 2);
        assert!(run(&b.build()).is_empty(), "same-op same-dtype accumulates commute");
    }

    #[test]
    fn different_op_accumulates_conflict() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), rma(RmaKind::Acc(ReduceOp::Sum), 200, 1, 0, 1));
        b.push(Rank(0), rma(RmaKind::Acc(ReduceOp::Prod), 300, 1, 0, 1));
        close(&mut b, 2);
        assert_eq!(run(&b.build()).len(), 1);
    }

    #[test]
    fn two_gets_same_origin_conflict() {
        // Both gets write the same local buffer concurrently.
        let mut b = TraceBuilder::new(3);
        for r in 0..3u32 {
            b.push(
                Rank(r),
                EventKind::WinCreate { win: WinId(0), base: 64, len: 64, comm: CommId::WORLD },
            );
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        b.push(Rank(0), rma(RmaKind::Get, 200, 1, 0, 1));
        b.push(Rank(0), rma(RmaKind::Get, 200, 2, 0, 1));
        for r in 0..3u32 {
            b.push(Rank(r), EventKind::Fence { win: WinId(0) });
        }
        let errors = run(&b.build());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].a.op, "MPI_Get");
        assert_eq!(errors[0].b.op, "MPI_Get");
    }

    #[test]
    fn loop_conflicts_deduplicated() {
        // The same source-level pair repeated 10 times reports once per
        // distinct finding class.
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        for _ in 0..10 {
            b.push_at(Rank(0), rma(RmaKind::Get, 200, 1, 0, 1), SourceLoc::new("x.c", 5, "f"));
            b.push_at(
                Rank(0),
                EventKind::Load { addr: 200, len: 4 },
                SourceLoc::new("x.c", 4, "f"),
            );
        }
        close(&mut b, 2);
        let errors = run(&b.build());
        assert_eq!(
            errors.len(),
            2,
            "one get-vs-load and one get-vs-get finding, each deduplicated across iterations"
        );
    }

    #[test]
    fn conflicts_isolated_per_epoch() {
        // Get in epoch 1, load of the same buffer in epoch 2: the fence
        // orders them.
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), rma(RmaKind::Get, 200, 1, 0, 1));
        close(&mut b, 2);
        b.push(Rank(0), EventKind::Load { addr: 200, len: 4 });
        close(&mut b, 2);
        assert!(run(&b.build()).is_empty());
    }

    // ------------------------------------------------------------------
    // MPI-3 cases.
    // ------------------------------------------------------------------

    fn fetch_op(origin: u64, result: u64, target: u32) -> EventKind {
        EventKind::RmaAtomic(AtomicOp {
            kind: AtomicKind::FetchAndOp(ReduceOp::Sum),
            win: WinId(0),
            target: Rank(target),
            origin_addr: origin,
            result_addr: result,
            compare_addr: None,
            count: 1,
            dtype: DatatypeId::INT,
            target_disp: 0,
        })
    }

    #[test]
    fn fetch_and_op_result_buffer_race() {
        // Reading the result buffer before the epoch closes is the MPI-3
        // analogue of Figure 6.
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), fetch_op(200, 240, 1));
        b.push(Rank(0), EventKind::Load { addr: 240, len: 4 });
        close(&mut b, 2);
        let errors = run(&b.build());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].a.op, "MPI_Fetch_and_op");
        assert_eq!(errors[0].b.op, "load");
    }

    #[test]
    fn fetch_and_op_operand_store_race() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), fetch_op(200, 240, 1));
        b.push(Rank(0), EventKind::Store { addr: 200, len: 4 });
        close(&mut b, 2);
        assert_eq!(run(&b.build()).len(), 1, "operand overwritten while pending");
    }

    #[test]
    fn fetch_and_op_unrelated_access_fine() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), fetch_op(200, 240, 1));
        b.push(Rank(0), EventKind::Load { addr: 300, len: 4 });
        // Reading the *operand* is also fine (both reads).
        b.push(Rank(0), EventKind::Load { addr: 200, len: 4 });
        close(&mut b, 2);
        assert!(run(&b.build()).is_empty());
    }

    #[test]
    fn same_op_atomics_overlap_at_target() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), fetch_op(200, 240, 1));
        b.push(Rank(0), fetch_op(204, 244, 1));
        close(&mut b, 2);
        assert!(run(&b.build()).is_empty(), "same-op atomics may target the same cell");
    }

    #[test]
    fn atomic_vs_put_target_conflict() {
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(Rank(0), fetch_op(200, 240, 1));
        b.push(Rank(0), rma(RmaKind::Put, 300, 1, 0, 1));
        close(&mut b, 2);
        let errors = run(&b.build());
        assert_eq!(errors.len(), 1, "Acc vs Put overlapping at the target");
    }

    #[test]
    fn waited_request_op_is_ordered() {
        // rput; wait; store origin — safe, the wait completes the op.
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(
            Rank(0),
            EventKind::RmaReq {
                op: RmaOp {
                    kind: RmaKind::Put,
                    win: WinId(0),
                    target: Rank(1),
                    origin_addr: 200,
                    origin_count: 1,
                    origin_dtype: DatatypeId::INT,
                    target_disp: 0,
                    target_count: 1,
                    target_dtype: DatatypeId::INT,
                },
                req: 9,
            },
        );
        b.push(Rank(0), EventKind::WaitReq { req: 9 });
        b.push(Rank(0), EventKind::Store { addr: 200, len: 4 });
        close(&mut b, 2);
        assert!(run(&b.build()).is_empty(), "MPI_Wait completes the rput");
    }

    #[test]
    fn unwaited_request_op_races() {
        // rput; store origin; wait — the store is before completion.
        let mut b = TraceBuilder::new(2);
        scaffold(&mut b, 2);
        b.push(
            Rank(0),
            EventKind::RmaReq {
                op: RmaOp {
                    kind: RmaKind::Put,
                    win: WinId(0),
                    target: Rank(1),
                    origin_addr: 200,
                    origin_count: 1,
                    origin_dtype: DatatypeId::INT,
                    target_disp: 0,
                    target_count: 1,
                    target_dtype: DatatypeId::INT,
                },
                req: 9,
            },
        );
        b.push(Rank(0), EventKind::Store { addr: 200, len: 4 });
        b.push(Rank(0), EventKind::WaitReq { req: 9 });
        close(&mut b, 2);
        let errors = run(&b.build());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].a.op, "MPI_Rput");
    }
}

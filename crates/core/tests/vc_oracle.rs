//! Property test: the anchored vector-clock happens-before query must
//! agree with exact graph reachability on the DAG, for randomly generated
//! valid traces.
//!
//! This is the load-bearing correctness property of the analyzer — a
//! false `ordered` hides races (false negatives), a false `concurrent`
//! fabricates them (false positives). The oracle is a plain DFS over the
//! DAG's edges, with the RMA completion refinement applied on top: a
//! floating node with no closing synchronization orders nothing after it.

use mcc_core::dag::{self, NodeKind};
use mcc_core::matching::match_sync;
use mcc_core::preprocess::preprocess;
use mcc_core::vc::Clocks;
use mcc_types::{
    CommId, DatatypeId, EventKind, Rank, RmaKind, RmaOp, Tag, Trace, TraceBuilder, WinId,
};
use proptest::prelude::*;

/// One random action per rank per round; rounds are NOT synchronized
/// unless the action itself is a collective drawn for the whole round.
#[derive(Debug, Clone)]
enum RoundKind {
    /// Every rank does a local/RMA action independently.
    Free(Vec<FreeAction>),
    /// A world barrier.
    Barrier,
    /// A world fence on win 0.
    Fence,
    /// A send ring with matched receives.
    Ring(u32),
}

#[derive(Debug, Clone, Copy)]
enum FreeAction {
    Load(u64),
    Store(u64),
    Put {
        target: u32,
        disp: u64,
    },
    Get {
        target: u32,
        disp: u64,
    },
    LockPutUnlock {
        target: u32,
        disp: u64,
    },
    /// MPI-3: lock_all; put; flush(target); put; unlock_all.
    LockAllFlush {
        target: u32,
        disp: u64,
    },
    /// MPI-3: request-based put completed by an MPI_Wait (inside a
    /// fence epoch).
    RputWait {
        target: u32,
        disp: u64,
    },
    /// MPI-3 atomic inside a lock_all epoch.
    Atomic {
        target: u32,
        disp: u64,
    },
    Idle,
}

fn arb_free(nprocs: u32) -> impl Strategy<Value = FreeAction> {
    (0..9u8, 0..nprocs, 0..4u64, 0..8u64).prop_map(move |(k, t, d, a)| match k {
        0 => FreeAction::Load(0x40 + 4 * a),
        1 => FreeAction::Store(0x40 + 4 * a),
        2 => FreeAction::Put { target: t, disp: 4 * d },
        3 => FreeAction::Get { target: t, disp: 4 * d },
        4 => FreeAction::LockPutUnlock { target: t, disp: 4 * d },
        5 => FreeAction::LockAllFlush { target: t, disp: 4 * d },
        6 => FreeAction::RputWait { target: t, disp: 4 * d },
        7 => FreeAction::Atomic { target: t, disp: 4 * d },
        _ => FreeAction::Idle,
    })
}

fn arb_scenario() -> impl Strategy<Value = (u32, Vec<RoundKind>)> {
    (2u32..5).prop_flat_map(|n| (Just(n), arb_rounds(n)))
}

fn arb_rounds(nprocs: u32) -> impl Strategy<Value = Vec<RoundKind>> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(arb_free(nprocs), nprocs as usize).prop_map(RoundKind::Free),
            Just(RoundKind::Barrier),
            Just(RoundKind::Fence),
            (0..4u32).prop_map(RoundKind::Ring),
        ],
        1..7,
    )
}

fn rma(kind: RmaKind, target: u32, disp: u64) -> EventKind {
    EventKind::Rma(RmaOp {
        kind,
        win: WinId(0),
        target: Rank(target),
        origin_addr: 0x200,
        origin_count: 1,
        origin_dtype: DatatypeId::INT,
        target_disp: disp,
        target_count: 1,
        target_dtype: DatatypeId::INT,
    })
}

fn build_trace(nprocs: u32, rounds: &[RoundKind]) -> Trace {
    let mut b = TraceBuilder::new(nprocs as usize);
    let mut next_req = vec![0u64; nprocs as usize];
    for r in 0..nprocs {
        b.push(
            Rank(r),
            EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
        );
    }
    for round in rounds {
        match round {
            RoundKind::Barrier => {
                for r in 0..nprocs {
                    b.push(Rank(r), EventKind::Barrier { comm: CommId::WORLD });
                }
            }
            RoundKind::Fence => {
                for r in 0..nprocs {
                    b.push(Rank(r), EventKind::Fence { win: WinId(0) });
                }
            }
            RoundKind::Ring(tag) => {
                for r in 0..nprocs {
                    let to = (r + 1) % nprocs;
                    b.push(
                        Rank(r),
                        EventKind::Send {
                            comm: CommId::WORLD,
                            to: Rank(to),
                            tag: Tag(*tag),
                            bytes: 4,
                        },
                    );
                }
                for r in 0..nprocs {
                    let from = (r + nprocs - 1) % nprocs;
                    b.push(
                        Rank(r),
                        EventKind::Recv {
                            comm: CommId::WORLD,
                            from: Rank(from),
                            tag: Tag(*tag),
                            bytes: 4,
                        },
                    );
                }
            }
            RoundKind::Free(actions) => {
                for (r, act) in actions.iter().enumerate() {
                    let rank = Rank(r as u32);
                    match *act {
                        FreeAction::Load(addr) => {
                            b.push(rank, EventKind::Load { addr, len: 4 });
                        }
                        FreeAction::Store(addr) => {
                            b.push(rank, EventKind::Store { addr, len: 4 });
                        }
                        FreeAction::Put { target, disp } => {
                            b.push(rank, rma(RmaKind::Put, target, disp));
                        }
                        FreeAction::Get { target, disp } => {
                            b.push(rank, rma(RmaKind::Get, target, disp));
                        }
                        FreeAction::LockPutUnlock { target, disp } => {
                            b.push(
                                rank,
                                EventKind::Lock {
                                    win: WinId(0),
                                    target: Rank(target),
                                    kind: mcc_types::LockKind::Shared,
                                },
                            );
                            b.push(rank, rma(RmaKind::Put, target, disp));
                            b.push(rank, EventKind::Unlock { win: WinId(0), target: Rank(target) });
                        }
                        FreeAction::LockAllFlush { target, disp } => {
                            b.push(rank, EventKind::LockAll { win: WinId(0) });
                            b.push(rank, rma(RmaKind::Put, target, disp));
                            b.push(rank, EventKind::Flush { win: WinId(0), target: Rank(target) });
                            b.push(rank, rma(RmaKind::Put, target, disp));
                            b.push(rank, EventKind::UnlockAll { win: WinId(0) });
                        }
                        FreeAction::RputWait { target, disp } => {
                            let req = next_req[r];
                            next_req[r] += 1;
                            let EventKind::Rma(op) = rma(RmaKind::Put, target, disp) else {
                                unreachable!()
                            };
                            b.push(rank, EventKind::RmaReq { op, req });
                            b.push(rank, EventKind::Load { addr: 0x44, len: 4 });
                            b.push(rank, EventKind::WaitReq { req });
                        }
                        FreeAction::Atomic { target, disp } => {
                            b.push(rank, EventKind::LockAll { win: WinId(0) });
                            b.push(
                                rank,
                                EventKind::RmaAtomic(mcc_types::AtomicOp {
                                    kind: mcc_types::AtomicKind::FetchAndOp(
                                        mcc_types::ReduceOp::Sum,
                                    ),
                                    win: WinId(0),
                                    target: Rank(target),
                                    origin_addr: 0x200,
                                    result_addr: 0x210,
                                    compare_addr: None,
                                    count: 1,
                                    dtype: DatatypeId::INT,
                                    target_disp: disp,
                                }),
                            );
                            b.push(rank, EventKind::UnlockAll { win: WinId(0) });
                        }
                        FreeAction::Idle => {}
                    }
                }
            }
        }
    }
    // Final fence so most epochs close (some traces still end with open
    // fence epochs — the oracle must agree there too).
    for r in 0..nprocs {
        b.push(Rank(r), EventKind::Fence { win: WinId(0) });
    }
    b.build()
}

/// Exact reachability oracle: `a` happens-before `b` iff there is a path
/// `start(a) → … → end(b)` where a floating node is entered through its
/// close and left through its issue — i.e. plain edge reachability from
/// `a` to `b` going *through* the graph, with the refinement that the
/// effect of an unclosed floating node never precedes anything.
fn reachable(dagg: &dag::Dag, from: u32, to: u32) -> bool {
    // Effect-based reachability: effect of `from` complete ⟹ must pass
    // through its close node; effect of `to` begun ⟹ reached via its
    // issue node. Both are encoded in the edge structure already (the
    // only out-edge of a floating node is to its close; the only in-edge
    // is from its issue), so DFS over edges is the oracle.
    if from == to {
        return false;
    }
    let mut stack = vec![from];
    let mut seen = vec![false; dagg.node_count()];
    seen[from as usize] = true;
    while let Some(u) = stack.pop() {
        for &v in &dagg.succ[u as usize] {
            if v == to {
                return true;
            }
            if !seen[v as usize] {
                seen[v as usize] = true;
                stack.push(v);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vc_agrees_with_reachability((nprocs, rounds) in arb_scenario()) {
        let trace = build_trace(nprocs, &rounds);
        let ctx = preprocess(&trace);
        let m = match_sync(&trace, &ctx);
        prop_assert!(m.unmatched.is_empty(), "generator produces matched traces");
        let g = dag::build(&trace, &ctx, &m);
        let clocks = Clocks::compute(&g);
        let n = g.node_count() as u32;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let expect = reachable(&g, a, b);
                let got = clocks.ordered(a, b);
                prop_assert_eq!(
                    got,
                    expect,
                    "nodes {} ({:?} of {}) -> {} ({:?} of {})",
                    a,
                    g.node_kind[a as usize],
                    g.node_event[a as usize],
                    b,
                    g.node_kind[b as usize],
                    g.node_event[b as usize]
                );
            }
        }
    }

    #[test]
    fn concurrency_is_symmetric_and_irreflexive((nprocs, rounds) in arb_scenario()) {
        let trace = build_trace(nprocs, &rounds);
        let ctx = preprocess(&trace);
        let m = match_sync(&trace, &ctx);
        let g = dag::build(&trace, &ctx, &m);
        let clocks = Clocks::compute(&g);
        let n = g.node_count() as u32;
        for a in 0..n {
            prop_assert!(!clocks.concurrent(a, a));
            for b in (a + 1)..n {
                prop_assert_eq!(clocks.concurrent(a, b), clocks.concurrent(b, a));
                // Exactly one of: a→b, b→a, concurrent.
                let rel = [clocks.ordered(a, b), clocks.ordered(b, a), clocks.concurrent(a, b)];
                prop_assert_eq!(rel.iter().filter(|x| **x).count(), 1, "{} vs {}", a, b);
            }
        }
    }

    /// Chain nodes of one rank are totally ordered (the assumption the
    /// O(1) query rests on).
    #[test]
    fn chain_total_order_per_rank((nprocs, rounds) in arb_scenario()) {
        let trace = build_trace(nprocs, &rounds);
        let ctx = preprocess(&trace);
        let m = match_sync(&trace, &ctx);
        let g = dag::build(&trace, &ctx, &m);
        let clocks = Clocks::compute(&g);
        let n = g.node_count() as u32;
        for a in 0..n {
            for b in (a + 1)..n {
                if g.node_rank[a as usize] == g.node_rank[b as usize]
                    && g.node_kind[a as usize] == NodeKind::Chain
                    && g.node_kind[b as usize] == NodeKind::Chain
                {
                    prop_assert!(
                        clocks.ordered(a, b) || clocks.ordered(b, a),
                        "same-rank chain nodes {}, {} unordered", a, b
                    );
                }
            }
        }
    }
}

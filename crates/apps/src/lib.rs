#![warn(missing_docs)]
//! The paper's evaluation applications.

pub mod bugs;
pub mod overhead;

//! `jacobi`: a 1-D Jacobi solver with one-sided halo exchange and an
//! **injected** cross-process bug (Table II row 5; 4 processes).
//!
//! Each rank owns a block of the vector plus two halo cells exposed in a
//! window. Per iteration every rank puts its boundary values into its
//! neighbours' halo cells, a fence completes the exchange, and the rank
//! relaxes its interior. The injected error removes the fence *between*
//! the neighbour's put and the owner's halo reads, so the owner's loads of
//! its window race with the incoming `MPI_Put` — the Figure 2d pattern
//! across processes. The fix restores the double-fence protocol.

use super::BugSpec;
use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId};

/// Table II row.
pub const SPEC: BugSpec = BugSpec {
    name: "jacobi",
    nprocs: 4,
    error_location: "across processes",
    root_cause: "conflicting MPI_Put and local load (injected)",
    symptom: "wrong relaxation values; convergence stalls",
    injected: true,
};

/// Interior cells per rank.
const BLOCK: usize = 8;
/// Jacobi sweeps.
const ITERS: u32 = 3;

/// Window layout per rank: `[halo_left, cell_0 .. cell_{BLOCK-1},
/// halo_right]`, all `i32` (fixed-point values scaled by 1000).
fn body(p: &mut Proc, buggy: bool) {
    p.set_func("jacobi");
    let n = p.size();
    let me = p.rank();
    let wlen = BLOCK + 2;
    let wbuf = p.alloc_i32s(wlen);
    // Initial condition: rank r's cells start at r*1000 (scaled).
    for i in 1..=BLOCK as u64 {
        p.poke_i32(wbuf + 4 * i, (me * 1000) as i32);
    }
    let win = p.win_create(wbuf, (4 * wlen) as u64, CommId::WORLD);
    let left = if me == 0 { None } else { Some(me - 1) };
    let right = if me + 1 == n { None } else { Some(me + 1) };
    let scratch = p.alloc_i32s(BLOCK);

    p.win_fence(win);
    for _iter in 0..ITERS {
        // Exchange: put my boundary cells into the neighbours' halos.
        if let Some(l) = left {
            // My first interior cell becomes the left neighbour's right halo.
            p.put(
                wbuf + 4,
                1,
                DatatypeId::INT,
                l,
                (4 * (wlen - 1)) as u64,
                1,
                DatatypeId::INT,
                win,
            );
        }
        if let Some(r) = right {
            // My last interior cell becomes the right neighbour's left halo.
            p.put(wbuf + 4 * BLOCK as u64, 1, DatatypeId::INT, r, 0, 1, DatatypeId::INT, win);
        }
        if !buggy {
            // The fence that completes the puts BEFORE anyone reads halos.
            p.win_fence(win);
        }
        // Relax: new[i] = (old[i-1] + old[i+1]) / 2 over the window.
        for i in 0..BLOCK as u64 {
            let l = p.tload_i32(wbuf + 4 * i);
            let r = p.tload_i32(wbuf + 4 * (i + 2));
            p.store_i32(scratch + 4 * i, (l + r) / 2);
        }
        for i in 0..BLOCK as u64 {
            let v = p.load_i32(scratch + 4 * i);
            p.tstore_i32(wbuf + 4 * (i + 1), v);
        }
        // End-of-iteration fence (in the buggy variant this is the ONLY
        // fence, so the halo reads above race with the neighbour's put).
        p.win_fence(win);
    }
    p.win_free(win);
}

/// The injected-bug variant (missing mid-iteration fence).
pub fn buggy(p: &mut Proc) {
    body(p, true);
}

/// The correct double-fence protocol.
pub fn fixed(p: &mut Proc) {
    body(p, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::trace_of;
    use mcc_core::{AnalysisSession, ErrorScope};

    #[test]
    fn missing_fence_detected_across_processes() {
        let trace = trace_of(SPEC.nprocs, 31, buggy);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors());
        // A put conflicting with the target's own halo access.
        let e = report
            .errors()
            .find(|e| matches!(e.scope, ErrorScope::CrossProcess { .. }))
            .expect("cross-process conflict: {report}");
        let ops = [e.a.op.as_str(), e.b.op.as_str()];
        assert!(ops.contains(&"MPI_Put"));
        assert!(ops.contains(&"load") || ops.contains(&"store"));
    }

    #[test]
    fn fixed_variant_clean() {
        let trace = trace_of(SPEC.nprocs, 31, fixed);
        let report = AnalysisSession::new().run(&trace);
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }

    #[test]
    fn fixed_variant_converges() {
        // Semantic check: with correct synchronization the averaged values
        // move toward each other deterministically under any delivery.
        use mcc_mpi_sim::{run, DeliveryPolicy, SimConfig};
        run(SimConfig::new(4).with_seed(5).with_delivery(DeliveryPolicy::Adversarial), fixed)
            .unwrap();
    }
}

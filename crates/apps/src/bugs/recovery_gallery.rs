//! The recovery gallery: workloads that *survive* a rank failure and keep
//! computing, exercising the Besta & Hoefler fault-tolerant RMA idioms —
//! failure notification, seeded in-memory checkpoint/restore, and window
//! re-exposure — end to end through the simulator, the failure-aware
//! checker, and the serving stack.
//!
//! Each workload pairs a body with a [`Fault::RankFailure`] plan and a
//! ground-truth verdict:
//!
//! | Workload | Procs | Failure | Ground truth |
//! |---|---|---|---|
//! | `jacobi_ckpt` | 4 | at an epoch boundary | recovered, clean |
//! | `pingpong_reexpose` | 2 | put in flight, window re-exposed | lost update |
//! | `adlb_failure` | 2 | put in flight, server reads | stale read |
//! | `notify_race` | 3 | racing the survivors' fence | stale read (`MPI_Get`) |
//!
//! Unlike the crash cases in the degraded suite, these traces end with
//! explicit `rank_failed` notifications, so the checker routes them
//! through the failure-aware pipeline and the verdict is
//! `Confidence::Recovered` — complete analysis with the failure modeled —
//! not `Degraded`.

use mcc_mpi_sim::{Fault, FaultPlan, Proc, RecoveryPolicy};
use mcc_types::{CommId, DatatypeId};

/// Metadata and ground truth of one recovery workload.
#[derive(Debug, Clone, Copy)]
pub struct RecoverySpec {
    /// Workload name.
    pub name: &'static str,
    /// World size.
    pub nprocs: u32,
    /// The rank the fault plan kills.
    pub failed_rank: u32,
    /// Epochs the failed rank completes before dying (runner ground
    /// truth: `RunStats::failures` must equal `[(failed_rank, epochs)]`).
    pub epochs_completed: u64,
    /// Expected finding kinds in the recovered report, as the JSON schema
    /// names them, in canonical order. Empty = recovered but clean.
    pub expected_kinds: &'static [&'static str],
}

/// A gallery entry: `(spec, fault plan, body)`.
pub type RecoveryCase = (RecoverySpec, fn() -> FaultPlan, fn(&mut Proc));

/// All four recovery workloads.
pub fn gallery() -> Vec<RecoveryCase> {
    vec![
        (JACOBI_CKPT, jacobi_ckpt_faults as fn() -> FaultPlan, jacobi_ckpt as fn(&mut Proc)),
        (PINGPONG_REEXPOSE, pingpong_reexpose_faults, pingpong_reexpose),
        (ADLB_FAILURE, adlb_failure_faults, adlb_failure),
        (NOTIFY_RACE, notify_race_faults, notify_race),
    ]
}

// ---------------------------------------------------------------------
// jacobi_ckpt: checkpointed Jacobi sweep; rank 3 dies exactly at an
// epoch boundary, so nothing is in flight and the recovered analysis is
// clean. Survivors roll back to their latest checkpoint on notification.
// ---------------------------------------------------------------------

/// Ground truth for [`jacobi_ckpt`].
pub const JACOBI_CKPT: RecoverySpec = RecoverySpec {
    name: "jacobi_ckpt",
    nprocs: 4,
    failed_rank: 3,
    epochs_completed: 3,
    expected_kinds: &[],
};

/// Rank 3 dies at the start of iteration 2, right after completing its
/// iteration-1 fence: `win_create + fence` (2 calls) plus two full
/// iterations of `checkpoint, tstore, put, fence` (4 calls each).
pub fn jacobi_ckpt_faults() -> FaultPlan {
    FaultPlan::none().with(Fault::RankFailure {
        rank: 3,
        after_events: 10,
        recover: RecoveryPolicy::Checkpoint,
    })
}

/// A ring Jacobi sweep with per-iteration checkpoints: each rank relaxes
/// its private interior cell and puts it to the right neighbour's halo.
///
/// Only the halo cell is window-exposed; the interior stays private, so
/// relaxing it inside the exposure epoch never trips the separation rule
/// against the incoming halo put.
pub fn jacobi_ckpt(p: &mut Proc) {
    p.set_func("jacobi_ckpt");
    let n = p.size();
    let right = (p.rank() + 1) % n;
    let interior = p.alloc_f64s(1);
    let boundary = p.alloc_f64s(1);
    let win = p.win_create(boundary, 8, CommId::WORLD);
    p.win_fence(win);
    for iter in 0..3 {
        p.checkpoint(win);
        p.tstore_f64(interior, 0.5 * (iter + 1) as f64);
        p.put(interior, 1, DatatypeId::DOUBLE, right, 0, 1, DatatypeId::DOUBLE, win);
        p.win_fence(win);
    }
    if !p.failed_ranks().is_empty() {
        // Roll back to the latest checkpoint before reading: nothing the
        // dead rank had in flight can taint this value.
        p.restore(win);
        p.tload_f64(boundary);
    }
    p.win_free(win);
}

// ---------------------------------------------------------------------
// pingpong_reexpose: rank 1 dies with a put in flight; rank 0 re-exposes
// the window under a fresh generation, which turns the in-flight put
// into a lost update.
// ---------------------------------------------------------------------

/// Ground truth for [`pingpong_reexpose`].
pub const PINGPONG_REEXPOSE: RecoverySpec = RecoverySpec {
    name: "pingpong_reexpose",
    nprocs: 2,
    failed_rank: 1,
    epochs_completed: 1,
    expected_kinds: &["lost-update-across-reexposure"],
};

/// Rank 1 dies at its closing fence: `win_create, fence, tstore, put`
/// are its four completed calls.
pub fn pingpong_reexpose_faults() -> FaultPlan {
    FaultPlan::none().with(Fault::RankFailure {
        rank: 1,
        after_events: 4,
        recover: RecoveryPolicy::Notify,
    })
}

/// One pingpong volley whose return leg never completes; the survivor
/// recovers by re-exposing the window and carries on reading the fresh
/// generation.
pub fn pingpong_reexpose(p: &mut Proc) {
    p.set_func("pingpong_reexpose");
    let buf = p.alloc_i32s(2);
    let win = p.win_create(buf, 8, CommId::WORLD);
    let scratch = p.alloc_i32s(1);
    p.win_fence(win);
    if p.rank() == 1 {
        p.tstore_i32(scratch, 42);
        p.put(scratch, 1, DatatypeId::INT, 0, 0, 1, DatatypeId::INT, win);
        p.win_fence(win); // dies here — the put is still in flight
    } else {
        p.win_fence(win); // completes around rank 1, logs the notification
        p.win_reexpose(win);
        p.tload_i32(buf); // fresh generation: deliberately not flagged
        p.win_fence(win);
    }
    p.win_free(win);
}

// ---------------------------------------------------------------------
// adlb_failure: the ADLB client dies with a work-unit put in flight; the
// server reads the queue slot after the notification without restoring —
// a stale read from the failed rank.
// ---------------------------------------------------------------------

/// Ground truth for [`adlb_failure`].
pub const ADLB_FAILURE: RecoverySpec = RecoverySpec {
    name: "adlb_failure",
    nprocs: 2,
    failed_rank: 0,
    epochs_completed: 1,
    expected_kinds: &["stale-read-from-failed-rank"],
};

/// Rank 0 dies at its closing fence after `win_create, fence, tstore,
/// put` — the work-unit transfer never completes.
pub fn adlb_failure_faults() -> FaultPlan {
    FaultPlan::none().with(Fault::RankFailure {
        rank: 0,
        after_events: 4,
        recover: RecoveryPolicy::Notify,
    })
}

/// The §II-B ADLB push, interrupted: the client's put is logged but never
/// delivered, and the server consumes the slot anyway.
pub fn adlb_failure(p: &mut Proc) {
    p.set_func("adlb_failure");
    let queue = p.alloc_i32s(2);
    let win = p.win_create(queue, 8, CommId::WORLD);
    let slot = p.alloc_i32s(1);
    p.win_fence(win);
    if p.rank() == 0 {
        p.set_func("push_work");
        p.tstore_i32(slot, 111);
        p.put(slot, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
        p.win_fence(win); // dies here — the work unit is still in flight
    } else {
        p.win_fence(win); // completes around rank 0, logs the notification
        p.set_func("serve");
        p.tload_i32(queue); // stale: the logged writer died mid-epoch
        p.win_fence(win);
    }
    p.win_free(win);
}

// ---------------------------------------------------------------------
// notify_race: three ranks; the failure lands while both survivors are
// already blocked in the same fence, so the notification position races
// with the collective. The simulator resolves it deterministically, and
// survivor 1's Get of the dead rank's target bytes is a stale read.
// ---------------------------------------------------------------------

/// Ground truth for [`notify_race`].
pub const NOTIFY_RACE: RecoverySpec = RecoverySpec {
    name: "notify_race",
    nprocs: 3,
    failed_rank: 2,
    epochs_completed: 1,
    expected_kinds: &["stale-read-from-failed-rank"],
};

/// Rank 2 dies at its closing fence after `win_create, fence, tstore,
/// put`, while ranks 0 and 1 already wait inside the same fence.
pub fn notify_race_faults() -> FaultPlan {
    FaultPlan::none().with(Fault::RankFailure {
        rank: 2,
        after_events: 4,
        recover: RecoveryPolicy::Notify,
    })
}

/// The racing-notification workload: both survivors must log the
/// `rank_failed` marker at the same fence, in the same program-order
/// position, on every run.
pub fn notify_race(p: &mut Proc) {
    p.set_func("notify_race");
    let buf = p.alloc_i32s(2);
    let win = p.win_create(buf, 8, CommId::WORLD);
    let scratch = p.alloc_i32s(1);
    p.win_fence(win);
    if p.rank() == 2 {
        p.tstore_i32(scratch, 7);
        p.put(scratch, 1, DatatypeId::INT, 0, 0, 1, DatatypeId::INT, win);
        p.win_fence(win); // dies here, racing the survivors' fence
    } else {
        p.win_fence(win); // both survivors complete around rank 2
        if p.rank() == 1 {
            // Reads the bytes the dead rank's put targeted — stale.
            p.get(scratch, 1, DatatypeId::INT, 0, 0, 1, DatatypeId::INT, win);
        }
        p.win_fence(win);
    }
    p.win_free(win);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::trace_under_faults;
    use mcc_core::{AnalysisSession, Confidence};
    use mcc_types::EventKind;

    /// Every gallery entry runs to completion (survivors finish), records
    /// exactly the scheduled failure, and the survivors' logs carry the
    /// notification marker.
    #[test]
    fn gallery_runs_record_the_scheduled_failure() {
        for (spec, faults, body) in gallery() {
            let (trace, error) = trace_under_faults(spec.nprocs, 11, faults(), body);
            assert!(error.is_none(), "{}: survivable failure is not an error", spec.name);
            for (r, proc) in trace.procs.iter().enumerate() {
                let markers = proc
                    .events
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::RankFailed { .. }))
                    .count();
                if r as u32 == spec.failed_rank {
                    assert_eq!(markers, 0, "{}: the dead rank observes nothing", spec.name);
                } else {
                    assert_eq!(markers, 1, "{}: survivor {} logs one marker", spec.name, r);
                }
            }
        }
    }

    /// The ground-truth verdicts: finding kinds and recovered confidence.
    #[test]
    fn gallery_ground_truth() {
        for (spec, faults, body) in gallery() {
            let (trace, _) = trace_under_faults(spec.nprocs, 11, faults(), body);
            let report = AnalysisSession::new().run(&trace);
            assert_eq!(
                report.confidence,
                Confidence::Recovered,
                "{}: {}",
                spec.name,
                report.render()
            );
            let kinds: Vec<String> = report
                .diagnostics
                .iter()
                .map(|d| match d.kind {
                    mcc_types::ConflictKind::StaleReadFromFailedRank => {
                        "stale-read-from-failed-rank".to_string()
                    }
                    mcc_types::ConflictKind::LostUpdateAcrossReexposure => {
                        "lost-update-across-reexposure".to_string()
                    }
                    other => format!("{other:?}"),
                })
                .collect();
            assert_eq!(kinds, spec.expected_kinds, "{}: {}", spec.name, report.render());
            for d in &report.diagnostics {
                assert_eq!(d.confidence, Confidence::Recovered, "{}", spec.name);
            }
        }
    }

    /// The failed rank's in-flight write is one side of every failure
    /// finding, and the reader/re-exposure the other.
    #[test]
    fn findings_cite_the_failed_rank() {
        for (spec, faults, body) in gallery() {
            if spec.expected_kinds.is_empty() {
                continue;
            }
            let (trace, _) = trace_under_faults(spec.nprocs, 11, faults(), body);
            let report = AnalysisSession::new().run(&trace);
            for d in &report.diagnostics {
                assert_eq!(d.a.rank.0, spec.failed_rank, "{}: side A is the dead rank", spec.name);
                assert_ne!(d.b.rank.0, spec.failed_rank, "{}: side B is a survivor", spec.name);
            }
        }
    }
}

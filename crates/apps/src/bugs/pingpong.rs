//! `ping-pong`: an ARMCI-MPI-style one-sided ping-pong benchmark with an
//! **injected** bug (Table II row 4; 2 processes).
//!
//! Two ranks bounce a message through each other's windows with
//! fence-delimited puts. The injected error is the Figure 2a pattern: the
//! origin updates its send buffer immediately after the nonblocking
//! `MPI_Put`, inside the same epoch — exactly the ADLB stack-buffer bug
//! (§II-B). The fix defers the update until after the closing fence.

use super::BugSpec;
use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId};

/// Table II row.
pub const SPEC: BugSpec = BugSpec {
    name: "ping-pong",
    nprocs: 2,
    error_location: "within an epoch",
    root_cause: "conflicting MPI_Put and local store (injected)",
    symptom: "corrupted message payload",
    injected: true,
};

/// Message length in `i32`s.
const MLEN: usize = 8;
/// Ping-pong rounds.
const ROUNDS: u32 = 4;

fn body(p: &mut Proc, buggy: bool) {
    p.set_func("pingpong");
    let inbox = p.alloc_i32s(MLEN);
    let win = p.win_create(inbox, (4 * MLEN) as u64, CommId::WORLD);
    let msg = p.alloc_i32s(MLEN);
    let me = p.rank();
    let peer = 1 - me;
    p.win_fence(win);
    for round in 0..ROUNDS {
        let my_turn = round % 2 == me;
        if my_turn {
            for i in 0..MLEN as u64 {
                p.tstore_i32(msg + 4 * i, (round * 100 + i as u32) as i32);
            }
            p.put(msg, MLEN as u32, DatatypeId::INT, peer, 0, MLEN as u32, DatatypeId::INT, win);
            if buggy {
                // Injected Figure 2a bug: eagerly prepare the next round's
                // payload in the same buffer before the epoch closes.
                p.tstore_i32(msg, -1);
            }
        }
        p.win_fence(win);
        if !my_turn {
            // Consume the received message.
            let mut sum = 0i64;
            for i in 0..MLEN as u64 {
                sum += p.tload_i32(inbox + 4 * i) as i64;
            }
            std::hint::black_box(sum);
        }
    }
    p.win_free(win);
}

/// The injected-bug variant.
pub fn buggy(p: &mut Proc) {
    body(p, true);
}

/// The correct benchmark.
pub fn fixed(p: &mut Proc) {
    body(p, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::trace_of;
    use mcc_core::{AnalysisSession, ErrorScope};
    use mcc_types::Rank;

    #[test]
    fn injected_put_store_race_detected() {
        let trace = trace_of(SPEC.nprocs, 21, buggy);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors());
        let e = report
            .errors()
            .find(|e| {
                (e.a.op == "MPI_Put" && e.b.op == "store")
                    || (e.a.op == "store" && e.b.op == "MPI_Put")
            })
            .expect("put/store conflict");
        assert!(matches!(e.scope, ErrorScope::IntraEpoch { .. }));
    }

    #[test]
    fn both_ranks_affected() {
        // The bug fires on whichever rank sends; both do across rounds.
        let trace = trace_of(SPEC.nprocs, 21, buggy);
        let report = AnalysisSession::new().run(&trace);
        let ranks: std::collections::HashSet<Rank> = report
            .errors()
            .filter_map(|e| match e.scope {
                ErrorScope::IntraEpoch { rank, .. } => Some(rank),
                _ => None,
            })
            .collect();
        assert_eq!(ranks.len(), 2, "{}", report.render());
    }

    #[test]
    fn fixed_variant_clean() {
        let trace = trace_of(SPEC.nprocs, 21, fixed);
        let report = AnalysisSession::new().run(&trace);
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }
}

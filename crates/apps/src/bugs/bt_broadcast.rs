//! `BT-broadcast`: the binary-tree broadcast of Luecke et al. — the
//! paper's second real-world bug case (Figure 6, §VII-A1; 2 processes).
//!
//! A child polls a local flag `check`, which an `MPI_Get` inside the same
//! epoch is supposed to refresh from the parent's window. Because the get
//! is nonblocking, it "may not be completed until the end of the epoch at
//! line 8 ... As a result, the program will execute the while loop forever
//! as the value of variable check is always 0."
//!
//! The simulated variant bounds the spin loop so the trace terminates; the
//! livelock symptom is reported by [`buggy_with_symptom`].

use super::BugSpec;
use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, LockKind};

/// Table II row.
pub const SPEC: BugSpec = BugSpec {
    name: "BT-broadcast",
    nprocs: 2,
    error_location: "within an epoch",
    root_cause: "conflicting MPI_Get and local load",
    symptom: "infinite polling loop (livelock)",
    injected: false,
};

/// Spin iterations before the bounded loop gives up.
const SPIN_LIMIT: u32 = 64;

fn scaffold(p: &mut Proc) -> (u64, mcc_types::WinId) {
    p.set_func("bt_broadcast");
    // Each rank's window holds its broadcast-ready flag.
    let flag = p.alloc_i32s(1);
    let win = p.win_create(flag, 4, CommId::WORLD);
    p.barrier(CommId::WORLD);
    (flag, win)
}

/// The buggy polling broadcast. Returns `true` if the child livelocked
/// (hit the spin bound).
pub fn buggy_with_symptom(p: &mut Proc) -> bool {
    let (flag, win) = scaffold(p);
    let mut livelocked = false;
    if p.rank() == 0 {
        // Parent: mark its own flag ready so the child can fetch it.
        p.tstore_i32(flag, 1);
        p.barrier(CommId::WORLD);
    } else {
        p.barrier(CommId::WORLD);
        // Child (Figure 6): poll `check` for the parent's flag.
        let check = p.alloc_i32s(1);
        p.win_lock(LockKind::Shared, 0, win); // line 1: epoch open
        p.tstore_i32(check, 0); // line 3: initialize check
        let mut spins = 0;
        while p.tload_i32(check) == 0 {
            // line 4: load of check
            p.get(check, 1, DatatypeId::INT, 0, 0, 1, DatatypeId::INT, win); // line 5
            spins += 1;
            if spins >= SPIN_LIMIT {
                livelocked = true;
                break;
            }
        }
        p.win_unlock(0, win); // line 8: epoch close — the get completes HERE
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
    livelocked
}

/// The buggy body (symptom discarded) for the Table II harness.
pub fn buggy(p: &mut Proc) {
    let _ = buggy_with_symptom(p);
}

/// The fix: one lock/unlock epoch per poll, so every get completes before
/// `check` is read.
pub fn fixed(p: &mut Proc) {
    let (flag, win) = scaffold(p);
    if p.rank() == 0 {
        p.tstore_i32(flag, 1);
        p.barrier(CommId::WORLD);
    } else {
        p.barrier(CommId::WORLD);
        let check = p.alloc_i32s(1);
        p.tstore_i32(check, 0);
        let mut spins = 0;
        while p.tload_i32(check) == 0 && spins < SPIN_LIMIT {
            p.win_lock(LockKind::Shared, 0, win);
            p.get(check, 1, DatatypeId::INT, 0, 0, 1, DatatypeId::INT, win);
            p.win_unlock(0, win); // get completes before the next load
            spins += 1;
        }
        assert!(spins < SPIN_LIMIT, "fixed variant must terminate");
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::trace_of;
    use mcc_core::{AnalysisSession, ErrorScope};
    use mcc_types::Rank;

    #[test]
    fn buggy_variant_detected_with_line_numbers() {
        let trace = trace_of(SPEC.nprocs, 7, buggy);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors());
        // The paper: "MC-Checker reports that a local load operation is
        // conflicting with MPI_Get".
        let e = report
            .errors()
            .find(|e| e.a.op == "MPI_Get" && e.b.op == "load")
            .or_else(|| report.errors().find(|e| e.a.op == "load" && e.b.op == "MPI_Get"))
            .expect("get/load conflict reported");
        assert!(matches!(e.scope, ErrorScope::IntraEpoch { rank: Rank(1), .. }));
        assert!(e.a.loc.file.ends_with("bt_broadcast.rs"));
        assert!(e.b.loc.file.ends_with("bt_broadcast.rs"));
    }

    #[test]
    fn livelock_symptom_under_atclose() {
        use mcc_mpi_sim::{run, DeliveryPolicy, SimConfig};
        use std::sync::atomic::{AtomicBool, Ordering};
        let locked = AtomicBool::new(false);
        run(SimConfig::new(2).with_seed(7).with_delivery(DeliveryPolicy::AtClose), |p| {
            if buggy_with_symptom(p) {
                locked.store(true, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert!(locked.load(Ordering::Relaxed), "the while loop spins forever");
    }

    #[test]
    fn fixed_variant_clean_and_terminates() {
        let trace = trace_of(SPEC.nprocs, 7, fixed);
        let report = AnalysisSession::new().run(&trace);
        assert!(!report.has_errors(), "{}", report.render());
    }
}

//! `adlb`: the Asynchronous Dynamic Load Balancing stack-buffer bug the
//! paper's §II-B recounts — the bug that motivated MC-Checker.
//!
//! "An older version of the ADLB library ... used MPI_Put to transfer
//! data from a stack variable in a function and returned from the
//! function without waiting for the completion of that operation, since
//! the epoch was closed later elsewhere in the program. This procedure
//! worked correctly for several years ... since on most platforms small
//! variables are copied into internal temporary communication buffers ...
//! When the code was ported to the IBM Blue Gene/Q in early 2012 ... the
//! function stack was overwritten by other functions, resulting in data
//! corruption."
//!
//! The simulation gives each rank a fixed "stack slot" reused by every
//! helper-function call: the first call puts from it and returns; the
//! second call overwrites it while the put may still be in flight.
//! `Eager` delivery (the internal-buffer copy) masks the bug exactly as
//! pre-2012 MPICH did; `AtClose` (Blue Gene/Q) corrupts the transferred
//! data. The checker flags the trace either way.

use super::BugSpec;
use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, WinId};

/// Table II-style row for this extra case study.
pub const SPEC: BugSpec = BugSpec {
    name: "adlb",
    nprocs: 2,
    error_location: "within an epoch",
    root_cause: "conflicting MPI_Put (from a stack variable) and local store (stack reuse)",
    symptom: "corrupted work unit after platform change",
    injected: false,
};

/// "Pushes" a work unit to the server by putting from the shared stack
/// slot — the buggy helper returns with the put still pending.
fn push_work(p: &mut Proc, stack_slot: u64, win: WinId, value: i32, slot_index: u64) {
    p.set_func("push_work");
    p.tstore_i32(stack_slot, value); // the "stack variable"
    p.put(stack_slot, 1, DatatypeId::INT, 1, 4 * slot_index, 1, DatatypeId::INT, win);
    // returns without waiting — "the epoch was closed later elsewhere"
}

fn body(p: &mut Proc, fixed: bool) -> (u64, WinId) {
    p.set_func("adlb");
    // The server (rank 1) exposes a work queue of two slots.
    let queue = p.alloc_i32s(2);
    let win = p.win_create(queue, 8, CommId::WORLD);
    // One fixed address plays the role of the reused stack frame.
    let stack_slot = p.alloc_i32s(1);
    p.win_fence(win);
    if p.rank() == 0 {
        push_work(p, stack_slot, win, 111, 0);
        if fixed {
            // The fix adopted by ADLB: complete the transfer before the
            // frame can be reused.
            p.win_fence(win);
        }
        push_work(p, stack_slot, win, 222, 1);
        p.win_fence(win);
    } else {
        p.win_fence(win);
        if fixed {
            p.win_fence(win);
        }
    }
    p.win_fence(win);
    (queue, win)
}

/// The historical bug.
pub fn buggy(p: &mut Proc) {
    let (_, win) = body(p, false);
    p.win_free(win);
}

/// The fix: close the epoch before the stack frame is reused.
pub fn fixed(p: &mut Proc) {
    let (_, win) = body(p, true);
    p.win_free(win);
}

/// Runs the buggy body and reports whether the corruption symptom
/// occurred at the server (slot 0 overwritten by the second call's
/// value).
pub fn symptom_occurred(p: &mut Proc) -> bool {
    let (queue, win) = body(p, false);
    let corrupted = p.rank() == 1 && p.peek_i32(queue) != 111;
    p.win_free(win);
    corrupted
}

/// Fault plan for the crash-mid-epoch variant: rank 0 dies after both
/// `push_work` calls have issued their puts but before the closing
/// fence, leaving the fence epoch open in the trace — the scenario
/// degraded-mode analysis exists for.
///
/// The event budget counts rank 0's logged events in [`buggy`]:
/// win_create, fence, then store+put per `push_work` call — six events
/// before the first closing fence.
pub fn crash_mid_epoch_faults() -> mcc_mpi_sim::FaultPlan {
    mcc_mpi_sim::FaultPlan::none().with(mcc_mpi_sim::Fault::RankAbort { rank: 0, after_events: 6 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::{trace_of, trace_under_faults};
    use mcc_core::{AnalysisSession, Confidence, ErrorScope};
    use mcc_mpi_sim::{run, DeliveryPolicy, SimConfig};
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn detected_as_intra_epoch_put_store() {
        let trace = trace_of(2, 77, buggy);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors());
        let e = report
            .errors()
            .find(|e| {
                [e.a.op.as_str(), e.b.op.as_str()].contains(&"MPI_Put")
                    && [e.a.op.as_str(), e.b.op.as_str()].contains(&"store")
            })
            .expect("put/store stack-reuse conflict");
        assert!(matches!(e.scope, ErrorScope::IntraEpoch { rank: mcc_types::Rank(0), .. }));
        assert_eq!(e.a.loc.func, "push_work");
    }

    #[test]
    fn masked_on_old_platforms_corrupts_on_bgq() {
        // Eager = the internal-buffer platforms; AtClose = Blue Gene/Q.
        let corrupted = |delivery| {
            let flag = AtomicBool::new(false);
            run(SimConfig::new(2).with_seed(7).with_delivery(delivery), |p| {
                if symptom_occurred(p) {
                    flag.store(true, Ordering::Relaxed);
                }
            })
            .unwrap();
            flag.load(Ordering::Relaxed)
        };
        assert!(!corrupted(DeliveryPolicy::Eager), "worked correctly for years");
        assert!(corrupted(DeliveryPolicy::AtClose), "corrupts on Blue Gene/Q");
    }

    #[test]
    fn crash_mid_epoch_detected_in_degraded_mode() {
        let (trace, error) = trace_under_faults(2, 77, crash_mid_epoch_faults(), buggy);
        assert!(error.is_some(), "rank 0's injected abort is reported");
        // Rank 0's log stops mid-epoch: both puts logged, no closing
        // fence. The strict checker cannot be used here; the degraded
        // path still finds the stack-reuse conflict.
        let (report, info) = AnalysisSession::new().run_with_repair(&trace);
        assert!(!info.is_clean(), "{info}");
        assert_eq!(report.confidence, Confidence::Degraded);
        let e = report
            .errors()
            .find(|e| {
                [e.a.op.as_str(), e.b.op.as_str()].contains(&"MPI_Put")
                    && [e.a.op.as_str(), e.b.op.as_str()].contains(&"store")
            })
            .expect("put/store stack-reuse conflict survives the crash");
        assert!(matches!(e.scope, ErrorScope::IntraEpoch { rank: mcc_types::Rank(0), .. }));
        assert_eq!(e.confidence, Confidence::Degraded);
    }

    #[test]
    fn fixed_variant_clean() {
        let trace = trace_of(2, 77, fixed);
        let report = AnalysisSession::new().run(&trace);
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }
}

//! `lockopts`: the RMA test case from the MPICH package (svn r10308) —
//! the paper's third real-world bug case (Figure 7, §VII-A2; 64
//! processes).
//!
//! An origin process locks a neighbour's window and put/gets into it while
//! the target process concurrently loads and stores its own window memory
//! (Figure 7's section A vs section D). With the revised **shared** lock
//! the accesses are genuinely concurrent — a definite error; with the
//! original **exclusive** lock the runtime may serialize the epochs, so
//! MC-Checker reports only a warning.

use super::BugSpec;
use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, LockKind};

/// Table II row.
pub const SPEC: BugSpec = BugSpec {
    name: "lockopts",
    nprocs: 64,
    error_location: "across processes",
    root_cause: "conflicting local load/store and remote MPI_Put/MPI_Get",
    symptom: "nondeterministic results",
    injected: false,
};

/// Window length in `i32` elements.
const WLEN: usize = 4;

fn body(p: &mut Proc, lock: LockKind, safe: bool) {
    p.set_func("lockopts");
    let wbuf = p.alloc_i32s(WLEN);
    for i in 0..WLEN as u64 {
        p.poke_i32(wbuf + 4 * i, p.rank() as i32);
    }
    let win = p.win_create(wbuf, (4 * WLEN) as u64, CommId::WORLD);
    p.barrier(CommId::WORLD);

    let n = p.size();
    if p.rank().is_multiple_of(2) && p.rank() + 1 < n {
        // Origin: put into the odd neighbour's window, then read it back.
        let target = p.rank() + 1;
        let src = p.alloc_i32s(WLEN);
        for i in 0..WLEN as u64 {
            p.tstore_i32(src + 4 * i, 1000 + p.rank() as i32);
        }
        p.win_lock(lock, target, win);
        p.put(src, WLEN as u32, DatatypeId::INT, target, 0, WLEN as u32, DatatypeId::INT, win);
        p.win_unlock(target, win);
        let back = p.alloc_i32s(WLEN);
        p.win_lock(lock, target, win);
        p.get(back, WLEN as u32, DatatypeId::INT, target, 0, WLEN as u32, DatatypeId::INT, win);
        p.win_unlock(target, win);
    } else if p.rank() % 2 == 1 {
        if safe {
            // Fixed: wait until the origin finished both epochs before
            // touching the window (sections separated by synchronization).
            p.barrier(CommId::WORLD);
        }
        // Target (Figure 7 section A): local load/store of its own
        // window memory, concurrent with the neighbour's epochs in the
        // buggy variant.
        for i in 0..WLEN as u64 {
            let v = p.tload_i32(wbuf + 4 * i);
            p.tstore_i32(wbuf + 4 * i, v + 1);
        }
    }
    if safe && p.rank().is_multiple_of(2) {
        p.barrier(CommId::WORLD);
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
}

/// Revised bug (shared lock): definite cross-process error.
pub fn buggy(p: &mut Proc) {
    body(p, LockKind::Shared, false);
}

/// The original bug (exclusive lock): reported as a warning only.
pub fn original_exclusive(p: &mut Proc) {
    body(p, LockKind::Exclusive, false);
}

/// The fix: the target's section A runs strictly after the origin's
/// epochs (separated by a barrier).
pub fn fixed(p: &mut Proc) {
    body(p, LockKind::Shared, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::trace_of;
    use mcc_core::{AnalysisSession, ErrorScope, Severity};

    /// The full 64-process configuration is exercised by the `table2`
    /// binary and integration tests; unit tests use 8 ranks for speed.
    const TEST_PROCS: u32 = 8;

    #[test]
    fn shared_lock_variant_is_error() {
        let trace = trace_of(TEST_PROCS, 11, buggy);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors());
        let e = report.errors().next().unwrap();
        assert!(matches!(e.scope, ErrorScope::CrossProcess { .. }));
        // Put or get conflicting with the target's load/store.
        let ops = [e.a.op.as_str(), e.b.op.as_str()];
        assert!(ops.contains(&"MPI_Put") || ops.contains(&"MPI_Get"));
        assert!(ops.contains(&"load") || ops.contains(&"store"));
    }

    #[test]
    fn exclusive_lock_variant_is_warning_only() {
        let trace = trace_of(TEST_PROCS, 11, original_exclusive);
        let report = AnalysisSession::new().run(&trace);
        assert!(!report.has_errors(), "exclusive locks may serialize: {}", report.render());
        assert!(report.warnings().next().is_some(), "but a warning is still raised");
        assert_eq!(report.warnings().next().unwrap().severity, Severity::Warning);
    }

    #[test]
    fn fixed_variant_clean() {
        let trace = trace_of(TEST_PROCS, 11, fixed);
        let report = AnalysisSession::new().run(&trace);
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }

    #[test]
    fn detected_at_full_scale_too() {
        // Table II: triggered with 64 processes. Detection capability "is
        // not affected by the scale of the system".
        let trace = trace_of(SPEC.nprocs, 11, buggy);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors());
    }
}

//! `mpi3-queue`: a work queue built on MPI-3 one-sided primitives —
//! `lock_all`, `fetch_and_op` tickets, request-based gets and flushes —
//! exercising the MPI-3 extension of the checker (the paper's §V:
//! "we believe that the techniques we have developed can be applied to
//! the MPI-3 one-sided communication model").
//!
//! Rank 0 hosts a queue of work items plus a ticket counter. Every worker
//! atomically takes a ticket with `MPI_Fetch_and_op`, then fetches the
//! corresponding item with `MPI_Rget`.
//!
//! The **bug**: the worker reads the fetched item before completing the
//! rget with `MPI_Wait` — the MPI-3 analogue of the BT-broadcast
//! read-before-complete error. The **fix** waits first.

use super::BugSpec;
use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, ReduceOp};

/// Row metadata for this extension case.
pub const SPEC: BugSpec = BugSpec {
    name: "mpi3-queue",
    nprocs: 4,
    error_location: "within an epoch",
    root_cause: "conflicting MPI_Rget and local load (missing MPI_Wait)",
    symptom: "worker processes a stale/zero work item",
    injected: true,
};

/// Queue length (one item per worker).
fn items(n: u32) -> u64 {
    n as u64 - 1
}

fn body(p: &mut Proc, fixed: bool) -> i64 {
    p.set_func("mpi3_queue");
    let n = p.size();
    // Window layout at rank 0: [ticket_counter, item_0, item_1, ...].
    let wlen = 1 + items(n);
    let wbuf = p.alloc_i32s(wlen as usize);
    if p.rank() == 0 {
        for i in 0..items(n) {
            p.poke_i32(wbuf + 4 * (1 + i), 100 + i as i32);
        }
    }
    let win = p.win_create(wbuf, 4 * wlen, CommId::WORLD);
    p.barrier(CommId::WORLD);

    let mut sum = 0i64;
    if p.rank() != 0 {
        let one = p.alloc_i32s(1);
        p.tstore_i32(one, 1);
        let ticket = p.alloc_i32s(1);
        let item = p.alloc_i32s(1);
        p.win_lock_all(win);
        // Atomically draw a ticket.
        p.fetch_and_op(one, ticket, DatatypeId::INT, 0, 0, ReduceOp::Sum, win);
        p.win_flush(0, win); // the ticket is valid from here on
        let t = p.tload_i32(ticket) as u64;
        // Fetch the work item for this ticket.
        let req = p.rget(item, 1, DatatypeId::INT, 0, 4 * (1 + t), 1, DatatypeId::INT, win);
        if fixed {
            p.wait_req(req); // completes the rget
            sum += p.tload_i32(item) as i64;
        } else {
            // BUG: read before the rget completed.
            sum += p.tload_i32(item) as i64;
            p.wait_req(req);
        }
        p.win_unlock_all(win);
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
    sum
}

/// The missing-wait bug.
pub fn buggy(p: &mut Proc) {
    let _ = body(p, false);
}

/// The fix.
pub fn fixed(p: &mut Proc) {
    let _ = body(p, true);
}

/// Runs the fixed variant and returns the worker's item value (for the
/// semantic test).
pub fn fixed_with_result(p: &mut Proc) -> i64 {
    body(p, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::trace_of;
    use mcc_core::{AnalysisSession, ErrorScope};
    use mcc_mpi_sim::{run, DeliveryPolicy, SimConfig};

    #[test]
    fn missing_wait_detected() {
        let trace = trace_of(SPEC.nprocs, 13, buggy);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors());
        let e = report
            .errors()
            .find(|e| e.a.op == "MPI_Rget" || e.b.op == "MPI_Rget")
            .expect("rget/load conflict: {report}");
        assert!(matches!(e.scope, ErrorScope::IntraEpoch { .. }));
        let ops = [e.a.op.as_str(), e.b.op.as_str()];
        assert!(ops.contains(&"load"));
    }

    #[test]
    fn fixed_variant_clean() {
        let trace = trace_of(SPEC.nprocs, 13, fixed);
        let report = AnalysisSession::new().run(&trace);
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }

    #[test]
    fn fixed_variant_distributes_all_items() {
        // Semantics under adversarial delivery: every worker gets a
        // distinct valid item; the sum over workers is the queue total.
        use std::sync::atomic::{AtomicI64, Ordering};
        let total = AtomicI64::new(0);
        run(SimConfig::new(4).with_seed(13).with_delivery(DeliveryPolicy::Adversarial), |p| {
            let s = fixed_with_result(p);
            total.fetch_add(s, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 100 + 101 + 102);
    }

    #[test]
    fn tickets_are_unique_under_contention() {
        // The fetch_and_op path hands out distinct tickets even with all
        // workers racing (atomicity of the simulated fetch_and_op).
        for seed in 0..5 {
            let trace = trace_of(SPEC.nprocs, seed, fixed);
            let report = AnalysisSession::new().run(&trace);
            assert!(!report.has_errors(), "seed {seed}: {}", report.render());
        }
    }
}

//! The four memory-consistency-error archetypes of the paper's Figure 2,
//! as minimal runnable programs.
//!
//! * **2a** — intra-epoch: `MPI_Put` then a store to the origin buffer;
//! * **2b** — active target, across processes: two origins put to the same
//!   target location in the same fence epoch;
//! * **2c** — passive target, across processes: a put and a get on
//!   overlapping window memory under shared locks;
//! * **2d** — origin vs target: a put conflicting with the target's own
//!   store to its window.

use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, LockKind};

/// Figure 2a (2 processes): put followed by a store to the same buffer
/// within one epoch.
pub fn fig2a(p: &mut Proc) {
    p.set_func("fig2a");
    let wbuf = p.alloc_i32s(1);
    let win = p.win_create(wbuf, 4, CommId::WORLD);
    p.win_fence(win);
    if p.rank() == 0 {
        let buf = p.alloc_i32s(1);
        p.tstore_i32(buf, 7);
        p.put(buf, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
        p.tstore_i32(buf, 8); // races with the nonblocking put
    }
    p.win_fence(win);
    p.win_free(win);
}

/// Figure 2b (3 processes): concurrent puts from P0 and P2 to the same
/// location of P1's window in one active-target epoch.
pub fn fig2b(p: &mut Proc) {
    p.set_func("fig2b");
    let wbuf = p.alloc_i32s(1);
    let win = p.win_create(wbuf, 4, CommId::WORLD);
    p.win_fence(win);
    if p.rank() == 0 || p.rank() == 2 {
        let buf = p.alloc_i32s(1);
        p.tstore_i32(buf, p.rank() as i32);
        p.put(buf, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
    }
    p.win_fence(win);
    p.win_free(win);
}

/// Figure 2c (3 processes): P0 puts and P2 gets overlapping window memory
/// of P1 under concurrent shared-lock epochs.
pub fn fig2c(p: &mut Proc) {
    p.set_func("fig2c");
    let wbuf = p.alloc_i32s(1);
    let win = p.win_create(wbuf, 4, CommId::WORLD);
    p.barrier(CommId::WORLD);
    if p.rank() == 0 {
        let buf = p.alloc_i32s(1);
        p.tstore_i32(buf, 1);
        p.win_lock(LockKind::Shared, 1, win);
        p.put(buf, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
        p.win_unlock(1, win);
    } else if p.rank() == 2 {
        let buf = p.alloc_i32s(1);
        p.win_lock(LockKind::Shared, 1, win);
        p.get(buf, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
        p.win_unlock(1, win);
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
}

/// Figure 2d (2 processes): P0's put conflicts with P1's own store to its
/// window.
pub fn fig2d(p: &mut Proc) {
    p.set_func("fig2d");
    let wbuf = p.alloc_i32s(1);
    let win = p.win_create(wbuf, 4, CommId::WORLD);
    p.win_fence(win);
    if p.rank() == 0 {
        let buf = p.alloc_i32s(1);
        p.tstore_i32(buf, 5);
        p.put(buf, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
    } else {
        p.tstore_i32(wbuf, 9); // the target writes its own exposed memory
    }
    p.win_fence(win);
    p.win_free(win);
}

/// `(name, nprocs, body, expected scope)`.
pub type ArchetypeCase = (&'static str, u32, fn(&mut Proc), &'static str);

/// All four archetypes, in figure order.
#[allow(clippy::type_complexity)]
pub fn all() -> Vec<ArchetypeCase> {
    vec![
        ("fig2a", 2, fig2a as fn(&mut Proc), "intra-epoch"),
        ("fig2b", 3, fig2b, "cross-process"),
        ("fig2c", 3, fig2c, "cross-process"),
        ("fig2d", 2, fig2d, "cross-process"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::trace_of;
    use mcc_core::{AnalysisSession, ErrorScope};

    #[test]
    fn every_archetype_detected_with_expected_scope() {
        for (name, nprocs, body, scope) in all() {
            let trace = trace_of(nprocs, 17, body);
            let report = AnalysisSession::new().run(&trace);
            assert!(report.has_errors(), "{name} not detected");
            let found_scope = report.errors().next().unwrap().scope;
            match scope {
                "intra-epoch" => {
                    assert!(matches!(found_scope, ErrorScope::IntraEpoch { .. }), "{name}")
                }
                _ => assert!(matches!(found_scope, ErrorScope::CrossProcess { .. }), "{name}"),
            }
        }
    }

    #[test]
    fn fig2b_reports_the_two_origins() {
        let trace = trace_of(3, 17, fig2b);
        let report = AnalysisSession::new().run(&trace);
        let e = report.errors().next().unwrap();
        assert_eq!(e.a.op, "MPI_Put");
        assert_eq!(e.b.op, "MPI_Put");
        let ranks = [e.a.rank.0, e.b.rank.0];
        assert!(ranks.contains(&0) && ranks.contains(&2));
    }

    #[test]
    fn fig2c_put_get_pair() {
        let trace = trace_of(3, 17, fig2c);
        let report = AnalysisSession::new().run(&trace);
        let ops: Vec<&str> =
            report.errors().flat_map(|e| [e.a.op.as_str(), e.b.op.as_str()]).collect();
        assert!(ops.contains(&"MPI_Put") && ops.contains(&"MPI_Get"));
    }
}

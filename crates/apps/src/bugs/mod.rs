//! The bug-case applications of the paper's effectiveness evaluation
//! (Table II): three real-world bugs and two injected ones.
//!
//! | App | Procs | Error location | Root cause |
//! |---|---|---|---|
//! | emulate | 2 | within an epoch | conflicting `MPI_Get` and load/store |
//! | BT-broadcast | 2 | within an epoch | conflicting `MPI_Get` and load |
//! | lockopts | 64 | across processes | conflicting load/store and `MPI_Put`/`MPI_Get` |
//! | ping-pong | 2 | within an epoch | conflicting `MPI_Put` and store (injected) |
//! | jacobi | 4 | across processes | conflicting `MPI_Put` and load (injected) |
//!
//! Every case provides a `buggy` and a `fixed` variant; the fixed variants
//! double as false-positive regression tests for the checker.

pub mod adlb;
pub mod archetypes;
pub mod bt_broadcast;
pub mod emulate;
pub mod jacobi;
pub mod lockopts;
pub mod mpi3_queue;
pub mod pingpong;
pub mod recovery_gallery;

use mcc_mpi_sim::{run, run_tolerant, DeliveryPolicy, FaultPlan, Proc, SimConfig, SimError};
use mcc_types::Trace;
use std::time::Duration;

/// Metadata of one Table II row.
#[derive(Debug, Clone, Copy)]
pub struct BugSpec {
    /// Application name as listed in Table II.
    pub name: &'static str,
    /// Number of processes the bug is triggered with.
    pub nprocs: u32,
    /// "within an epoch" or "across processes".
    pub error_location: &'static str,
    /// The conflicting operation pair (root cause).
    pub root_cause: &'static str,
    /// Failure symptom observed in the application.
    pub symptom: &'static str,
    /// Whether this is a real-world or injected bug.
    pub injected: bool,
}

/// Runs a bug-case body under the Profiler and returns its trace.
///
/// Bug demos run under `AtClose` delivery: the worst legal completion
/// timing, which makes the symptoms deterministic (the checker itself is
/// timing-independent — it analyzes the trace, not the symptom).
pub fn trace_of(nprocs: u32, seed: u64, body: impl Fn(&mut Proc) + Send + Sync) -> Trace {
    run(SimConfig::new(nprocs).with_seed(seed).with_delivery(DeliveryPolicy::AtClose), body)
        .expect("bug case must run to completion")
        .trace
        .expect("tracing is enabled")
}

/// Runs a bug-case body under the seeded adversarial delivery policy and
/// returns its trace.
///
/// Unlike [`trace_of`], each RMA operation's completion timing is drawn
/// from the seeded RNG, so the same body can behave differently from
/// seed to seed — the random-search baseline that `mcc explore`'s
/// systematic enumeration replaces.
pub fn trace_adversarial(nprocs: u32, seed: u64, body: impl Fn(&mut Proc) + Send + Sync) -> Trace {
    run(SimConfig::new(nprocs).with_seed(seed).with_delivery(DeliveryPolicy::Adversarial), body)
        .expect("bug case must run to completion")
        .trace
        .expect("tracing is enabled")
}

/// Runs a bug-case body under fault injection and salvages whatever
/// trace the surviving ranks produced.
///
/// Unlike [`trace_of`], the run is allowed to fail: injected aborts,
/// hangs (bounded by a watchdog) and rank deaths all produce a partial
/// trace plus the simulator's verdict instead of a panic. The partial
/// trace is what the degraded-mode checker
/// (`mcc_core::AnalysisSession::run_with_repair`) is for.
pub fn trace_under_faults(
    nprocs: u32,
    seed: u64,
    faults: FaultPlan,
    body: impl Fn(&mut Proc) + Send + Sync,
) -> (Trace, Option<SimError>) {
    let outcome = run_tolerant(
        SimConfig::new(nprocs)
            .with_seed(seed)
            .with_delivery(DeliveryPolicy::AtClose)
            .with_faults(faults)
            .expect("bug-case fault plan targets existing ranks")
            .with_watchdog(Duration::from_millis(2000)),
        body,
    )
    .expect("bug-case configuration is valid");
    (outcome.trace.expect("tracing is enabled"), outcome.error)
}

/// A case with its buggy body: `(spec, buggy)`.
pub type BugCase = (BugSpec, fn(&mut Proc));

/// A case with both variants: `(spec, buggy, fixed)`.
pub type BugCasePair = (BugSpec, fn(&mut Proc), fn(&mut Proc));

/// All five Table II rows with their buggy bodies, in paper order.
pub fn table2_cases() -> Vec<BugCase> {
    vec![
        (emulate::SPEC, emulate::buggy as fn(&mut Proc)),
        (bt_broadcast::SPEC, bt_broadcast::buggy),
        (lockopts::SPEC, lockopts::buggy),
        (pingpong::SPEC, pingpong::buggy),
        (jacobi::SPEC, jacobi::buggy),
    ]
}

/// The fixed counterparts, used as false-positive regressions.
pub fn fixed_cases() -> Vec<BugCase> {
    vec![
        (emulate::SPEC, emulate::fixed as fn(&mut Proc)),
        (bt_broadcast::SPEC, bt_broadcast::fixed),
        (lockopts::SPEC, lockopts::fixed),
        (pingpong::SPEC, pingpong::fixed),
        (jacobi::SPEC, jacobi::fixed),
    ]
}

/// Extension case studies beyond the paper's Table II: the ADLB stack
/// bug the paper recounts in §II-B and an MPI-3 work queue exercising the
/// §V extension.
pub fn extension_cases() -> Vec<BugCasePair> {
    vec![
        (adlb::SPEC, adlb::buggy as fn(&mut Proc), adlb::fixed as fn(&mut Proc)),
        (mpi3_queue::SPEC, mpi3_queue::buggy, mpi3_queue::fixed),
    ]
}

//! `emulate`: a distributed-shared-memory emulation — the paper's first
//! real-world bug case (Figure 1, Table II row 1; 2 processes).
//!
//! Each rank exposes a counter in a window and emulates a shared fetch-
//! and-increment: lock the remote window, `MPI_Get` the counter into a
//! local variable `out`, increment it locally, put it back, unlock.
//!
//! The bug (Figure 1): the load of `out` (and the store of the
//! incremented value) happen **inside** the epoch, before the nonblocking
//! get is guaranteed complete — "the load access of out can retrieve an
//! old value and the store access of out can be overwritten by a value
//! retrieved from MPI_Get".

use super::BugSpec;
use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, LockKind};

/// Table II row.
pub const SPEC: BugSpec = BugSpec {
    name: "emulate",
    nprocs: 2,
    error_location: "within an epoch",
    root_cause: "conflicting MPI_Get and local load/store",
    symptom: "stale value read; increment lost",
    injected: false,
};

fn scaffold(p: &mut Proc) -> (u64, mcc_types::WinId) {
    p.set_func("main");
    let counter = p.alloc_i32s(1);
    p.poke_i32(counter, 100);
    let win = p.win_create(counter, 4, CommId::WORLD);
    p.barrier(CommId::WORLD);
    (counter, win)
}

/// The buggy fetch-and-increment: load/store of `out` inside the epoch.
pub fn buggy(p: &mut Proc) {
    let (_counter, win) = scaffold(p);
    p.set_func("shmem_fetch_inc");
    if p.rank() == 0 {
        let target = 1;
        let out = p.alloc_i32s(1);
        p.win_lock(LockKind::Shared, target, win);
        p.get(out, 1, DatatypeId::INT, target, 0, 1, DatatypeId::INT, win); // Fig 1 line 2
        let x = p.tload_i32(out); // Fig 1 line 3: may read a stale value
        p.tstore_i32(out, x + 1); // Fig 1 line 4: may be overwritten by the get
        p.win_unlock(target, win); // Fig 1 line 6: epoch close
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
}

/// The fix: close the epoch before touching the fetched value.
pub fn fixed(p: &mut Proc) {
    let (_counter, win) = scaffold(p);
    p.set_func("shmem_fetch_inc");
    if p.rank() == 0 {
        let target = 1;
        let out = p.alloc_i32s(1);
        p.win_lock(LockKind::Shared, target, win);
        p.get(out, 1, DatatypeId::INT, target, 0, 1, DatatypeId::INT, win);
        p.win_unlock(target, win); // get is complete here
        let x = p.tload_i32(out);
        p.tstore_i32(out, x + 1);
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
}

/// Runs the buggy body and reports whether the symptom (a stale read)
/// occurred — used by the Table II binary to show the failure mode.
pub fn symptom_occurred(p: &mut Proc) -> bool {
    let (_counter, win) = scaffold(p);
    let mut stale = false;
    if p.rank() == 0 {
        let out = p.alloc_i32s(1);
        p.win_lock(LockKind::Shared, 1, win);
        p.get(out, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
        let x = p.peek_i32(out); // the buggy read
        p.win_unlock(1, win);
        stale = x != 100; // remote counter is 100; a stale read sees 0
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
    stale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::trace_of;
    use mcc_core::{AnalysisSession, ErrorScope, Severity};
    use mcc_types::Rank;

    #[test]
    fn buggy_variant_detected() {
        let trace = trace_of(SPEC.nprocs, 1, buggy);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors(), "emulate bug must be detected");
        let e = report.errors().next().unwrap();
        assert!(matches!(e.scope, ErrorScope::IntraEpoch { rank: Rank(0), .. }));
        assert_eq!(e.severity, Severity::Error);
        // Root cause: MPI_Get conflicting with load/store.
        assert_eq!(e.a.op, "MPI_Get");
        assert!(e.b.op == "load" || e.b.op == "store");
        // Diagnostics cite this file.
        assert!(e.a.loc.file.ends_with("emulate.rs"));
        assert_eq!(e.a.loc.func, "shmem_fetch_inc");
    }

    #[test]
    fn fixed_variant_clean() {
        let trace = trace_of(SPEC.nprocs, 1, fixed);
        let report = AnalysisSession::new().run(&trace);
        assert!(!report.has_errors(), "fixed emulate must be clean: {}", report.render());
        assert_eq!(report.diagnostics.len(), 0);
    }

    #[test]
    fn symptom_reproduces_under_atclose() {
        use mcc_mpi_sim::{run, DeliveryPolicy, SimConfig};
        use std::sync::atomic::{AtomicBool, Ordering};
        let stale = AtomicBool::new(false);
        run(SimConfig::new(2).with_seed(3).with_delivery(DeliveryPolicy::AtClose), |p| {
            if symptom_occurred(p) {
                stale.store(true, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert!(stale.load(Ordering::Relaxed), "AtClose delivery exposes the stale read");
    }

    #[test]
    fn symptom_masked_under_eager() {
        // Eager delivery (small messages buffered immediately) masks the
        // bug — the same way the ADLB bug stayed hidden for years.
        use mcc_mpi_sim::{run, DeliveryPolicy, SimConfig};
        use std::sync::atomic::{AtomicBool, Ordering};
        let stale = AtomicBool::new(false);
        run(SimConfig::new(2).with_seed(3).with_delivery(DeliveryPolicy::Eager), |p| {
            if symptom_occurred(p) {
                stale.store(true, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert!(!stale.load(Ordering::Relaxed));
        // But the checker still flags the trace — detection is not
        // timing-dependent.
        let trace = trace_of(SPEC.nprocs, 3, buggy);
        assert!(AnalysisSession::new().run(&trace).has_errors());
    }
}

//! A SKaMPI-style one-sided microbenchmark sweep (Figure 8's fourth
//! application).
//!
//! SKaMPI measures MPI primitives across message sizes. This kernel
//! sweeps put/get/accumulate over a range of sizes under both fence and
//! lock synchronization — maximum MPI-call density with minimal
//! computation, the opposite end of the overhead spectrum from the
//! compute-heavy kernels.

use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, LockKind, ReduceOp};

/// Problem-size knobs.
#[derive(Debug, Clone, Copy)]
pub struct SkampiParams {
    /// Largest message, in `i32` elements (sweeps powers of two up to
    /// this).
    pub max_elems: usize,
    /// Repetitions per size.
    pub reps: usize,
}

impl Default for SkampiParams {
    fn default() -> Self {
        Self { max_elems: 64, reps: 4 }
    }
}

/// Runs the sweep on one rank.
pub fn skampi(p: &mut Proc, params: &SkampiParams) {
    p.set_func("skampi");
    let n = p.size();
    let me = p.rank();
    let peer = me ^ 1; // pairwise pattern
    let max = params.max_elems.max(1);
    let wbuf = p.alloc_i32s(max);
    let win = p.win_create(wbuf, (4 * max) as u64, CommId::WORLD);
    let src = p.alloc_i32s(max);
    for i in 0..max {
        p.tstore_i32(src + 4 * i as u64, i as i32);
    }

    // Fence-mode sweep.
    p.win_fence(win);
    let mut elems = 1usize;
    while elems <= max {
        for _rep in 0..params.reps {
            if me.is_multiple_of(2) && peer < n {
                p.put(
                    src,
                    elems as u32,
                    DatatypeId::INT,
                    peer,
                    0,
                    elems as u32,
                    DatatypeId::INT,
                    win,
                );
            }
            p.win_fence(win);
            if me % 2 == 1 {
                // Touch the received prefix.
                let mut s = 0i64;
                for i in 0..elems {
                    s += p.tload_i32(wbuf + 4 * i as u64) as i64;
                }
                std::hint::black_box(s);
            }
            p.win_fence(win);
        }
        elems *= 2;
    }

    // Lock-mode sweep (passive target): even ranks drive.
    p.barrier(CommId::WORLD);
    if me.is_multiple_of(2) && peer < n {
        let mut elems = 1usize;
        let back = p.alloc_i32s(max);
        while elems <= max {
            for _rep in 0..params.reps {
                p.win_lock(LockKind::Exclusive, peer, win);
                p.put(
                    src,
                    elems as u32,
                    DatatypeId::INT,
                    peer,
                    0,
                    elems as u32,
                    DatatypeId::INT,
                    win,
                );
                p.win_unlock(peer, win);
                p.win_lock(LockKind::Shared, peer, win);
                p.get(
                    back,
                    elems as u32,
                    DatatypeId::INT,
                    peer,
                    0,
                    elems as u32,
                    DatatypeId::INT,
                    win,
                );
                p.win_unlock(peer, win);
                p.win_lock(LockKind::Exclusive, peer, win);
                p.accumulate(
                    src,
                    elems as u32,
                    DatatypeId::INT,
                    peer,
                    0,
                    elems as u32,
                    DatatypeId::INT,
                    ReduceOp::Sum,
                    win,
                );
                p.win_unlock(peer, win);
            }
            elems *= 2;
        }
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_mpi_sim::{run, SimConfig};

    #[test]
    fn sweep_runs() {
        let params = SkampiParams { max_elems: 16, reps: 2 };
        let r = run(SimConfig::new(4).with_seed(6), |p| skampi(p, &params)).unwrap();
        assert!(r.stats.total_mpi_events() > 0);
    }

    #[test]
    fn trace_is_race_free() {
        use mcc_core::AnalysisSession;
        let params = SkampiParams { max_elems: 8, reps: 1 };
        let r = run(SimConfig::new(2).with_seed(6), |p| skampi(p, &params)).unwrap();
        let report = AnalysisSession::new().run(&r.trace.unwrap());
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }

    #[test]
    fn odd_world_size_last_rank_idles() {
        let params = SkampiParams { max_elems: 4, reps: 1 };
        run(SimConfig::new(3).with_seed(6), |p| skampi(p, &params)).unwrap();
    }
}

//! A NAS-LU-style factorization kernel — the strong-scaling application
//! of Figures 8–10.
//!
//! An `N×N` system is factorized with row-cyclic distribution: for every
//! pivot step the owner normalizes and broadcasts the pivot row, then
//! every rank eliminates its own rows — `O(N³/P)` relevant loads/stores
//! per rank against the window-exposed matrix. Under strong scaling
//! (fixed `N`, growing `P`) the per-rank computation — and with it the
//! rate of profiling events — shrinks, which is exactly the effect the
//! paper uses to explain Figure 9's falling overhead via Figure 10.

use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, ReduceOp};

/// Problem-size knobs.
#[derive(Debug, Clone, Copy)]
pub struct LuParams {
    /// Matrix dimension (the paper runs 1500; the benches scale this
    /// down — the *shape* of the scaling curve is what matters).
    pub n: usize,
}

impl Default for LuParams {
    fn default() -> Self {
        Self { n: 48 }
    }
}

/// Runs the kernel on one rank. Returns this rank's residual checksum.
pub fn lu(p: &mut Proc, params: &LuParams) -> f64 {
    p.set_func("lu");
    let nprocs = p.size() as usize;
    let me = p.rank() as usize;
    let n = params.n;
    // Row-cyclic distribution: I own rows r with r % nprocs == me.
    let my_rows: Vec<usize> = (0..n).filter(|r| r % nprocs == me).collect();
    let rows_local = my_rows.len();
    // Window: my rows, packed (f64).
    let a = p.alloc_f64s(rows_local * n);
    for (li, &r) in my_rows.iter().enumerate() {
        for c in 0..n {
            // Diagonally dominant deterministic matrix.
            let v = if r == c { n as f64 + 1.0 } else { 1.0 / (1 + r + c) as f64 };
            p.poke_f64(a + 8 * (li * n + c) as u64, v);
        }
    }
    let win = p.win_create(a, (8 * rows_local * n) as u64, CommId::WORLD);
    let pivot = p.alloc_f64s(n);
    p.win_fence(win);

    for k in 0..n {
        let owner = (k % nprocs) as u32;
        if me == k % nprocs {
            // Normalize my pivot row and stage it for broadcast.
            let li = k / nprocs;
            let d = p.tload_f64(a + 8 * (li * n + k) as u64);
            for c in 0..n {
                let v = p.tload_f64(a + 8 * (li * n + c) as u64);
                p.store_f64(pivot + 8 * c as u64, v / d);
            }
        }
        p.bcast(pivot, n as u32, DatatypeId::DOUBLE, owner, CommId::WORLD);
        // Eliminate my rows below the pivot.
        for (li, &r) in my_rows.iter().enumerate() {
            if r <= k {
                continue;
            }
            let f = p.tload_f64(a + 8 * (li * n + k) as u64);
            if f == 0.0 {
                continue;
            }
            for c in k..n {
                let pv = p.load_f64(pivot + 8 * c as u64);
                let v = p.tload_f64(a + 8 * (li * n + c) as u64);
                p.tstore_f64(a + 8 * (li * n + c) as u64, v - f * pv);
            }
        }
    }
    p.win_fence(win);

    // Residual-style checksum of my block, combined with an allreduce.
    let mut sum = 0.0;
    for li in 0..rows_local {
        for c in 0..n {
            sum += p.tload_f64(a + 8 * (li * n + c) as u64).abs();
        }
    }
    let local = p.alloc_f64s(1);
    p.poke_f64(local, sum);
    let global = p.alloc_f64s(1);
    p.allreduce(local, global, 1, DatatypeId::DOUBLE, ReduceOp::Sum, CommId::WORLD);
    let out = p.peek_f64(global);
    p.win_free(win);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_mpi_sim::{run, Instrument, SimConfig};
    use std::sync::Mutex;

    #[test]
    fn factorization_is_scale_invariant() {
        // The checksum must not depend on the process count.
        let checksum_at = |nprocs: u32| {
            let params = LuParams { n: 12 };
            let out = Mutex::new(0.0f64);
            run(SimConfig::new(nprocs).with_seed(8), |p| {
                let s = lu(p, &params);
                if p.rank() == 0 {
                    *out.lock().unwrap() = s;
                }
            })
            .unwrap();
            let v = *out.lock().unwrap();
            v
        };
        let a = checksum_at(1);
        let b = checksum_at(3);
        let c = checksum_at(4);
        assert!((a - b).abs() < 1e-6 * a.abs(), "{a} vs {b}");
        assert!((a - c).abs() < 1e-6 * a.abs(), "{a} vs {c}");
    }

    #[test]
    fn trace_is_race_free() {
        use mcc_core::AnalysisSession;
        let params = LuParams { n: 8 };
        let r = run(SimConfig::new(2).with_seed(8), |p| {
            lu(p, &params);
        })
        .unwrap();
        let report = AnalysisSession::new().run(&r.trace.unwrap());
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }

    #[test]
    fn strong_scaling_reduces_per_rank_events() {
        // Fig 10's mechanism: fixed problem, more ranks, fewer relevant
        // accesses per rank.
        let params = LuParams { n: 16 };
        let events_at = |nprocs: u32| {
            let r = run(
                SimConfig::new(nprocs)
                    .with_seed(8)
                    .with_instrument(Instrument::Relevant)
                    .with_keep_events(false),
                |p| {
                    lu(p, &params);
                },
            )
            .unwrap();
            r.stats.total_mem_events() as f64 / nprocs as f64
        };
        let per_rank_2 = events_at(2);
        let per_rank_8 = events_at(8);
        assert!(
            per_rank_8 < per_rank_2 / 2.0,
            "per-rank event count must fall under strong scaling: {per_rank_2} vs {per_rank_8}"
        );
    }
}

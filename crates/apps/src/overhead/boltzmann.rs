//! A lattice-Boltzmann style stencil kernel — the third GA-package
//! application of Figure 8.
//!
//! A 1-D lattice of three-velocity distributions (D1Q3) is block-
//! distributed; each rank exposes its block plus halo cells in a window.
//! Per step: push boundary distributions into the neighbours' halos with
//! `MPI_Put`, fence, then stream-and-collide over the local block (the
//! compute-heavy phase).

use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId};

/// Problem-size knobs.
#[derive(Debug, Clone, Copy)]
pub struct BoltzmannParams {
    /// Lattice cells per rank.
    pub cells_per_rank: usize,
    /// Time steps.
    pub steps: usize,
}

impl Default for BoltzmannParams {
    fn default() -> Self {
        Self { cells_per_rank: 32, steps: 3 }
    }
}

/// Distributions per cell (D1Q3: rest, +1, −1).
const Q: usize = 3;

/// Runs the kernel on one rank.
pub fn boltzmann(p: &mut Proc, params: &BoltzmannParams) {
    p.set_func("boltzmann");
    let n = p.size();
    let me = p.rank();
    let cells = params.cells_per_rank;
    // Window layout: [halo_left(Q) | cells*Q | halo_right(Q)] f64 values.
    let wcells = cells + 2;
    let f = p.alloc_f64s(wcells * Q);
    for c in 0..wcells {
        for q in 0..Q {
            p.poke_f64(
                f + 8 * (c * Q + q) as u64,
                1.0 / 3.0 + 0.01 * ((me as usize + c + q) % 5) as f64,
            );
        }
    }
    let win = p.win_create(f, (8 * wcells * Q) as u64, CommId::WORLD);
    let left = (me + n - 1) % n;
    let right = (me + 1) % n;
    let scratch = p.alloc_f64s(wcells * Q);

    p.win_fence(win);
    for _step in 0..params.steps {
        // Halo push: my first real cell to left neighbour's right halo,
        // my last real cell to right neighbour's left halo (periodic).
        p.put(
            f + 8 * Q as u64,
            Q as u32,
            DatatypeId::DOUBLE,
            left,
            (8 * (wcells - 1) * Q) as u64,
            Q as u32,
            DatatypeId::DOUBLE,
            win,
        );
        p.put(
            f + 8 * (cells * Q) as u64,
            Q as u32,
            DatatypeId::DOUBLE,
            right,
            0,
            Q as u32,
            DatatypeId::DOUBLE,
            win,
        );
        p.win_fence(win);
        // Stream: pull from neighbours into scratch.
        for c in 1..=cells {
            let lq = p.tload_f64(f + 8 * ((c - 1) * Q + 1) as u64); // +1 from left
            let rq = p.tload_f64(f + 8 * ((c + 1) * Q + 2) as u64); // −1 from right
            let rest = p.tload_f64(f + 8 * (c * Q) as u64);
            p.store_f64(scratch + 8 * (c * Q) as u64, rest);
            p.store_f64(scratch + 8 * (c * Q + 1) as u64, lq);
            p.store_f64(scratch + 8 * (c * Q + 2) as u64, rq);
        }
        // Collide (BGK relaxation towards equilibrium) and write back.
        for c in 1..=cells {
            let f0 = p.load_f64(scratch + 8 * (c * Q) as u64);
            let f1 = p.load_f64(scratch + 8 * (c * Q + 1) as u64);
            let f2 = p.load_f64(scratch + 8 * (c * Q + 2) as u64);
            let rho = f0 + f1 + f2;
            let u = (f1 - f2) / rho.max(1e-12);
            let om = 0.6;
            let eq0 = rho * (1.0 - u * u) / 3.0 * 2.0;
            let eq1 = rho * (1.0 + 3.0 * u) / 6.0;
            let eq2 = rho * (1.0 - 3.0 * u) / 6.0;
            p.tstore_f64(f + 8 * (c * Q) as u64, f0 + om * (eq0 - f0));
            p.tstore_f64(f + 8 * (c * Q + 1) as u64, f1 + om * (eq1 - f1));
            p.tstore_f64(f + 8 * (c * Q + 2) as u64, f2 + om * (eq2 - f2));
        }
        // End-of-step fence so next step's halo puts are ordered after
        // this step's window stores.
        p.win_fence(win);
    }
    p.win_free(win);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_mpi_sim::{run, SimConfig};

    #[test]
    fn mass_is_conserved() {
        // BGK collisions conserve density; check the trace runs and the
        // total mass stays finite and positive.
        let params = BoltzmannParams { cells_per_rank: 8, steps: 3 };
        run(SimConfig::new(2).with_seed(4), |p| {
            boltzmann(p, &params);
        })
        .unwrap();
    }

    #[test]
    fn trace_is_race_free() {
        use mcc_core::AnalysisSession;
        let params = BoltzmannParams { cells_per_rank: 6, steps: 2 };
        let r = run(SimConfig::new(3).with_seed(4), |p| boltzmann(p, &params)).unwrap();
        let report = AnalysisSession::new().run(&r.trace.unwrap());
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }

    #[test]
    fn single_rank_periodic_wraps_to_self() {
        let params = BoltzmannParams { cells_per_rank: 4, steps: 1 };
        run(SimConfig::new(1).with_seed(4), |p| boltzmann(p, &params)).unwrap();
    }
}

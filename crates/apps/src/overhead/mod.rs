//! The overhead-study applications (paper §VI, Figures 8–10): three
//! GA-package kernels over an ARMCI-style one-sided layer (Lennard-Jones,
//! SCF, Boltzmann), a SKaMPI-style RMA microbenchmark sweep, and a NAS
//! LU-style wavefront solver.
//!
//! Physics fidelity is not the point — the paper measures *profiling
//! overhead*, which is a function of each kernel's mix of computation,
//! instrumented (relevant) accesses, and MPI calls. Each kernel keeps the
//! communication/computation skeleton of its namesake and accepts a size
//! parameter so the benches can scale it.

pub mod boltzmann;
pub mod lennard_jones;
pub mod lu;
pub mod scf;
pub mod skampi;

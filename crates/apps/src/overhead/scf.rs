//! A self-consistent-field (SCF) style kernel — the second GA-package
//! application of Figure 8.
//!
//! A global Fock-like matrix is distributed row-block-wise in a window.
//! Each SCF iteration every rank fetches remote row blocks (`MPI_Get`),
//! contracts them with its local density block (compute), and adds its
//! contribution back with `MPI_Accumulate(SUM)` — the classic GA
//! `ga_acc` pattern. Convergence is tested with an allreduce.

use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, ReduceOp};

/// Problem-size knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScfParams {
    /// Rows per rank (block dimension); the block is `rows x rows`.
    pub rows: usize,
    /// SCF iterations.
    pub iters: usize,
}

impl Default for ScfParams {
    fn default() -> Self {
        Self { rows: 8, iters: 3 }
    }
}

/// Runs the kernel on one rank.
pub fn scf(p: &mut Proc, params: &ScfParams) {
    p.set_func("scf");
    let n = p.size() as usize;
    let me = p.rank() as usize;
    let b = params.rows;
    let block = b * b;
    // Window: my block of the Fock matrix.
    let fock = p.alloc_f64s(block);
    for i in 0..block {
        p.poke_f64(fock + 8 * i as u64, ((me + i) % 7) as f64 * 0.1);
    }
    let win = p.win_create(fock, (8 * block) as u64, CommId::WORLD);
    let density = p.alloc_f64s(block);
    for i in 0..block {
        p.poke_f64(density + 8 * i as u64, 1.0 / (1 + i + me) as f64);
    }
    let remote = p.alloc_f64s(block);
    let contrib = p.alloc_f64s(block);

    p.win_fence(win);
    for _iter in 0..params.iters {
        for shift in 1..n.max(2) {
            let other = (me + shift) % n;
            if other == me {
                continue;
            }
            p.get(
                remote,
                block as u32,
                DatatypeId::DOUBLE,
                other as u32,
                0,
                block as u32,
                DatatypeId::DOUBLE,
                win,
            );
            p.win_fence(win);
            // contrib = remote * density (block GEMM-ish contraction).
            for i in 0..b {
                for j in 0..b {
                    let mut acc = 0.0;
                    for k in 0..b {
                        let r = p.tload_f64(remote + 8 * (i * b + k) as u64);
                        let d = p.load_f64(density + 8 * (k * b + j) as u64);
                        acc += r * d;
                    }
                    p.store_f64(contrib + 8 * (i * b + j) as u64, 0.01 * acc);
                }
            }
            // Scatter the contribution back into the remote Fock block.
            p.accumulate(
                contrib,
                block as u32,
                DatatypeId::DOUBLE,
                other as u32,
                0,
                block as u32,
                DatatypeId::DOUBLE,
                ReduceOp::Sum,
                win,
            );
            p.win_fence(win);
        }
        // Energy estimate: trace of my block, allreduced.
        let mut tr = 0.0;
        for i in 0..b {
            tr += p.tload_f64(fock + 8 * (i * b + i) as u64);
        }
        let e_local = p.alloc_f64s(1);
        p.poke_f64(e_local, tr);
        let e_global = p.alloc_f64s(1);
        p.allreduce(e_local, e_global, 1, DatatypeId::DOUBLE, ReduceOp::Sum, CommId::WORLD);
    }
    p.win_free(win);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_mpi_sim::{run, SimConfig};

    #[test]
    fn runs_at_several_scales() {
        for n in [2u32, 4] {
            let params = ScfParams { rows: 4, iters: 2 };
            let r = run(SimConfig::new(n).with_seed(2), |p| scf(p, &params)).unwrap();
            assert!(r.stats.total_mem_events() > 0);
        }
    }

    #[test]
    fn trace_is_race_free() {
        use mcc_core::AnalysisSession;
        let params = ScfParams { rows: 3, iters: 1 };
        let r = run(SimConfig::new(3).with_seed(2), |p| scf(p, &params)).unwrap();
        let report = AnalysisSession::new().run(&r.trace.unwrap());
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }
}

//! Lennard-Jones molecular dynamics over a global position array — the
//! GA-package kernel of Figure 8.
//!
//! Positions live in a window distributed across ranks (a global array).
//! Each step every rank `MPI_Get`s the blocks it needs, computes pairwise
//! LJ forces against its own particles (the computation-heavy part whose
//! relevant loads dominate the event stream), integrates locally, and
//! writes its updated block back with `MPI_Put` inside a fence epoch.

use mcc_mpi_sim::Proc;
use mcc_types::{CommId, DatatypeId, ReduceOp};

/// Problem-size knobs.
#[derive(Debug, Clone, Copy)]
pub struct LjParams {
    /// Particles per rank.
    pub particles_per_rank: usize,
    /// Time steps.
    pub steps: usize,
}

impl Default for LjParams {
    fn default() -> Self {
        Self { particles_per_rank: 24, steps: 3 }
    }
}

/// Runs the kernel on one rank.
pub fn lennard_jones(p: &mut Proc, params: &LjParams) {
    p.set_func("lennard_jones");
    let n = p.size() as usize;
    let me = p.rank() as usize;
    let local = params.particles_per_rank;
    // Window: my block of 1-D positions (f64).
    let pos = p.alloc_f64s(local);
    for i in 0..local {
        // Spread particles deterministically.
        p.poke_f64(pos + 8 * i as u64, (me * local + i) as f64 * 0.7);
    }
    let win = p.win_create(pos, (8 * local) as u64, CommId::WORLD);
    let remote = p.alloc_f64s(local); // scratch for one remote block
    let force = p.alloc_f64s(local);

    p.win_fence(win);
    for _step in 0..params.steps {
        // Zero forces.
        for i in 0..local {
            p.store_f64(force + 8 * i as u64, 0.0);
        }
        // Interact with every other rank's block (and our own).
        for other in 0..n {
            if other == me {
                // Local block: read through the window accessors.
                for i in 0..local {
                    let xi = p.tload_f64(pos + 8 * i as u64);
                    for j in (i + 1)..local {
                        let xj = p.tload_f64(pos + 8 * j as u64);
                        let f = lj_force(xi - xj);
                        let fi = p.load_f64(force + 8 * i as u64);
                        p.store_f64(force + 8 * i as u64, fi + f);
                        let fj = p.load_f64(force + 8 * j as u64);
                        p.store_f64(force + 8 * j as u64, fj - f);
                    }
                }
            } else {
                p.get(
                    remote,
                    local as u32,
                    DatatypeId::DOUBLE,
                    other as u32,
                    0,
                    local as u32,
                    DatatypeId::DOUBLE,
                    win,
                );
                p.win_fence(win); // complete the get before reading
                for i in 0..local {
                    let xi = p.tload_f64(pos + 8 * i as u64);
                    for j in 0..local {
                        // `remote` aliases RMA-transferred data: relevant.
                        let xj = p.tload_f64(remote + 8 * j as u64);
                        let f = lj_force(xi - xj);
                        let fi = p.load_f64(force + 8 * i as u64);
                        p.store_f64(force + 8 * i as u64, fi + f);
                    }
                }
            }
        }
        // Integrate and publish the new positions.
        for i in 0..local {
            let x = p.tload_f64(pos + 8 * i as u64);
            let f = p.load_f64(force + 8 * i as u64);
            p.tstore_f64(pos + 8 * i as u64, x + 1e-4 * f);
        }
        p.win_fence(win);
        // Diagnostic: total |force| via allreduce (collective traffic).
        let acc = p.alloc_f64s(1);
        let mut s = 0.0;
        for i in 0..local {
            s += p.load_f64(force + 8 * i as u64).abs();
        }
        p.poke_f64(acc, s);
        let out = p.alloc_f64s(1);
        p.allreduce(acc, out, 1, DatatypeId::DOUBLE, ReduceOp::Sum, CommId::WORLD);
    }
    p.win_free(win);
}

fn lj_force(dx: f64) -> f64 {
    let r2 = (dx * dx).max(0.05);
    let inv6 = 1.0 / (r2 * r2 * r2);
    24.0 * inv6 * (2.0 * inv6 - 1.0) / r2 * dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_mpi_sim::{run, Instrument, SimConfig};

    #[test]
    fn runs_and_produces_relevant_events() {
        let params = LjParams { particles_per_rank: 6, steps: 2 };
        let r = run(SimConfig::new(3).with_seed(1), |p| lennard_jones(p, &params)).unwrap();
        assert!(r.stats.total_mem_events() > 0);
        assert!(r.stats.total_mpi_events() > 0);
    }

    #[test]
    fn trace_is_race_free() {
        use mcc_core::AnalysisSession;
        let params = LjParams { particles_per_rank: 4, steps: 1 };
        let r = run(SimConfig::new(2).with_seed(1), |p| lennard_jones(p, &params)).unwrap();
        let report = AnalysisSession::new().run(&r.trace.unwrap());
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }

    #[test]
    fn instrument_all_logs_more_than_relevant() {
        let params = LjParams { particles_per_rank: 6, steps: 1 };
        let rel = run(
            SimConfig::new(2)
                .with_seed(1)
                .with_instrument(Instrument::Relevant)
                .with_keep_events(false),
            |p| lennard_jones(p, &params),
        )
        .unwrap();
        let all = run(
            SimConfig::new(2).with_seed(1).with_instrument(Instrument::All).with_keep_events(false),
            |p| lennard_jones(p, &params),
        )
        .unwrap();
        assert!(all.stats.total_mem_events() > rel.stats.total_mem_events());
    }
}

#![warn(missing_docs)]
//! Shared helpers for the table/figure regeneration binaries and benches.

pub mod synth;

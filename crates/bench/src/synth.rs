//! Synthetic trace generators for the analyzer benchmarks.
//!
//! The Criterion benches need traces whose size and conflict density can
//! be dialed independently of any application, so the analyzer phases
//! (matching, DAG construction, detection) can be measured in isolation
//! and the §IV-C4 linear-vs-combinatorial ablation can sweep region sizes.

use mcc_types::{
    CommId, DatatypeId, EventKind, Rank, RmaKind, RmaOp, SourceLoc, Tag, Trace, TraceBuilder, WinId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the synthetic workload.
#[derive(Debug, Clone, Copy)]
pub struct SynthParams {
    /// Number of ranks.
    pub nprocs: u32,
    /// Fence-delimited rounds (regions).
    pub rounds: usize,
    /// RMA operations per rank per round.
    pub ops_per_round: usize,
    /// Local load/store events per rank per round.
    pub locals_per_round: usize,
    /// Window length per rank in bytes.
    pub win_len: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        Self {
            nprocs: 8,
            rounds: 4,
            ops_per_round: 16,
            locals_per_round: 32,
            win_len: 4096,
            seed: 42,
        }
    }
}

/// Generates a fence-synchronized trace of puts/gets with random disjoint
/// or overlapping targets. `conflict_fraction` ∈ [0,1] steers how many
/// operations aim at a shared "hot" window slot (producing real
/// conflicts); 0.0 produces a conflict-free trace.
pub fn synth_trace(params: &SynthParams, conflict_fraction: f64) -> Trace {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n = params.nprocs;
    let mut b = TraceBuilder::new(n as usize);
    let win = WinId(0);
    let base = 64u64;
    for r in 0..n {
        b.push(
            Rank(r),
            EventKind::WinCreate { win, base, len: params.win_len, comm: CommId::WORLD },
        );
    }
    let slots = params.win_len / 8;
    for round in 0..params.rounds {
        for r in 0..n {
            b.push(Rank(r), EventKind::Fence { win });
        }
        for r in 0..n {
            for op_i in 0..params.ops_per_round {
                let target = rng.gen_range(0..n);
                let hot = rng.gen_bool(conflict_fraction);
                // Disjoint slots per (rank, op) unless "hot", in which
                // case everyone writes slot 0 of the target.
                let slot = if hot {
                    0
                } else {
                    1 + (r as u64 * params.ops_per_round as u64 + op_i as u64) % (slots - 1)
                };
                // Gets on the cold path keep the trace conflict-free when
                // conflict_fraction is 0; hot ops are puts so they truly
                // collide.
                let kind = if hot || rng.gen_bool(0.5) { RmaKind::Put } else { RmaKind::Get };
                b.push_at(
                    Rank(r),
                    EventKind::Rma(RmaOp {
                        kind,
                        win,
                        target: Rank(target),
                        origin_addr: (1 << 16) + 64 * (r as u64 * 1024 + op_i as u64),
                        origin_count: 2,
                        origin_dtype: DatatypeId::INT,
                        target_disp: 8 * slot,
                        target_count: 2,
                        target_dtype: DatatypeId::INT,
                    }),
                    SourceLoc::new(
                        "synth.c",
                        (round * 100_000 + r as usize * 1000 + op_i) as u32,
                        "synth",
                    ),
                );
            }
            for l in 0..params.locals_per_round {
                // Local traffic strictly outside the window so it can
                // never conflict (conflicts come only from the hot slot).
                let addr = (1 << 20) + 8 * l as u64;
                let kind = if rng.gen_bool(0.5) {
                    EventKind::Load { addr, len: 4 }
                } else {
                    EventKind::Store { addr, len: 4 }
                };
                b.push(Rank(r), kind);
            }
        }
    }
    for r in 0..n {
        b.push(Rank(r), EventKind::Fence { win });
        b.push(Rank(r), EventKind::WinFree { win });
    }
    b.build()
}

/// A trace with heavy collective + point-to-point synchronization and no
/// RMA — exercising the matching phase in isolation.
pub fn synth_sync_trace(nprocs: u32, rounds: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::new(nprocs as usize);
    for _ in 0..rounds {
        for r in 0..nprocs {
            b.push(Rank(r), EventKind::Barrier { comm: CommId::WORLD });
        }
        // A ring of sends; the receiver logs the tag that actually
        // matched, exactly as the Profiler does.
        let tags: Vec<u32> = (0..nprocs).map(|_| rng.gen_range(0..4)).collect();
        for r in 0..nprocs {
            let to = (r + 1) % nprocs;
            b.push(
                Rank(r),
                EventKind::Send {
                    comm: CommId::WORLD,
                    to: Rank(to),
                    tag: Tag(tags[r as usize]),
                    bytes: 8,
                },
            );
        }
        for r in 0..nprocs {
            let from = (r + nprocs - 1) % nprocs;
            b.push(
                Rank(r),
                EventKind::Recv {
                    comm: CommId::WORLD,
                    from: Rank(from),
                    tag: Tag(tags[from as usize]),
                    bytes: 8,
                },
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::{AnalysisSession, Engine};

    #[test]
    fn conflict_free_trace_is_clean() {
        let t = synth_trace(&SynthParams::default(), 0.0);
        let report = AnalysisSession::new().run(&t);
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
    }

    #[test]
    fn hot_slot_produces_conflicts() {
        let t = synth_trace(&SynthParams::default(), 0.5);
        let report = AnalysisSession::new().run(&t);
        assert!(report.has_errors());
    }

    #[test]
    fn trace_size_scales() {
        let small = synth_trace(&SynthParams { rounds: 1, ..Default::default() }, 0.0);
        let large = synth_trace(&SynthParams { rounds: 8, ..Default::default() }, 0.0);
        assert!(large.total_events() > 4 * small.total_events());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = synth_trace(&SynthParams::default(), 0.3);
        let b = synth_trace(&SynthParams::default(), 0.3);
        assert_eq!(a, b);
    }

    #[test]
    fn sync_trace_fully_matched() {
        let t = synth_sync_trace(6, 5, 9);
        let report = AnalysisSession::new().run(&t);
        assert_eq!(report.stats.unmatched_sync, 0);
        assert!(report.stats.regions > 1);
    }

    #[test]
    fn detectors_agree_on_synthetic_conflicts() {
        let t = synth_trace(&SynthParams { nprocs: 4, rounds: 2, ..Default::default() }, 0.4);
        let fast = AnalysisSession::new().run(&t);
        let naive = AnalysisSession::builder().engine(Engine::Naive).build().run(&t);
        assert_eq!(fast.diagnostics, naive.diagnostics);
    }
}

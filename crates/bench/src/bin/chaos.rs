//! Chaos recovery benchmark: how much a mid-stream fault costs a
//! durable session, per fault kind.
//!
//! For every fault kind × seed, a synthetic trace is streamed through
//! the in-process chaos proxy to a real daemon with a durable session;
//! the run records wall time, connection attempts, resumes, and re-sent
//! events, and verifies the final report against the batch analysis
//! (any divergence exits 1). A clean no-proxy baseline anchors the
//! recovery overhead. Results go to `BENCH_chaos.json`.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin chaos [-- --procs 8 --ops 48 \
//!     --locals 8 --rounds 3 --conflict-pct 5 --seeds 8 --out BENCH_chaos.json]
//! ```

use mcc_bench::synth::{synth_trace, SynthParams};
use mcc_core::AnalysisSession;
use mcc_serve::proto::SessionOpts;
use mcc_serve::{client, ChaosProxy, FaultKind, FaultSchedule, ServeConfig, Server};
use std::time::{Duration, Instant};

struct Row {
    kind: &'static str,
    runs: u64,
    fired: u64,
    attempts: u64,
    resumes: u64,
    events_resent: u64,
    mean_wall: Duration,
    max_wall: Duration,
}

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        tick: Duration::from_millis(20),
        ack_interval: 64,
        resume_grace: Duration::from_secs(60),
        ..ServeConfig::default()
    }
}

fn policy(seed: u64) -> client::RetryPolicy {
    client::RetryPolicy {
        retries: 16,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(250),
        reply_deadline: Duration::from_secs(10),
        jitter_seed: seed,
        throttle: None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let procs = flag("--procs", 8) as u32;
    let ops = flag("--ops", 48) as usize;
    let locals = flag("--locals", 8) as usize;
    let rounds = flag("--rounds", 3) as usize;
    let conflict = flag("--conflict-pct", 5) as f64 / 100.0;
    let seeds = flag("--seeds", 8).max(1);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());

    let params = SynthParams {
        nprocs: procs,
        rounds,
        ops_per_round: ops,
        locals_per_round: locals,
        ..Default::default()
    };
    let trace = synth_trace(&params, conflict);
    let batch = AnalysisSession::new().run(&trace).diagnostics;
    let wire: u64 =
        client::encode_stream(&client::flatten_events(&trace), 0, mcc_serve::CodecKind::Json, 1)
            .iter()
            .map(|f| f.len() as u64)
            .sum();

    println!(
        "Chaos recovery benchmark: {} events/session ({} wire bytes), {} seed(s) per fault",
        trace.total_events(),
        wire,
        seeds,
    );
    println!();
    println!(
        "{:>14} {:>6} {:>6} {:>9} {:>8} {:>8} {:>11} {:>11}",
        "fault", "runs", "fired", "attempts", "resumes", "resent", "mean (ms)", "max (ms)"
    );
    println!("{}", "-".repeat(80));

    let mut diverged = false;
    let mut rows: Vec<Row> = Vec::new();

    // Clean baseline: durable submit, no proxy in the path.
    {
        let server = Server::bind("127.0.0.1:0", chaos_cfg()).expect("bind");
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("serve loop"));
        let mut total = Duration::ZERO;
        let mut max = Duration::ZERO;
        let mut attempts = 0u64;
        for seed in 0..seeds {
            let t0 = Instant::now();
            let (report, stats) =
                client::submit_durable_tcp(&addr, &trace, &SessionOpts::default(), &policy(seed))
                    .expect("baseline submit");
            let wall = t0.elapsed();
            total += wall;
            max = max.max(wall);
            attempts += stats.attempts as u64;
            if report.findings != batch {
                eprintln!("DIVERGENCE: baseline durable session differs from batch");
                diverged = true;
            }
        }
        handle.shutdown();
        join.join().expect("server thread");
        rows.push(Row {
            kind: "none",
            runs: seeds,
            fired: 0,
            attempts,
            resumes: 0,
            events_resent: 0,
            mean_wall: total / seeds as u32,
            max_wall: max,
        });
    }

    for kind in FaultKind::ALL {
        let mut total = Duration::ZERO;
        let mut max = Duration::ZERO;
        let mut fired = 0u64;
        let mut attempts = 0u64;
        let mut resumes = 0u64;
        let mut resent = 0u64;
        for seed in 0..seeds {
            let server = Server::bind("127.0.0.1:0", chaos_cfg()).expect("bind");
            let addr = server.local_addr().to_string();
            let handle = server.handle();
            let join = std::thread::spawn(move || server.run().expect("serve loop"));
            let schedule = FaultSchedule::from_seed(seed, kind, wire);
            let mut proxy = ChaosProxy::start(&addr, schedule).expect("start proxy");

            let t0 = Instant::now();
            let (report, stats) = client::submit_durable_tcp(
                proxy.addr(),
                &trace,
                &SessionOpts::default(),
                &policy(seed),
            )
            .unwrap_or_else(|e| panic!("{}/seed{seed}: submit failed: {e}", kind.name()));
            let wall = t0.elapsed();

            total += wall;
            max = max.max(wall);
            fired += proxy.fired() as u64;
            attempts += stats.attempts as u64;
            resumes += stats.resumes as u64;
            resent += stats.events_resent;
            if report.findings != batch {
                eprintln!("DIVERGENCE: {}/seed{seed} differs from batch", kind.name());
                diverged = true;
            }
            proxy.stop();
            handle.shutdown();
            join.join().expect("server thread");
        }
        rows.push(Row {
            kind: kind.name(),
            runs: seeds,
            fired,
            attempts,
            resumes,
            events_resent: resent,
            mean_wall: total / seeds as u32,
            max_wall: max,
        });
    }

    for r in &rows {
        println!(
            "{:>14} {:>6} {:>6} {:>9} {:>8} {:>8} {:>11.2} {:>11.2}",
            r.kind,
            r.runs,
            r.fired,
            r.attempts,
            r.resumes,
            r.events_resent,
            r.mean_wall.as_secs_f64() * 1e3,
            r.max_wall.as_secs_f64() * 1e3,
        );
    }

    let baseline_ms = rows[0].mean_wall.as_secs_f64() * 1e3;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"chaos\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!(
        "  \"workload\": {{\"nprocs\": {procs}, \"rounds\": {rounds}, \"ops_per_round\": {ops}, \
         \"locals_per_round\": {locals}, \"conflict_fraction\": {conflict}, \
         \"events_per_session\": {}, \"wire_bytes\": {wire}, \"seeds\": {seeds}}},\n",
        trace.total_events()
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mean_ms = r.mean_wall.as_secs_f64() * 1e3;
        json.push_str(&format!(
            "    {{\"fault\": \"{}\", \"runs\": {}, \"fired\": {}, \"attempts\": {}, \
             \"resumes\": {}, \"events_resent\": {}, \"mean_wall_ms\": {:.3}, \
             \"max_wall_ms\": {:.3}, \"recovery_overhead_ms\": {:.3}}}{}\n",
            r.kind,
            r.runs,
            r.fired,
            r.attempts,
            r.resumes,
            r.events_resent,
            mean_ms,
            r.max_wall.as_secs_f64() * 1e3,
            (mean_ms - baseline_ms).max(0.0),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"diverged\": {diverged}\n"));
    json.push_str("}\n");
    std::fs::write(&out, &json).expect("write results");
    println!();
    println!("results written to {out}");

    if diverged {
        eprintln!("FAIL: at least one chaos run diverged from the batch report");
        std::process::exit(1);
    }
    println!("OK: every chaos run ended batch-identical.");
}

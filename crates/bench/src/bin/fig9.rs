//! Regenerates **Figure 9**: scalability of MC-Checker's Profiler on the
//! LU benchmark — overhead vs. process count under strong scaling.
//!
//! The paper observes the overhead falling from 147.2% at 8 processes to
//! 37.1% at 128 processes, because the fixed-size problem spreads over
//! more ranks and the per-rank rate of instrumented accesses drops
//! (Figure 10). Expected shape here: monotonically (modulo noise)
//! decreasing overhead as ranks grow.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin fig9 [-- --n 192 --reps 3]
//! ```

use mcc_apps::overhead::lu::{lu, LuParams};
use mcc_mpi_sim::{Instrument, SimConfig};
use mcc_profiler::profile_run;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u32| -> u32 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n = flag("--n", 192) as usize;
    let reps = flag("--reps", 3);

    println!(
        "Figure 9: Profiler overhead on LU under strong scaling (matrix {n}x{n}, best of {reps})"
    );
    println!();
    println!("{:>6} {:>12} {:>12} {:>10}", "procs", "native (ms)", "profiled", "overhead");
    println!("{}", "-".repeat(44));
    for procs in [8u32, 16, 32, 64, 128] {
        let params = LuParams { n };
        let r = profile_run(
            "LU",
            SimConfig::new(procs).with_seed(0xf199),
            Instrument::Relevant,
            reps,
            move |p| {
                lu(p, &params);
            },
        )
        .unwrap();
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>9.1}%",
            procs,
            r.native.as_secs_f64() * 1e3,
            r.profiled.as_secs_f64() * 1e3,
            r.overhead_pct
        );
    }
    println!();
    println!("Paper: 147.2% at 8 procs falling to 37.1% at 128 procs.");
}

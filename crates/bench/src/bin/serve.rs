//! Daemon ingest benchmark: events/s and peak resident buffer at
//! 1, 4, and 16 concurrent sessions against one in-process `mcc-serve`
//! server.
//!
//! Each session streams its own synthetic fig8-style trace over a real
//! TCP socket and must get back exactly the findings the batch
//! `AnalysisSession` produces for that trace (any divergence exits 1).
//! Results are written to `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin serve [-- --procs 8 --ops 48 \
//!     --locals 8 --rounds 3 --conflict-pct 5 --reps 3 --out BENCH_serve.json]
//! ```

use mcc_bench::synth::{synth_trace, SynthParams};
use mcc_core::AnalysisSession;
use mcc_serve::proto::SessionOpts;
use mcc_serve::{client, ServeConfig, Server};
use std::time::{Duration, Instant};

struct Row {
    sessions: usize,
    wall: Duration,
    events_total: usize,
    events_per_sec: f64,
    peak_buffered: usize,
    regions_flushed: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let procs = flag("--procs", 8) as u32;
    let ops = flag("--ops", 48) as usize;
    let locals = flag("--locals", 8) as usize;
    let rounds = flag("--rounds", 3) as usize;
    let conflict = flag("--conflict-pct", 5) as f64 / 100.0;
    let reps = flag("--reps", 3).max(1) as usize;
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let params = SynthParams {
        nprocs: procs,
        rounds,
        ops_per_round: ops,
        locals_per_round: locals,
        ..Default::default()
    };
    let trace = synth_trace(&params, conflict);
    let batch = AnalysisSession::new().run(&trace).diagnostics;

    let cfg = ServeConfig::default();
    let obs = cfg.recorder.clone();
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("serve loop"));

    println!(
        "Daemon ingest benchmark: {} events/session, {} regions, server at {addr} (best of {reps})",
        trace.total_events(),
        rounds,
    );
    println!();
    println!(
        "{:>9} {:>12} {:>14} {:>13} {:>10}",
        "Sessions", "wall (ms)", "events/s", "peak buffer", "regions"
    );
    println!("{}", "-".repeat(62));

    let mut rows: Vec<Row> = Vec::new();
    let mut diverged = false;
    for sessions in [1usize, 4, 16] {
        let mut best: Option<Row> = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let workers: Vec<_> = (0..sessions)
                .map(|_| {
                    let addr = addr.clone();
                    let trace = trace.clone();
                    std::thread::spawn(move || {
                        client::submit_tcp(&addr, &trace, &SessionOpts::default()).expect("submit")
                    })
                })
                .collect();
            let reports: Vec<_> = workers.into_iter().map(|w| w.join().expect("client")).collect();
            let wall = t0.elapsed();
            for r in &reports {
                if r.findings != batch {
                    eprintln!(
                        "DIVERGENCE: a streamed session reported {} finding(s), batch has {}",
                        r.findings.len(),
                        batch.len()
                    );
                    diverged = true;
                }
            }
            let events_total = trace.total_events() * sessions;
            let row = Row {
                sessions,
                wall,
                events_total,
                events_per_sec: events_total as f64 / wall.as_secs_f64(),
                peak_buffered: reports.iter().map(|r| r.peak_buffered).max().unwrap_or(0),
                regions_flushed: reports.iter().map(|r| r.regions_flushed).max().unwrap_or(0),
            };
            if best.as_ref().is_none_or(|b| row.wall < b.wall) {
                best = Some(row);
            }
        }
        let row = best.expect("at least one rep");
        println!(
            "{:>9} {:>12.2} {:>14.0} {:>13} {:>10}",
            row.sessions,
            row.wall.as_secs_f64() * 1e3,
            row.events_per_sec,
            row.peak_buffered,
            row.regions_flushed
        );
        rows.push(row);
    }

    handle.shutdown();
    server_thread.join().expect("server thread");

    println!();
    println!("Phase spans (daemon side, all sessions and reps):");
    println!("{:<22} {:>6} {:>12} {:>12}", "span", "count", "total (ms)", "max (ms)");
    for agg in obs.span_summary() {
        println!(
            "{:<22} {:>6} {:>12.2} {:>12.2}",
            agg.name,
            agg.count,
            agg.total_us as f64 / 1e3,
            agg.max_us as f64 / 1e3
        );
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!(
        "  \"workload\": {{\"nprocs\": {procs}, \"rounds\": {rounds}, \"ops_per_round\": {ops}, \
         \"locals_per_round\": {locals}, \"conflict_fraction\": {conflict}, \
         \"events_per_session\": {}}},\n",
        trace.total_events()
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sessions\": {}, \"wall_ms\": {:.3}, \"events_total\": {}, \
             \"events_per_sec\": {:.0}, \"peak_buffered\": {}, \"regions_flushed\": {}}}{}\n",
            r.sessions,
            r.wall.as_secs_f64() * 1e3,
            r.events_total,
            r.events_per_sec,
            r.peak_buffered,
            r.regions_flushed,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(&format!("  \"reports_identical\": {}\n", !diverged));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write benchmark output");
    println!();
    println!("wrote {out}");

    if diverged {
        std::process::exit(1);
    }
}

//! Daemon ingest benchmark: events/s, bytes/s, and peak resident buffer
//! at 1, 4, and 16 concurrent sessions against one in-process
//! `mcc-serve` server.
//!
//! Each session streams its own synthetic fig8-style trace over a real
//! TCP socket and must get back exactly the findings the batch
//! `AnalysisSession` produces for that trace (any divergence exits 1).
//! The event stream uses the negotiated codec (`--codec`, default
//! binary with 256-event batches); when binary is measured, one extra
//! 16-session rep runs with plain per-event JSON so the two wire
//! formats can be compared on the same workload. Per-layer costs are
//! split client-side (encode vs. socket time, from `SubmitInfo`) and
//! daemon-side (phase spans). Results go to `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin serve [-- --procs 8 --ops 12 \
//!     --locals 80 --rounds 16 --conflict-pct 2 --reps 3 \
//!     --codec binary --batch-size 256 --out BENCH_serve.json]
//! ```

use mcc_bench::synth::{synth_trace, SynthParams};
use mcc_core::AnalysisSession;
use mcc_serve::client::{SubmitCfg, SubmitInfo};
use mcc_serve::proto::SessionOpts;
use mcc_serve::{client, CodecKind, ServeConfig, Server, SessionReport};
use std::time::{Duration, Instant};

struct Row {
    sessions: usize,
    wall: Duration,
    events_total: usize,
    events_per_sec: f64,
    bytes_total: u64,
    bytes_per_sec: f64,
    /// Client-side serialization time, summed over sessions.
    encode: Duration,
    /// Client-side socket write time, summed over sessions.
    io: Duration,
    codec: CodecKind,
    peak_buffered: usize,
    regions_flushed: usize,
}

/// One timed rep: `sessions` concurrent submitters against `addr`.
fn run_rep(
    addr: &str,
    trace: &mcc_types::Trace,
    cfg: &SubmitCfg,
    sessions: usize,
) -> (Duration, Vec<(SessionReport, SubmitInfo)>) {
    let t0 = Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|_| {
            let addr = addr.to_string();
            let trace = trace.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                client::submit_tcp_cfg(&addr, &trace, &SessionOpts::default(), &cfg)
                    .expect("submit")
            })
        })
        .collect();
    let results: Vec<_> = workers.into_iter().map(|w| w.join().expect("client")).collect();
    (t0.elapsed(), results)
}

fn make_row(
    sessions: usize,
    wall: Duration,
    events_per_session: usize,
    results: &[(SessionReport, SubmitInfo)],
) -> Row {
    let events_total = events_per_session * sessions;
    let bytes_total: u64 = results.iter().map(|(_, i)| i.bytes_sent).sum();
    Row {
        sessions,
        wall,
        events_total,
        events_per_sec: events_total as f64 / wall.as_secs_f64(),
        bytes_total,
        bytes_per_sec: bytes_total as f64 / wall.as_secs_f64(),
        encode: results.iter().map(|(_, i)| i.encode).sum(),
        io: results.iter().map(|(_, i)| i.io).sum(),
        codec: results.first().map(|(_, i)| i.codec).unwrap_or_default(),
        peak_buffered: results.iter().map(|(r, _)| r.peak_buffered).max().unwrap_or(0),
        regions_flushed: results.iter().map(|(r, _)| r.regions_flushed).max().unwrap_or(0),
    }
}

fn print_row(r: &Row) {
    println!(
        "{:>9} {:>12.2} {:>14.0} {:>12.1} {:>11.2} {:>11.2} {:>9} {:>8}",
        r.sessions,
        r.wall.as_secs_f64() * 1e3,
        r.events_per_sec,
        r.bytes_per_sec / 1e6,
        r.encode.as_secs_f64() * 1e3,
        r.io.as_secs_f64() * 1e3,
        r.peak_buffered,
        r.regions_flushed
    );
}

fn row_json(r: &Row) -> String {
    format!(
        "{{\"sessions\": {}, \"wall_ms\": {:.3}, \"events_total\": {}, \
         \"events_per_sec\": {:.0}, \"bytes_total\": {}, \"bytes_per_sec\": {:.0}, \
         \"client_encode_ms\": {:.3}, \"client_io_ms\": {:.3}, \"codec\": \"{}\", \
         \"peak_buffered\": {}, \"regions_flushed\": {}}}",
        r.sessions,
        r.wall.as_secs_f64() * 1e3,
        r.events_total,
        r.events_per_sec,
        r.bytes_total,
        r.bytes_per_sec,
        r.encode.as_secs_f64() * 1e3,
        r.io.as_secs_f64() * 1e3,
        r.codec,
        r.peak_buffered,
        r.regions_flushed
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let procs = flag("--procs", 8) as u32;
    let ops = flag("--ops", 12) as usize;
    let locals = flag("--locals", 80) as usize;
    let rounds = flag("--rounds", 16) as usize;
    let conflict = flag("--conflict-pct", 2) as f64 / 100.0;
    let reps = flag("--reps", 3).max(1) as usize;
    let batch_size = flag("--batch-size", 256).max(1) as usize;
    let codec = match args
        .iter()
        .position(|a| a == "--codec")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("json") => CodecKind::Json,
        Some("binary") | None => CodecKind::Binary,
        Some(other) => {
            eprintln!("--codec expects json|binary, got `{other}`");
            std::process::exit(2);
        }
    };
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let params = SynthParams {
        nprocs: procs,
        rounds,
        ops_per_round: ops,
        locals_per_round: locals,
        ..Default::default()
    };
    let trace = synth_trace(&params, conflict);
    let batch = AnalysisSession::new().run(&trace).diagnostics;

    let cfg = ServeConfig::default();
    let obs = cfg.recorder.clone();
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("serve loop"));

    let submit_cfg = SubmitCfg { batch_size, prefer_binary: matches!(codec, CodecKind::Binary) };

    println!(
        "Daemon ingest benchmark: {} events/session, {} regions, {} batch finding(s), \
         {codec} codec (batch {batch_size}), server at {addr} (best of {reps})",
        trace.total_events(),
        rounds,
        batch.len(),
    );
    println!();
    println!(
        "{:>9} {:>12} {:>14} {:>12} {:>11} {:>11} {:>9} {:>8}",
        "Sessions", "wall (ms)", "events/s", "MB/s", "enc (ms)", "io (ms)", "peak buf", "regions"
    );
    println!("{}", "-".repeat(93));

    let mut rows: Vec<Row> = Vec::new();
    let mut diverged = false;
    let check_reports = |results: &[(SessionReport, SubmitInfo)]| {
        for (r, _) in results {
            if r.findings != batch {
                eprintln!(
                    "DIVERGENCE: a streamed session reported {} finding(s), batch has {}",
                    r.findings.len(),
                    batch.len()
                );
                return true;
            }
        }
        false
    };
    for sessions in [1usize, 4, 16] {
        let mut best: Option<Row> = None;
        for _ in 0..reps {
            let (wall, results) = run_rep(&addr, &trace, &submit_cfg, sessions);
            diverged |= check_reports(&results);
            let row = make_row(sessions, wall, trace.total_events(), &results);
            if best.as_ref().is_none_or(|b| row.wall < b.wall) {
                best = Some(row);
            }
        }
        let row = best.expect("at least one rep");
        print_row(&row);
        rows.push(row);
    }

    // When the main measurement is binary, time the same 16-session
    // workload once over per-event JSON frames: the old wire format, on
    // the same server, for an apples-to-apples codec comparison.
    let json_row = if matches!(codec, CodecKind::Binary) {
        let json_cfg = SubmitCfg { batch_size: 1, prefer_binary: false };
        let (wall, results) = run_rep(&addr, &trace, &json_cfg, 16);
        diverged |= check_reports(&results);
        let row = make_row(16, wall, trace.total_events(), &results);
        print_row(&row);
        println!("{:>9}   (json per-event comparison row)", "");
        Some(row)
    } else {
        None
    };

    handle.shutdown();
    server_thread.join().expect("server thread");

    // Daemon-side latency histograms, over every session and rep: how
    // long ingested events waited for their ack, and how long the first
    // finding of a session took from its first event.
    let snap = obs.snapshot();
    let latency = |family: &str| -> (u64, u64, u64) {
        snap.hists.get(family).map_or((0, 0, 0), |h| (h.count, h.quantile(0.50), h.quantile(0.99)))
    };
    let (ack_n, ack_p50, ack_p99) = latency(mcc_obs::names::INGEST_ACK_LATENCY_US);
    let (ff_n, ff_p50, ff_p99) = latency(mcc_obs::names::FIRST_FINDING_LATENCY_US);
    println!();
    println!("Latency histograms (daemon side, µs upper bounds):");
    println!("{:<22} {:>8} {:>10} {:>10}", "family", "count", "p50 (µs)", "p99 (µs)");
    println!("{:<22} {:>8} {:>10} {:>10}", "ingest→ack", ack_n, ack_p50, ack_p99);
    println!("{:<22} {:>8} {:>10} {:>10}", "first finding", ff_n, ff_p50, ff_p99);

    println!();
    println!("Phase spans (daemon side, all sessions and reps):");
    println!("{:<22} {:>6} {:>12} {:>12}", "span", "count", "total (ms)", "max (ms)");
    let spans = obs.span_summary();
    for agg in &spans {
        println!(
            "{:<22} {:>6} {:>12.2} {:>12.2}",
            agg.name,
            agg.count,
            agg.total_us as f64 / 1e3,
            agg.max_us as f64 / 1e3
        );
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve\",\n");
    json.push_str("  \"schema_version\": 3,\n");
    json.push_str(&format!("  \"codec\": \"{codec}\",\n"));
    json.push_str(&format!("  \"batch_size\": {batch_size},\n"));
    json.push_str(&format!(
        "  \"workload\": {{\"nprocs\": {procs}, \"rounds\": {rounds}, \"ops_per_round\": {ops}, \
         \"locals_per_round\": {locals}, \"conflict_fraction\": {conflict}, \
         \"events_per_session\": {}, \"findings_per_session\": {}}},\n",
        trace.total_events(),
        batch.len()
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {}{}\n",
            row_json(r),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    if let Some(r) = &json_row {
        json.push_str(&format!("  \"json_comparison\": {},\n", row_json(r)));
    }
    json.push_str("  \"daemon_spans_ms\": {");
    for (i, agg) in spans.iter().enumerate() {
        json.push_str(&format!(
            "{}\"{}\": {:.3}",
            if i == 0 { "" } else { ", " },
            agg.name,
            agg.total_us as f64 / 1e3
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "  \"latency_us\": {{\"ingest_ack\": {{\"count\": {ack_n}, \"p50\": {ack_p50}, \
         \"p99\": {ack_p99}}}, \"first_finding\": {{\"count\": {ff_n}, \"p50\": {ff_p50}, \
         \"p99\": {ff_p99}}}}},\n"
    ));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(&format!("  \"reports_identical\": {}\n", !diverged));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write benchmark output");
    println!();
    println!("wrote {out}");

    if diverged {
        std::process::exit(1);
    }
}

//! Rank-failure recovery benchmark: what a survivable failure costs the
//! checker, and what a daemon crash costs a recovered session.
//!
//! For every recovery-gallery workload the bench measures two latencies:
//! the failure-aware *analysis* itself (quarantine + ghost
//! synchronization + recovery rules, batch, in process), and the
//! *daemon restart* path — a durable session streams half its events,
//! the daemon vanishes mid-recovery, a second daemon replays the
//! journal, and the client resumes and finishes. The restart run also
//! counts what had to be re-executed: events past the acknowledged
//! prefix, and the epochs they close. Any report that is not
//! byte-identical to the uninterrupted run (and to batch) exits 1.
//! Results go to `BENCH_recovery.json`.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin recovery [-- --reps 3 \
//!     --out BENCH_recovery.json]
//! ```

use mcc_apps::bugs::{recovery_gallery, trace_under_faults};
use mcc_core::report::Confidence;
use mcc_core::AnalysisSession;
use mcc_serve::journal::FsyncPolicy;
use mcc_serve::proto::{write_frame_with, Frame, FrameReader, ProtoError, SessionOpts};
use mcc_serve::CodecKind;
use mcc_serve::{client, ServeConfig, Server};
use mcc_types::{EventKind, Trace};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

struct Row {
    name: &'static str,
    nprocs: u32,
    events: usize,
    failed_rank: u32,
    findings: usize,
    analysis_ms: f64,
    replay_ms: f64,
    resume_ms: f64,
    reexecuted_events: u64,
    reexecuted_epochs: u64,
}

fn cfg(dir: &Path, recover: bool) -> ServeConfig {
    ServeConfig {
        tick: Duration::from_millis(20),
        // the gallery traces are small; ack every other event so a
        // provably journaled prefix exists before the daemon dies
        ack_interval: 2,
        resume_grace: Duration::from_secs(60),
        journal_dir: Some(dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        recover,
        ..ServeConfig::default()
    }
}

fn read_frame<R: std::io::Read>(reader: &mut FrameReader<R>) -> Option<Frame> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match reader.next_frame() {
            Ok(f) => return f,
            Err(ProtoError::Idle) => assert!(Instant::now() < deadline, "no frame within 10s"),
            Err(e) => panic!("protocol error: {e}"),
        }
    }
}

/// True for the synchronization calls that close an access/exposure
/// epoch — re-sending one of these makes the daemon re-execute that
/// epoch's analysis.
fn closes_epoch(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::Fence { .. }
            | EventKind::Unlock { .. }
            | EventKind::UnlockAll { .. }
            | EventKind::Complete { .. }
            | EventKind::WaitWin { .. }
            | EventKind::WinFree { .. }
    )
}

/// The event kinds in the wire order `client::encode_stream` uses
/// (round-robin across ranks), so a wire sequence number maps back to
/// its event.
fn wire_order(trace: &Trace) -> Vec<EventKind> {
    let mut out = Vec::with_capacity(trace.total_events());
    let mut idx = vec![0usize; trace.nprocs()];
    let mut remaining = trace.total_events();
    while remaining > 0 {
        #[allow(clippy::needless_range_loop)] // r doubles as the rank id
        for r in 0..trace.nprocs() {
            if idx[r] < trace.procs[r].events.len() {
                out.push(trace.procs[r].events[idx[r]].kind.clone());
                idx[r] += 1;
                remaining -= 1;
            }
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(3)
        .max(1);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_recovery.json".to_string());

    println!("Rank-failure recovery benchmark: 4 gallery workloads, best of {reps} rep(s)");
    println!();
    println!(
        "{:>20} {:>6} {:>7} {:>9} {:>11} {:>10} {:>10} {:>8} {:>7}",
        "workload", "procs", "events", "findings", "analysis", "replay", "resume", "re-ev", "re-ep"
    );
    println!("{}", "-".repeat(96));

    let mut diverged = false;
    let mut rows: Vec<Row> = Vec::new();

    for (spec, faults, body) in recovery_gallery::gallery() {
        // Rank deaths are the point of these runs; keep their panic
        // backtraces out of the bench output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (trace, error) = trace_under_faults(spec.nprocs, 11, faults(), body);
        std::panic::set_hook(prev);
        assert!(error.is_none(), "{}: survivable failure is not an error", spec.name);

        // Failure-aware batch analysis latency (best of reps).
        let mut analysis = Duration::MAX;
        let mut batch = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let report = AnalysisSession::new().run(&trace);
            analysis = analysis.min(t0.elapsed());
            batch = Some(report);
        }
        let batch = batch.unwrap();
        assert_eq!(batch.confidence, Confidence::Recovered, "{}", spec.name);

        // Uninterrupted durable run: the byte-identity baseline.
        let dir0 = tmpdir(&format!("bench-rec-base-{}", spec.name));
        let server = Server::bind("127.0.0.1:0", cfg(&dir0, false)).expect("bind");
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("serve loop"));
        let policy = client::RetryPolicy {
            retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            reply_deadline: Duration::from_secs(10),
            jitter_seed: 0,
            throttle: None,
        };
        let (uninterrupted, _stats) = client::submit_durable_tcp(
            &addr,
            &trace,
            &SessionOpts { durable: true, ..SessionOpts::default() },
            &policy,
        )
        .expect("uninterrupted submit");
        handle.shutdown();
        join.join().expect("server thread");
        let _ = std::fs::remove_dir_all(&dir0);

        // Crash mid-recovery: daemon A journals half the stream and
        // dies; daemon B replays the journal and finishes the session.
        let encoded = client::encode_stream(&client::flatten_events(&trace), 0, CodecKind::Json, 1);
        let half = encoded.len() / 2;
        let dir = tmpdir(&format!("bench-rec-{}", spec.name));

        let server_a = Server::bind("127.0.0.1:0", cfg(&dir, false)).expect("bind A");
        let addr_a = server_a.local_addr().to_string();
        let registry_a = server_a.registry();
        let handle_a = server_a.handle();
        let join_a = std::thread::spawn(move || server_a.run().expect("serve loop A"));
        let session_id;
        {
            let stream = TcpStream::connect(&addr_a).expect("connect A");
            stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
            let mut reader = FrameReader::new(stream);
            let opts = SessionOpts { durable: true, ..SessionOpts::default() };
            write_frame_with(
                reader.get_mut(),
                &Frame::Hello { version: mcc_serve::PROTOCOL_VERSION, nprocs: spec.nprocs, opts },
                CodecKind::Json,
            )
            .unwrap();
            session_id = match read_frame(&mut reader) {
                Some(Frame::Welcome { session, .. }) => session,
                other => panic!("expected Welcome, got {other:?}"),
            };
            use std::io::Write;
            for bytes in &encoded[..half] {
                reader.get_mut().write_all(bytes).unwrap();
            }
            reader.get_mut().flush().unwrap();
            match read_frame(&mut reader) {
                Some(Frame::Ack { through }) => assert!(through > 0, "no journaled prefix"),
                other => panic!("expected Ack, got {other:?}"),
            }
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while registry_a.parked_count() != 1 {
            assert!(Instant::now() < deadline, "{}: session must park", spec.name);
            std::thread::sleep(Duration::from_millis(10));
        }
        handle_a.shutdown();
        join_a.join().expect("server A thread");

        // Replay latency: bind-with-recover scans and replays journals.
        let t0 = Instant::now();
        let server_b = Server::bind("127.0.0.1:0", cfg(&dir, true)).expect("bind B");
        let replay = t0.elapsed();
        assert_eq!(server_b.registry().parked_count(), 1, "{}: recovery parks", spec.name);
        let addr_b = server_b.local_addr().to_string();
        let handle_b = server_b.handle();
        let join_b = std::thread::spawn(move || server_b.run().expect("serve loop B"));

        // Resume latency: reconnect to final report.
        let t1 = Instant::now();
        let stream = TcpStream::connect(&addr_b).expect("connect B");
        stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let mut reader = FrameReader::new(stream);
        write_frame_with(
            reader.get_mut(),
            &Frame::Resume { session: session_id, from_seq: 0 },
            CodecKind::Json,
        )
        .unwrap();
        assert!(matches!(read_frame(&mut reader), Some(Frame::Welcome { .. })));
        let through = match read_frame(&mut reader) {
            Some(Frame::Ack { through }) => through,
            other => panic!("expected resume Ack, got {other:?}"),
        };
        {
            use std::io::Write;
            for bytes in &encoded[through as usize..] {
                reader.get_mut().write_all(bytes).unwrap();
            }
            reader.get_mut().flush().unwrap();
        }
        write_frame_with(reader.get_mut(), &Frame::Finish, CodecKind::Json).unwrap();
        let report = loop {
            match read_frame(&mut reader) {
                Some(Frame::Report { json }) => {
                    break mcc_serve::SessionReport::from_json(&json).expect("report json")
                }
                Some(Frame::Ack { .. }) => {}
                Some(other) => panic!("unexpected frame {other:?}"),
                None => panic!("daemon B closed before the report"),
            }
        };
        let resume = t1.elapsed();
        handle_b.shutdown();
        join_b.join().expect("server B thread");
        let _ = std::fs::remove_dir_all(&dir);

        if report.to_json() != uninterrupted.to_json() {
            eprintln!("DIVERGENCE: {}: restart report differs from uninterrupted", spec.name);
            diverged = true;
        }
        if report.findings != batch.diagnostics {
            eprintln!("DIVERGENCE: {}: restart report differs from batch", spec.name);
            diverged = true;
        }

        let order = wire_order(&trace);
        let resent = &order[through as usize..];
        let row = Row {
            name: spec.name,
            nprocs: spec.nprocs,
            events: trace.total_events(),
            failed_rank: spec.failed_rank,
            findings: batch.diagnostics.len(),
            analysis_ms: analysis.as_secs_f64() * 1e3,
            replay_ms: replay.as_secs_f64() * 1e3,
            resume_ms: resume.as_secs_f64() * 1e3,
            reexecuted_events: resent.len() as u64,
            reexecuted_epochs: resent.iter().filter(|k| closes_epoch(k)).count() as u64,
        };
        println!(
            "{:>20} {:>6} {:>7} {:>9} {:>9.2}ms {:>8.2}ms {:>8.2}ms {:>8} {:>7}",
            row.name,
            row.nprocs,
            row.events,
            row.findings,
            row.analysis_ms,
            row.replay_ms,
            row.resume_ms,
            row.reexecuted_events,
            row.reexecuted_epochs,
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"recovery\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"nprocs\": {}, \"events\": {}, \"failed_rank\": {}, \
             \"findings\": {}, \"analysis_ms\": {:.3}, \"journal_replay_ms\": {:.3}, \
             \"resume_to_report_ms\": {:.3}, \"recovery_latency_ms\": {:.3}, \
             \"reexecuted_events\": {}, \"reexecuted_epochs\": {}}}{}\n",
            r.name,
            r.nprocs,
            r.events,
            r.failed_rank,
            r.findings,
            r.analysis_ms,
            r.replay_ms,
            r.resume_ms,
            r.replay_ms + r.resume_ms,
            r.reexecuted_events,
            r.reexecuted_epochs,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"diverged\": {diverged}\n"));
    json.push_str("}\n");
    std::fs::write(&out, &json).expect("write results");
    println!();
    println!("results written to {out}");

    if diverged {
        eprintln!("FAIL: at least one recovered report diverged");
        std::process::exit(1);
    }
    println!("OK: every restart ended byte-identical to the uninterrupted run and to batch.");
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mcc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

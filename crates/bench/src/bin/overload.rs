//! Overload benchmark: a governed daemon under deliberate abuse.
//!
//! An in-process daemon runs with a hard memory ceiling while three
//! hostile actors — an event flooder, a slowloris, and a malformed
//! giant batch — share it with a fleet of well-behaved durable
//! sessions. The run records what the governor did (admissions, typed
//! `Busy` rejections, sheddings, throttle stalls), whether the daemon's
//! own accounting ever exceeded the ceiling, and whether any
//! well-behaved report diverged from the same submission against an
//! unloaded daemon. Divergence, a ceiling breach, or a shed
//! well-behaved session exits 1. Results go to `BENCH_overload.json`.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin overload [-- --ceiling-mb 64 \
//!     --sessions 14 --out BENCH_overload.json]
//! ```

use mcc_apps::bugs::{self, trace_of};
use mcc_serve::proto::{
    encode_frame_with, write_frame_with, EventBatch, Frame, FrameReader, SessionOpts,
    PROTOCOL_VERSION,
};
use mcc_serve::{client, CodecKind, Registry, ServeConfig, Server};
use mcc_types::{CommId, DatatypeId, EventKind, Rank, RmaKind, RmaOp, SourceLoc, Trace, WinId};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn policy() -> client::RetryPolicy {
    client::RetryPolicy {
        retries: 40,
        base_backoff: Duration::from_millis(25),
        max_backoff: Duration::from_millis(250),
        reply_deadline: Duration::from_secs(15),
        ..client::RetryPolicy::default()
    }
}

fn start_server(
    cfg: ServeConfig,
) -> (String, mcc_serve::ServerHandle, Arc<Registry>, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let registry = server.registry();
    let join = thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle, registry, join)
}

/// Opens a raw governance session, returning the reader and session id.
fn open_session(addr: &str) -> (FrameReader<TcpStream>, u64) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_millis(50))).expect("read timeout");
    let mut reader = FrameReader::new(stream);
    let opts = SessionOpts { governance: true, ..SessionOpts::default() };
    write_frame_with(
        reader.get_mut(),
        &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1, opts },
        CodecKind::Json,
    )
    .expect("hello");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match reader.next_frame() {
            Ok(Some(Frame::Welcome { session, .. })) => return (reader, session),
            Ok(Some(other)) => panic!("expected Welcome, got {other:?}"),
            Ok(None) => panic!("connection closed during handshake"),
            Err(mcc_serve::ProtoError::Idle) => assert!(Instant::now() < deadline, "no Welcome"),
            Err(e) => panic!("handshake error: {e}"),
        }
    }
}

/// Streams giant events as fast as the socket takes them, until the
/// daemon cuts the connection. Returns the flooder's session id.
fn flood(addr: &str) -> u64 {
    let (mut reader, id) = open_session(addr);
    let wc =
        EventKind::WinCreate { win: WinId(0), base: 0x1000, len: 1 << 30, comm: CommId::WORLD };
    if write_frame_with(
        reader.get_mut(),
        &Frame::Event { seq: 0, rank: 0, kind: wc, loc: SourceLoc::unknown() },
        CodecKind::Json,
    )
    .is_err()
    {
        return id;
    }
    let func = "f".repeat(8 << 10);
    for i in 0..20_000u64 {
        let kind = EventKind::Rma(RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(0),
            origin_addr: 0x4000_0000 + i * 8,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: i * 8,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        });
        let frame = Frame::Event {
            seq: 1 + i,
            rank: 0,
            kind,
            loc: SourceLoc::new("flood.c", i as u32 + 1, &func),
        };
        if write_frame_with(reader.get_mut(), &frame, CodecKind::Json).is_err() {
            break; // evicted: the daemon closed the socket on us
        }
    }
    id
}

/// A structurally hostile batch — a loc index pointing past a giant
/// location table — behind an intact checksum. The daemon must answer
/// with a typed `Error` and salvage, never ingest it.
fn malformed_batch(addr: &str) {
    let (mut reader, _) = open_session(addr);
    let locs: Vec<SourceLoc> =
        (0..512).map(|i| SourceLoc::new("giant.c", i + 1, "g".repeat(512))).collect();
    let batch = EventBatch {
        first_seq: 0,
        ranks: vec![0, 0],
        loc_idx: vec![0, 4096],
        kinds: vec![
            EventKind::Barrier { comm: CommId::WORLD },
            EventKind::Barrier { comm: CommId::WORLD },
        ],
        locs,
    };
    reader
        .get_mut()
        .write_all(&encode_frame_with(&Frame::Batch(batch), CodecKind::Json))
        .expect("send hostile batch");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match reader.next_frame() {
            Ok(Some(Frame::Error { .. })) | Ok(None) | Err(mcc_serve::ProtoError::Io(_)) => return,
            Ok(Some(_)) => {}
            Err(mcc_serve::ProtoError::Idle) => {
                if Instant::now() >= deadline {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Resident set size in MiB, from `/proc/self/status` (0 where absent).
fn rss_mb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|kb| kb.parse::<u64>().ok()))
        })
        .map(|kb| kb / 1024)
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let ceiling = (flag("--ceiling-mb", 64) as usize) << 20;
    let sessions = flag("--sessions", 14) as usize;
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_overload.json".to_string());

    type BugBody = fn(&mut mcc_mpi_sim::Proc);
    let cases: [(&'static str, u32, BugBody); 7] = [
        ("emulate", 4, bugs::emulate::buggy),
        ("emulate-fixed", 4, bugs::emulate::fixed),
        ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
        ("jacobi-fixed", 4, bugs::jacobi::fixed),
        ("adlb", 4, bugs::adlb::buggy),
        ("pingpong", 2, bugs::pingpong::buggy),
        ("emulate-2", 4, bugs::emulate::buggy),
    ];
    let traces: Vec<(&'static str, Trace)> = (0..sessions)
        .map(|i| {
            let (name, nprocs, body) = cases[i % cases.len()];
            (name, trace_of(nprocs, 0xbeef + i as u64, body))
        })
        .collect();

    println!(
        "Overload benchmark: {} well-behaved session(s), {} MiB ceiling, 3 hostile actor(s)",
        sessions,
        ceiling >> 20
    );

    // Unloaded baseline: same traces, same client path, no hostiles.
    let t0 = Instant::now();
    let baseline_cfg = ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (addr, handle, _registry, join) = start_server(baseline_cfg);
    let baseline: Vec<String> = traces
        .iter()
        .map(|(name, trace)| {
            let (report, _) =
                client::submit_durable_tcp(&addr, trace, &SessionOpts::default(), &policy())
                    .unwrap_or_else(|e| panic!("{name}: baseline submit failed: {e}"));
            report.to_json()
        })
        .collect();
    handle.shutdown();
    join.join().expect("baseline server");
    let baseline_wall = t0.elapsed();

    // The governed run: hard ceiling, fast janitor, short idle so the
    // slowloris dies promptly.
    let t0 = Instant::now();
    let cfg = ServeConfig {
        tick: Duration::from_millis(5),
        idle_timeout: Duration::from_millis(600),
        mem_ceiling: ceiling,
        ..ServeConfig::default()
    };
    let (addr, handle, registry, join) = start_server(cfg);

    // Slowloris: one event, then silence; held open for the whole run.
    let (mut slowloris, slowloris_id) = open_session(&addr);
    write_frame_with(
        slowloris.get_mut(),
        &Frame::Event {
            seq: 0,
            rank: 0,
            kind: EventKind::Barrier { comm: CommId::WORLD },
            loc: SourceLoc::unknown(),
        },
        CodecKind::Json,
    )
    .expect("slowloris event");

    let flooder = {
        let addr = addr.clone();
        thread::spawn(move || flood(&addr))
    };
    let batcher = {
        let addr = addr.clone();
        thread::spawn(move || malformed_batch(&addr))
    };

    let workers: Vec<_> = traces
        .iter()
        .map(|(name, trace)| {
            let addr = addr.clone();
            let trace = trace.clone();
            let name = *name;
            thread::spawn(move || {
                let (report, _) =
                    client::submit_durable_tcp(&addr, &trace, &SessionOpts::default(), &policy())
                        .unwrap_or_else(|e| panic!("{name}: submit under load failed: {e}"));
                report.to_json()
            })
        })
        .collect();

    let flooder_id = flooder.join().expect("flooder thread");
    batcher.join().expect("batcher thread");
    let under_load: Vec<String> = workers.into_iter().map(|w| w.join().expect("worker")).collect();
    drop(slowloris);

    // Let the janitor settle the books before reading them.
    let settle = Instant::now() + Duration::from_secs(10);
    while Instant::now() < settle {
        let f = registry.fleet();
        if f.active == 0 && f.parked == 0 && !registry.shed_log().is_empty() {
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    let fleet = registry.fleet();
    let shed = registry.shed_log();
    handle.shutdown();
    join.join().expect("governed server");
    let loaded_wall = t0.elapsed();

    let divergent = traces
        .iter()
        .zip(under_load.iter().zip(baseline.iter()))
        .filter(|(t, (got, want))| {
            if got != want {
                eprintln!("DIVERGENCE: {} under load differs from unloaded baseline", t.0);
                true
            } else {
                false
            }
        })
        .count();
    let ceiling_held = fleet.peak_accounted_bytes <= ceiling as u64;
    let shed_wrong: Vec<u64> =
        shed.iter().copied().filter(|&id| id != flooder_id || id == slowloris_id).collect();

    println!();
    println!(
        "{:>14} {:>10} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "admitted", "rejected", "shed", "throttled", "divergent", "peak (MiB)", "rss (MiB)"
    );
    println!(
        "{:>14} {:>10} {:>8} {:>10} {:>10} {:>12} {:>10}",
        fleet.admitted,
        fleet.rejected,
        fleet.shed,
        fleet.throttled,
        divergent,
        fleet.peak_accounted_bytes >> 20,
        rss_mb(),
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"overload\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!(
        "  \"workload\": {{\"sessions\": {sessions}, \"hostiles\": 3, \
         \"ceiling_bytes\": {ceiling}}},\n"
    ));
    json.push_str(&format!(
        "  \"governor\": {{\"admitted\": {}, \"rejected\": {}, \"shed\": {}, \
         \"throttled\": {}, \"peak_accounted_bytes\": {}, \"shed_log\": {:?}}},\n",
        fleet.admitted,
        fleet.rejected,
        fleet.shed,
        fleet.throttled,
        fleet.peak_accounted_bytes,
        shed,
    ));
    json.push_str(&format!(
        "  \"walls_ms\": {{\"baseline\": {:.1}, \"loaded\": {:.1}}},\n",
        baseline_wall.as_secs_f64() * 1e3,
        loaded_wall.as_secs_f64() * 1e3,
    ));
    json.push_str(&format!("  \"rss_mb\": {},\n", rss_mb()));
    json.push_str(&format!("  \"ceiling_held\": {ceiling_held},\n"));
    json.push_str(&format!("  \"divergent\": {divergent}\n"));
    json.push_str("}\n");
    std::fs::write(&out, &json).expect("write results");
    println!();
    println!("results written to {out}");

    let mut failed = false;
    if divergent > 0 {
        eprintln!("FAIL: {divergent} well-behaved report(s) diverged under load");
        failed = true;
    }
    if !ceiling_held {
        eprintln!(
            "FAIL: accounting peaked at {} bytes over the {} ceiling",
            fleet.peak_accounted_bytes, ceiling
        );
        failed = true;
    }
    if !shed_wrong.is_empty() {
        eprintln!("FAIL: shed sessions other than the flooder: {shed_wrong:?}");
        failed = true;
    }
    if shed.is_empty() {
        eprintln!("FAIL: the flooder was never shed");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: flooder shed, ceiling held, every well-behaved report byte-identical under load."
    );
}

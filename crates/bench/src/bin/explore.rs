//! Schedule-exploration benchmark: `mcc explore`'s DFS with sleep-set
//! pruning and fingerprint dedup over the gallery cases, reporting
//! schedules/s and how much of the naive enumeration each reduction
//! saved. Results go to `BENCH_explore.json`.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin explore [-- --reps 3 --out BENCH_explore.json]
//! ```
//!
//! This is also a correctness gate: a known-buggy case whose exploration
//! covers its schedule space without surfacing the bug is a hard failure
//! (exit 1) — partial-order reduction must never prune the witness.

use mcc_explore::Explorer;
use mcc_mpi_sim::Proc;
use std::time::{Duration, Instant};

struct Case {
    name: &'static str,
    nprocs: u32,
    buggy: bool,
    body: fn(&mut Proc),
}

struct Row {
    name: &'static str,
    buggy: bool,
    wall: Duration,
    explored: u64,
    deduped: u64,
    pruned: u64,
    naive: u64,
    choice_points: u64,
    first_buggy: Option<u64>,
    exhausted: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let reps = flag("--reps", 3).max(1) as usize;
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_explore.json".to_string());

    use mcc_apps::bugs;
    let cases = [
        Case { name: "fig2a", nprocs: 2, buggy: true, body: bugs::archetypes::fig2a },
        Case { name: "ping-pong", nprocs: 2, buggy: true, body: bugs::pingpong::buggy },
        Case { name: "ping-pong-fixed", nprocs: 2, buggy: false, body: bugs::pingpong::fixed },
        Case { name: "emulate", nprocs: 2, buggy: true, body: bugs::emulate::buggy },
        Case { name: "emulate-fixed", nprocs: 2, buggy: false, body: bugs::emulate::fixed },
    ];

    println!("Schedule-exploration benchmark (best of {reps})");
    println!();
    println!(
        "{:<16} {:>10} {:>8} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "Case", "wall (ms)", "explored", "deduped", "pruned", "naive", "schedules/s", "bug at"
    );
    println!("{}", "-".repeat(90));

    let mut rows: Vec<Row> = Vec::new();
    let mut missed = false;
    for case in &cases {
        let explorer = Explorer::new(case.nprocs);
        let mut wall = Duration::MAX;
        let mut report = explorer.run(case.body);
        for _ in 1..reps {
            let t0 = Instant::now();
            report = explorer.run(case.body);
            wall = wall.min(t0.elapsed());
        }
        if wall == Duration::MAX {
            // reps == 1: the single warm-up run is the measurement.
            let t0 = Instant::now();
            report = explorer.run(case.body);
            wall = t0.elapsed();
        }
        let rate = report.schedules_explored as f64 / wall.as_secs_f64();
        println!(
            "{:<16} {:>10.2} {:>8} {:>8} {:>8} {:>10} {:>12.0} {:>10}",
            case.name,
            wall.as_secs_f64() * 1e3,
            report.schedules_explored,
            report.deduped,
            report.pruned,
            report.naive_schedules,
            rate,
            report.first_buggy.map(|i| i.to_string()).unwrap_or_else(|| "-".into()),
        );
        if case.buggy && report.first_buggy.is_none() {
            eprintln!(
                "MISSED: {} is a known-buggy case but exploration found no buggy schedule \
                 (exhausted: {})",
                case.name, report.exhausted
            );
            missed = true;
        }
        if !case.buggy && report.has_errors() {
            eprintln!("FALSE POSITIVE: {} is fixed but exploration reported errors", case.name);
            missed = true;
        }
        rows.push(Row {
            name: case.name,
            buggy: case.buggy,
            wall,
            explored: report.schedules_explored,
            deduped: report.deduped,
            pruned: report.pruned,
            naive: report.naive_schedules,
            choice_points: report.choice_points,
            first_buggy: report.first_buggy,
            exhausted: report.exhausted,
        });
    }

    println!();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"explore\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let rate = r.explored as f64 / r.wall.as_secs_f64();
        // Fraction of the naive enumeration the reductions made
        // unnecessary: 0 when every naive schedule had to run.
        let reduction = 1.0 - r.explored as f64 / r.naive as f64;
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"known_buggy\": {}, \"wall_ms\": {:.3}, \
             \"schedules_explored\": {}, \"schedules_per_sec\": {:.1}, \
             \"deduped\": {}, \"pruned\": {}, \"naive_schedules\": {}, \
             \"choice_points\": {}, \"pruning_ratio\": {:.4}, \
             \"first_buggy\": {}, \"exhausted\": {}}}{}\n",
            r.name,
            r.buggy,
            r.wall.as_secs_f64() * 1e3,
            r.explored,
            rate,
            r.deduped,
            r.pruned,
            r.naive,
            r.choice_points,
            reduction,
            r.first_buggy.map(|i| i.to_string()).unwrap_or_else(|| "null".into()),
            r.exhausted,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"all_known_bugs_found\": {}\n", !missed));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");

    if missed {
        eprintln!("FAIL: exploration missed a known bug (or flagged a fixed case)");
        std::process::exit(1);
    }
}

//! Conflict-engine benchmark: naive all-pairs vs. the sharded
//! sort-and-sweep engine at 1/2/4 threads, on a fig8-style synthetic
//! workload whose concurrent regions hold ≥10³ accesses.
//!
//! Every configuration must produce a byte-identical `CheckReport` JSON
//! document; any divergence is a hard failure (exit 1). Timings are
//! written to `BENCH_engine.json`.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin engine [-- --procs 16 --ops 128 \
//!     --locals 16 --rounds 2 --conflict-pct 5 --reps 3 --out BENCH_engine.json]
//! ```
//!
//! Thread-scaling numbers are only meaningful on a multi-core host; the
//! report records `available_parallelism` so a 1-core CI box's flat
//! scaling is not mistaken for an engine regression.

use mcc_bench::synth::{synth_trace, SynthParams};
use mcc_core::{AnalysisSession, Engine};
use std::time::{Duration, Instant};

struct Row {
    engine: Engine,
    threads: usize,
    wall: Duration,
    detect: Duration,
    findings: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let procs = flag("--procs", 16) as u32;
    let ops = flag("--ops", 128) as usize;
    let locals = flag("--locals", 16) as usize;
    let rounds = flag("--rounds", 2) as usize;
    let conflict = flag("--conflict-pct", 5) as f64 / 100.0;
    let reps = flag("--reps", 3).max(1) as usize;
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let params = SynthParams {
        nprocs: procs,
        rounds,
        ops_per_round: ops,
        locals_per_round: locals,
        ..Default::default()
    };
    let trace = synth_trace(&params, conflict);
    let accesses_per_region = procs as usize * (ops + locals);
    println!(
        "Conflict-engine benchmark: {} events, {} regions, {} accesses/region (best of {reps})",
        trace.total_events(),
        rounds,
        accesses_per_region,
    );
    println!();
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>10}",
        "Engine", "Threads", "wall (ms)", "detect (ms)", "findings"
    );
    println!("{}", "-".repeat(56));

    let configs =
        [(Engine::Naive, 1usize), (Engine::Sweep, 1), (Engine::Sweep, 2), (Engine::Sweep, 4)];
    let mut rows: Vec<Row> = Vec::new();
    let mut baseline_json: Option<String> = None;
    let mut diverged = false;
    for (engine, threads) in configs {
        let session = AnalysisSession::builder().engine(engine).threads(threads).build();
        let mut wall = Duration::MAX;
        let mut detect = Duration::MAX;
        let mut findings = 0;
        for _ in 0..reps {
            let t0 = Instant::now();
            let report = session.run(&trace);
            let elapsed = t0.elapsed();
            if elapsed < wall {
                wall = elapsed;
                detect = report.stats.detect_time;
            }
            findings = report.diagnostics.len();
            let json = report.to_json();
            match &baseline_json {
                None => baseline_json = Some(json),
                Some(b) if *b != json => {
                    eprintln!(
                        "DIVERGENCE: {engine} engine at {threads} thread(s) produced a \
                         different report than the baseline"
                    );
                    diverged = true;
                }
                Some(_) => {}
            }
        }
        println!(
            "{:<10} {:>8} {:>12.2} {:>12.2} {:>10}",
            engine.to_string(),
            threads,
            wall.as_secs_f64() * 1e3,
            detect.as_secs_f64() * 1e3,
            findings
        );
        rows.push(Row { engine, threads, wall, detect, findings });
    }

    let detect_ms = |e: Engine, t: usize| -> f64 {
        rows.iter()
            .find(|r| r.engine == e && r.threads == t)
            .map(|r| r.detect.as_secs_f64() * 1e3)
            .unwrap_or(f64::NAN)
    };
    let naive = detect_ms(Engine::Naive, 1);
    let sweep1 = detect_ms(Engine::Sweep, 1);
    let sweep4 = detect_ms(Engine::Sweep, 4);
    let sweep_vs_naive = naive / sweep1;
    let scaling = sweep1 / sweep4;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!();
    println!("sweep vs naive (detect, 1 thread): {sweep_vs_naive:.1}x");
    println!("sweep 4-thread scaling (detect):   {scaling:.1}x");
    if cores < 2 {
        println!("(single-core host: thread scaling cannot exceed 1x here)");
    }

    // One extra instrumented pass shows where the pipeline's time goes
    // (kept out of the timed loop so the numbers above stay clean).
    let obs = mcc_obs::RecorderHandle::enabled();
    AnalysisSession::builder()
        .engine(Engine::Sweep)
        .threads(4)
        .recorder(obs.clone())
        .build()
        .run(&trace);
    println!();
    println!("Phase spans (sweep, 4 threads, one instrumented pass):");
    println!("{:<22} {:>6} {:>12} {:>12}", "span", "count", "total (ms)", "max (ms)");
    for agg in obs.span_summary() {
        println!(
            "{:<22} {:>6} {:>12.2} {:>12.2}",
            agg.name,
            agg.count,
            agg.total_us as f64 / 1e3,
            agg.max_us as f64 / 1e3
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"engine\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!(
        "  \"workload\": {{\"nprocs\": {procs}, \"rounds\": {rounds}, \"ops_per_round\": {ops}, \
         \"locals_per_round\": {locals}, \"conflict_fraction\": {conflict}, \
         \"accesses_per_region\": {accesses_per_region}, \"total_events\": {}}},\n",
        trace.total_events()
    ));
    json.push_str("  \"engines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \
             \"detect_ms\": {:.3}, \"findings\": {}}}{}\n",
            r.engine,
            r.threads,
            r.wall.as_secs_f64() * 1e3,
            r.detect.as_secs_f64() * 1e3,
            r.findings,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedups\": {{\"sweep_vs_naive_1t\": {sweep_vs_naive:.2}, \
         \"sweep_4t_vs_1t\": {scaling:.2}}},\n"
    ));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(&format!("  \"reports_identical\": {}\n", !diverged));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");

    if diverged {
        eprintln!("FAIL: reports are not byte-identical across engines/thread counts");
        std::process::exit(1);
    }
}

//! Regenerates **Figure 10**: the rate of profiled runtime events per
//! process on LU as the process count grows — the mechanism behind
//! Figure 9's falling overhead.
//!
//! Expected shape: the per-rank load/store event rate (the dominant
//! class) falls as ranks grow, while MPI-call events grow only mildly.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin fig10 [-- --n 192]
//! ```

use mcc_apps::overhead::lu::{lu, LuParams};
use mcc_mpi_sim::{run, Instrument, SimConfig};
use mcc_profiler::TraceStats;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u32| -> u32 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n = flag("--n", 192) as usize;

    println!("Figure 10: rate of profiling events per process on LU (matrix {n}x{n})");
    println!();
    println!(
        "{:>6} {:>14} {:>14} {:>18} {:>18}",
        "procs", "ld/st events", "MPI events", "ld/st rate /rank/s", "MPI rate /rank/s"
    );
    println!("{}", "-".repeat(74));
    for procs in [8u32, 16, 32, 64, 128] {
        let params = LuParams { n };
        let r = run(
            SimConfig::new(procs)
                .with_seed(0xf1910)
                .with_instrument(Instrument::Relevant)
                .with_keep_events(false),
            move |p| {
                lu(p, &params);
            },
        )
        .unwrap();
        let rates = TraceStats::new(r.stats).rates();
        println!(
            "{:>6} {:>14} {:>14} {:>18.0} {:>18.0}",
            procs,
            rates.mem_events,
            rates.mpi_events,
            rates.mem_rate_per_rank,
            rates.mpi_rate_per_rank
        );
    }
    println!();
    println!(
        "Paper: \"the rate of profiling runtime events, especially load/store events, \
         decreases while the number of processes increases, which explains the reason \
         that overhead drops.\""
    );
}

//! Regenerates **Table II**: overall effectiveness of MC-Checker on the
//! three real-world and two injected bug cases.
//!
//! For every application the harness runs the buggy variant under the
//! Profiler, feeds the trace to the DN-Analyzer, and reports whether the
//! bug was detected, where, and with which conflicting-operation pair —
//! then runs the fixed variant to confirm the checker stays silent (no
//! false positives).
//!
//! ```text
//! cargo run -p mcc-bench --release --bin table2
//! ```

use mcc_apps::bugs::{fixed_cases, table2_cases, trace_under_faults};
use mcc_core::{AnalysisSession, ErrorScope, Severity};
use mcc_mpi_sim::FaultPlan;

fn main() {
    // `--threads N` selects the conflict-engine thread count (default 1).
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let checker = AnalysisSession::builder().threads(threads).build();
    println!("Table II: Overall effectiveness of MC-Checker");
    println!();
    println!(
        "{:<14} {:>6} {:<18} {:<46} {:<10} {:<9}",
        "Application",
        "Procs",
        "Error location",
        "Root cause (detected pair)",
        "Detected?",
        "Severity"
    );
    println!("{}", "-".repeat(110));

    let mut all_detected = true;
    for (spec, body) in table2_cases() {
        // The deadlock watchdog inside `trace_under_faults` turns a hung
        // workload into a diagnostic row instead of a stuck benchmark.
        let (trace, sim_err) = trace_under_faults(spec.nprocs, 0xbead, FaultPlan::none(), body);
        if let Some(e) = sim_err {
            all_detected = false;
            println!(
                "{:<14} {:>6} {:<18} {:<46} {:<10} {:<9}",
                spec.name,
                spec.nprocs,
                "-",
                format!("workload did not finish: {e}"),
                "NO",
                "-"
            );
            println!();
            continue;
        }
        let report = checker.run(&trace);
        // Prefer the finding in the error location the paper's row names
        // (an injected bug can surface in more than one class).
        let wants_cross = spec.error_location.contains("across");
        let finding = report
            .diagnostics
            .iter()
            .find(|e| matches!(e.scope, ErrorScope::CrossProcess { .. }) == wants_cross)
            .or_else(|| report.diagnostics.first());
        let detected = finding.is_some();
        all_detected &= detected;
        let (loc, pair, sev) = match finding {
            Some(e) => (
                match e.scope {
                    ErrorScope::IntraEpoch { .. } => "within an epoch",
                    ErrorScope::CrossProcess { .. } => "across processes",
                },
                format!("{} vs {}", e.a.op, e.b.op),
                match e.severity {
                    Severity::Error => "ERROR",
                    Severity::Warning => "WARNING",
                },
            ),
            None => ("-", "-".to_string(), "-"),
        };
        println!(
            "{:<14} {:>6} {:<18} {:<46} {:<10} {:<9}",
            spec.name,
            spec.nprocs,
            loc,
            pair,
            if detected { "yes" } else { "NO" },
            sev
        );
        if let Some(e) = finding {
            println!(
                "{:<14} {:>6} root cause per paper: {}  [{}]",
                "",
                "",
                spec.root_cause,
                if spec.injected { "injected" } else { "real-world" }
            );
            println!("{:<14} {:>6} symptom: {}", "", "", spec.symptom);
            println!("{:<14} {:>6} diagnostics: (1) {}   (2) {}", "", "", e.a, e.b);
        }
        println!();
    }

    println!("False-positive regression (fixed variants):");
    let mut clean = true;
    for (spec, body) in fixed_cases() {
        let (trace, sim_err) = trace_under_faults(spec.nprocs, 0xbead, FaultPlan::none(), body);
        if let Some(e) = sim_err {
            clean = false;
            println!("  {:<14} fixed variant did not finish: {e}", spec.name);
            continue;
        }
        let report = checker.run(&trace);
        let findings = report.diagnostics.len();
        clean &= findings == 0;
        println!("  {:<14} fixed variant: {} finding(s)", spec.name, findings);
    }

    println!();
    println!(
        "Result: {} / 5 bugs detected; fixed variants {}.",
        if all_detected { 5 } else { 0 },
        if clean { "clean (no false positives)" } else { "NOT clean" }
    );
    println!(
        "Paper: \"MC-Checker not only detects all the evaluated three real-world and two \
         injected bugs but also pinpoints the root causes of all five bugs.\""
    );
}

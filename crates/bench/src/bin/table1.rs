//! Regenerates **Table I**: the compatibility matrix of RMA operations.
//!
//! ```text
//! cargo run -p mcc-bench --bin table1
//! ```

fn main() {
    println!("Table I: Compatibility matrix of RMA operations (MPI-2.2 window ruleset)");
    println!();
    print!("{}", mcc_types::compat::render_table1());
    println!();
    println!("BOTH   = overlapping and nonoverlapping combinations permitted");
    println!("NON-OV = only nonoverlapping combinations permitted");
    println!("ERROR  = combination erroneous even without overlap (separation rule)");
}

//! Regenerates **Figure 8**: execution time of the five applications
//! without and with MC-Checker's Profiler, normalized to native.
//!
//! The paper reports 24.6%–71.1% overhead (average 45.2%) with
//! ST-Analyzer-guided (relevant-only) instrumentation, versus multiples
//! for instrument-everything tools. The absolute numbers here depend on
//! the simulator, not the authors' cluster; the expected *shape* is:
//! tens-of-percent overhead in `relevant` mode and far more in `all` mode.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin fig8 [-- --procs 64 --reps 5 --instrument-all]
//! ```

use mcc_apps::overhead::{
    boltzmann::{boltzmann, BoltzmannParams},
    lennard_jones::{lennard_jones, LjParams},
    lu::{lu, LuParams},
    scf::{scf, ScfParams},
    skampi::{skampi, SkampiParams},
};
use mcc_mpi_sim::{Instrument, SimConfig};
use mcc_profiler::profile_run;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u32| -> u32 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let procs = flag("--procs", 16);
    let reps = flag("--reps", 3);
    let mode = if args.iter().any(|a| a == "--instrument-all") {
        Instrument::All
    } else {
        Instrument::Relevant
    };

    println!(
        "Figure 8: normalized execution time with MC-Checker's Profiler ({mode:?} mode, \
         {procs} processes, best of {reps})"
    );
    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10}",
        "Application", "native (ms)", "profiled", "normalized", "overhead"
    );
    println!("{}", "-".repeat(68));

    // A hung workload (e.g. a collective that never completes at some
    // scale) becomes a diagnostic row via the deadlock watchdog instead
    // of wedging the whole benchmark run.
    let base =
        SimConfig::new(procs).with_seed(0xf198).with_watchdog(std::time::Duration::from_secs(10));
    let mut overheads = Vec::new();
    let mut report = |r: Result<mcc_profiler::OverheadReport, mcc_mpi_sim::SimError>| match r {
        Ok(r) => {
            println!(
                "{:<16} {:>12.2} {:>12.2} {:>12.3} {:>9.1}%",
                r.name,
                r.native.as_secs_f64() * 1e3,
                r.profiled.as_secs_f64() * 1e3,
                r.normalized,
                r.overhead_pct
            );
            overheads.push(r.overhead_pct);
        }
        Err(e) => println!("{:<16} workload did not finish: {e}", "-"),
    };

    let lj = LjParams { particles_per_rank: 48, steps: 3 };
    report(profile_run("Lennard-Jones", base.clone(), mode, reps, move |p| lennard_jones(p, &lj)));

    let sc = ScfParams { rows: 12, iters: 3 };
    report(profile_run("SCF", base.clone(), mode, reps, move |p| scf(p, &sc)));

    let bz = BoltzmannParams { cells_per_rank: 2048, steps: 12 };
    report(profile_run("Boltzmann", base.clone(), mode, reps, move |p| boltzmann(p, &bz)));

    let sk = SkampiParams { max_elems: 512, reps: 24 };
    report(profile_run("SKaMPI", base.clone(), mode, reps, move |p| skampi(p, &sk)));

    let lup = LuParams { n: 160 };
    report(profile_run("LU", base, mode, reps, move |p| {
        lu(p, &lup);
    }));

    let avg = if overheads.is_empty() {
        f64::NAN
    } else {
        overheads.iter().sum::<f64>() / overheads.len() as f64
    };
    println!("{}", "-".repeat(68));
    println!("{:<16} {:>50.1}%", "average", avg);
    println!();
    println!(
        "Paper (relevant-only): range 24.6%..71.1%, average 45.2%. Instrument-all \
         comparison point (SyncChecker): average 385%."
    );
}

//! Criterion bench — the Figure 8 instrumentation ablation in bench form:
//! native vs. relevant-only vs. instrument-all profiling of the LU
//! kernel. Relevant-only should sit within tens of percent of native;
//! instrument-all should be a clear multiple (the SyncChecker/Purify
//! comparison, §VII-B).

use criterion::{criterion_group, criterion_main, Criterion};
use mcc_apps::overhead::lu::{lu, LuParams};
use mcc_mpi_sim::{run, Instrument, SimConfig};

fn bench_instrumentation(c: &mut Criterion) {
    let params = LuParams { n: 64 };
    let mut g = c.benchmark_group("profiler/instrumentation");
    g.sample_size(10);
    for (name, mode) in
        [("native", Instrument::Off), ("relevant", Instrument::Relevant), ("all", Instrument::All)]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                run(
                    SimConfig::new(4).with_seed(1).with_instrument(mode).with_keep_events(false),
                    |p| {
                        lu(p, &params);
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_instrumentation);
criterion_main!(benches);

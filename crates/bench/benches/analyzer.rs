//! Criterion bench: DN-Analyzer end-to-end throughput and phase costs on
//! synthetic traces of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcc_bench::synth::{synth_trace, SynthParams};
use mcc_core::{matching, preprocess, AnalysisSession};

fn bench_full_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyzer/full_check");
    for rounds in [2usize, 8, 32] {
        let t = synth_trace(&SynthParams { rounds, ..Default::default() }, 0.1);
        g.throughput(Throughput::Elements(t.total_events() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(t.total_events()), &t, |b, t| {
            let session = AnalysisSession::new();
            b.iter(|| session.run(t));
        });
    }
    g.finish();
}

fn bench_phases(c: &mut Criterion) {
    let t = synth_trace(&SynthParams { rounds: 16, ..Default::default() }, 0.1);
    let ctx = preprocess::preprocess(&t);
    let mut g = c.benchmark_group("analyzer/phases");
    g.bench_function("preprocess", |b| b.iter(|| preprocess::preprocess(&t)));
    g.bench_function("matching", |b| b.iter(|| matching::match_sync(&t, &ctx)));
    let m = matching::match_sync(&t, &ctx);
    g.bench_function("dag+clocks", |b| {
        b.iter(|| {
            let dag = mcc_core::dag::build(&t, &ctx, &m);
            mcc_core::vc::Clocks::compute(&dag)
        })
    });
    g.finish();
}

fn bench_parallel_mode(c: &mut Criterion) {
    // The paper's future-work item: multithreaded offline analysis.
    let t = synth_trace(&SynthParams { rounds: 32, nprocs: 8, ..Default::default() }, 0.1);
    let mut g = c.benchmark_group("analyzer/parallel");
    g.bench_function("sequential", |b| {
        let session = AnalysisSession::new();
        b.iter(|| session.run(&t));
    });
    g.bench_function("rayon", |b| {
        let session = AnalysisSession::builder().threads(4).build();
        b.iter(|| session.run(&t));
    });
    g.finish();
}

fn bench_streaming_vs_batch(c: &mut Criterion) {
    // The §VII-B future-work item: online analysis with bounded memory.
    use mcc_core::streaming::StreamingChecker;
    let t = synth_trace(&SynthParams { rounds: 16, ..Default::default() }, 0.05);
    let mut g = c.benchmark_group("analyzer/streaming");
    g.sample_size(10);
    g.bench_function("batch", |b| {
        let session = AnalysisSession::new();
        b.iter(|| session.run(&t));
    });
    g.bench_function("streaming", |b| b.iter(|| StreamingChecker::run_over(&t)));
    g.finish();
}

criterion_group!(
    benches,
    bench_full_check,
    bench_phases,
    bench_parallel_mode,
    bench_streaming_vs_batch
);
criterion_main!(benches);

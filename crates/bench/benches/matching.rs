//! Criterion bench — §IV-C2a ablation: Algorithm 1's progress-counter
//! synchronization matching vs. the scan-from-the-start straw man the
//! paper rejects as "time-consuming ... especially for large trace
//! files".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcc_bench::synth::synth_sync_trace;
use mcc_core::{matching, preprocess};

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching/progress_vs_scan");
    g.sample_size(10);
    for rounds in [64usize, 256, 1024] {
        let t = synth_sync_trace(8, rounds, 5);
        let ctx = preprocess::preprocess(&t);
        g.throughput(Throughput::Elements(t.total_events() as u64));
        g.bench_with_input(BenchmarkId::new("progress-counters", rounds), &t, |b, t| {
            b.iter(|| matching::match_sync(t, &ctx))
        });
        g.bench_with_input(BenchmarkId::new("scan-from-start", rounds), &t, |b, t| {
            b.iter(|| matching::match_sync_naive(t, &ctx))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);

//! Criterion bench — §III-B ablation: concurrent-region partitioning at
//! global synchronization events ("truncate the DAG into multiple
//! execution regions, which ... can be used to improve the efficiency of
//! the analysis") vs. analyzing the whole trace as one region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcc_bench::synth::{synth_trace, SynthParams};
use mcc_core::AnalysisSession;

fn bench_regions(c: &mut Criterion) {
    let mut g = c.benchmark_group("regions/partition_vs_whole");
    g.sample_size(10);
    for rounds in [4usize, 16, 64] {
        let t = synth_trace(&SynthParams { rounds, ..Default::default() }, 0.02);
        g.bench_with_input(BenchmarkId::new("partitioned", rounds), &t, |b, t| {
            let session = AnalysisSession::new();
            b.iter(|| session.run(t));
        });
        g.bench_with_input(BenchmarkId::new("single-region", rounds), &t, |b, t| {
            let session = AnalysisSession::builder().partition_regions(false).build();
            b.iter(|| session.run(t));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_regions);
criterion_main!(benches);

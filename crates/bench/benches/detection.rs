//! Criterion bench — §IV-C4 ablation: the linear window-vector
//! cross-process detector vs. the naive all-pairs detector, swept over
//! concurrent-region size. "the time complexity is combinatorial with
//! respect to the total number of operations within one concurrent
//! region. Can we do better?"

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcc_bench::synth::{synth_trace, SynthParams};
use mcc_core::{AnalysisSession, Engine};

fn bench_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection/linear_vs_naive");
    g.sample_size(10);
    for ops in [16usize, 64, 256] {
        // One giant region (rounds = 1) so region size == ops * nprocs.
        let t = synth_trace(
            &SynthParams {
                rounds: 1,
                ops_per_round: ops,
                locals_per_round: ops,
                ..Default::default()
            },
            0.02,
        );
        g.throughput(Throughput::Elements((ops * 8) as u64));
        g.bench_with_input(BenchmarkId::new("sweep", ops), &t, |b, t| {
            let session = AnalysisSession::new();
            b.iter(|| session.run(t));
        });
        g.bench_with_input(BenchmarkId::new("all-pairs", ops), &t, |b, t| {
            let session = AnalysisSession::builder().engine(Engine::Naive).build();
            b.iter(|| session.run(t));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);

//! `mcc` — the MC-Checker command line.
//!
//! ```text
//! mcc check <trace-dir> [--threads N] [--engine sweep|naive]
//!           [--format text|json] [--timings] [--profile out.json]
//!           [--streaming] [--tolerate-truncation]
//!     Analyze a trace directory written by the Profiler
//!     (mcc_profiler::write_trace_dir) and print the findings.
//!     --threads runs the sharded conflict engine on N OS threads (the
//!     report is identical at every thread count); --engine selects the
//!     sharded sweep engine (default) or the all-pairs baseline;
//!     --format json prints the stable schema_version-1 report document
//!     (--timings adds the per-phase `timings` object to it).
//!     --profile records phase spans and pipeline metrics and writes
//!     them as Chrome trace_event JSON — open the file in Perfetto
//!     (ui.perfetto.dev) or chrome://tracing.
//!     --tolerate-truncation reads the directory with the tolerant
//!     reader (torn lines, missing ranks) and checks in degraded mode.
//!     (--json, --naive and --parallel are kept as aliases for
//!     --format json, --engine naive and --threads 4.)
//!
//! mcc demo <case> [--fixed] [--procs N] [--trace-out DIR]
//!          [--abort R:N] [--hang R:N] [--recover-policy P]
//!          [--seed N] [--seed-sweep N] [--profile out.json]
//!     Run one of the built-in bug cases under the Profiler and check it.
//!     Cases: emulate, bt-broadcast, lockopts, ping-pong, jacobi, adlb,
//!     adlb-crash, mpi3-queue, fig2a, fig2b, fig2c, fig2d, plus the
//!     recovery gallery: jacobi-ckpt, pingpong-reexpose, adlb-failure,
//!     notify-race (each ships its own fault plan).
//!     --abort R:N injects a failure of rank R after N events; --hang
//!     R:N hangs rank R at its Nth synchronization call (caught by the
//!     watchdog). --recover-policy <abort|notify|checkpoint> chooses
//!     what --abort means: `abort` (the default) kills the process and
//!     degrades the analysis; `notify` and `checkpoint` make the
//!     failure survivable — the run keeps going, survivors observe the
//!     death, and the checker routes through the failure-aware
//!     (recovered) pipeline instead of degrading.
//!     --seed N runs the case once under the seeded *adversarial*
//!     delivery policy instead of the deterministic worst case;
//!     --seed-sweep N tries N consecutive seeds and reports the first
//!     one whose trace checks dirty — the random-search baseline that
//!     `mcc explore` replaces with systematic enumeration.
//!
//! mcc explore <case> [--fixed] [--procs N] [--max-schedules N]
//!             [--max-depth N] [--threads N] [--format text|json]
//!             [--replay WITNESS]
//!     Systematically enumerate the case's RMA delivery schedules with
//!     partial-order reduction: every run is driven by an explicit
//!     per-operation eager/at-close decision vector, only decisions the
//!     happens-before analysis marks as racing are ever flipped, and
//!     trace-equivalent schedules are deduplicated. Each finding carries
//!     a witness decision vector (`ec/-` style: one `e`/`c` string per
//!     rank); --replay WITNESS re-runs that exact schedule. Schedules
//!     that deadlock under some delivery timing are recorded as such
//!     (watchdog-bounded) instead of hanging. --threads shards the
//!     search; the report is byte-identical at every thread count.
//!     Exits 1 when any schedule has errors, 7 when the --max-schedules
//!     budget ran out before the space was covered, 0 on full coverage.
//!
//! Exit codes:
//!   0  complete analysis, no errors
//!   1  complete analysis, errors found
//!   2  usage or I/O error
//!   3  degraded analysis, errors found
//!   4  degraded analysis, no errors
//!   5  recovered analysis (rank failure modeled), errors found
//!   6  recovered analysis (rank failure modeled), no errors
//!   7  exploration: schedule budget exhausted before covering the space (no errors found)
//!
//! mcc serve [--listen ADDR] [--max-buffer N] [--soft-watermark N]
//!           [--idle-timeout-ms N] [--write-timeout-ms N] [--tick-ms N]
//!           [--max-threads N] [--ack-interval N] [--journal-dir DIR]
//!           [--fsync never|ack|always] [--resume-grace-ms N] [--recover]
//!           [--no-binary] [--no-tracectx] [--profile out.json]
//!           [--max-sessions N] [--mem-ceiling MIB] [--quota-events N]
//!           [--quota-rate N] [--quota-bytes N] [--deadline-s N]
//!           [--busy-retry-ms N]
//!     Run the checker daemon. ADDR is a TCP address (default
//!     127.0.0.1:9477; port 0 picks a free port) or, on Unix, a socket
//!     path (recognized by a `/`). Each client connection is a session
//!     checked online with bounded memory: --max-buffer caps buffered
//!     events per session (eviction past the cap degrades that session's
//!     report instead of growing without bound), --soft-watermark sets
//!     the backpressure threshold, and sessions idle for
//!     --idle-timeout-ms are salvaged with a degraded report.
//!     --journal-dir enables per-session write-ahead journals for
//!     durable sessions (--fsync picks the sync policy); with --recover
//!     the daemon scans that directory at startup and rebuilds the
//!     sessions it finds, so clients can resume across a crash.
//!     Parked durable sessions wait --resume-grace-ms for a `Resume`
//!     before the janitor salvages them.
//!     --no-binary makes the daemon JSON-only: it stops announcing the
//!     `binary` capability and refuses binary-codec payloads, for
//!     mixed-version fleets where some peer can't speak the compact
//!     wire format. --no-tracectx likewise drops the `tracectx`
//!     capability, making the daemon behave like a pre-tracectx build.
//!     --profile enables the daemon-side recorder and writes its
//!     Chrome trace on exit, for `mcc trace-merge` against a client
//!     `mcc submit --profile` trace.
//!     Resource governance (all off by default): --max-sessions caps
//!     concurrently held sessions; --mem-ceiling MIB bounds the
//!     daemon-wide accountant (buffered event bytes + journal backlog)
//!     — past 75% new sessions are refused with a typed `Busy`
//!     carrying the --busy-retry-ms hint, past 90% the janitor sheds
//!     sessions largest-buffer-first to degraded reports until back
//!     under 3/4 of the ceiling. Per-session quotas: --quota-events
//!     and --quota-bytes cap a session's total events and buffered
//!     bytes (exceeding either degrades-then-evicts with a typed
//!     `QuotaExceeded`), --quota-rate paces a session to N events/s
//!     (token bucket; over-rate sessions are stalled and told once per
//!     crossing via `Throttled`, never evicted), and --deadline-s
//!     bounds a session's wall-clock time.
//!
//! mcc submit <trace-dir> [--addr ADDR] [--threads N] [--max-buffer N]
//!            [--format text|json] [--durable] [--retries N]
//!            [--backoff-ms N] [--throttle-ms N] [--codec json|binary]
//!            [--batch-size N] [--profile out.json]
//!     Stream a recorded trace directory to a running daemon and print
//!     the returned session report. Exit codes as for `mcc check`.
//!     --durable opens a resumable session and retries through
//!     connection drops and daemon restarts (--retries attempts,
//!     exponential backoff from --backoff-ms with jitter); --throttle-ms
//!     paces the stream one frame at a time (chaos/CI use).
//!     --codec picks the event-stream encoding (default binary, used
//!     only when the daemon's Welcome announces the `binary`
//!     capability; the handshake and the daemon's replies stay JSON);
//!     --batch-size groups N events per columnar Batch frame
//!     (default 256, 1 disables batching).
//!     --profile records the client-side submit spans as a Chrome
//!     trace and — when the daemon's Welcome lists the `tracectx`
//!     capability — stamps the session with this process's trace id,
//!     so a daemon `--profile` trace can be re-parented onto this one
//!     with `mcc trace-merge`.
//!
//! mcc stats [--addr ADDR] [--metrics]
//!     Print a running daemon's supervisor state as JSON. With
//!     --metrics, print the daemon's live pipeline counters as
//!     Prometheus-style text exposition instead (the `METRICS` verb).
//!
//! mcc top [--addr ADDR] [--interval-ms N] [--once]
//!     Live fleet view of a running daemon: polls the `HEALTH` and
//!     `METRICS` verbs and renders sessions by state, events/s,
//!     buffered events, evictions, and the hot-path latency
//!     histograms (ingest→ack, journal fsync, first finding) as
//!     p50/p99. --once prints a single snapshot and exits (CI use);
//!     otherwise the screen refreshes every --interval-ms (default
//!     1000) until interrupted.
//!
//! mcc trace-merge <client.json> <daemon.json> [-o merged.json]
//!     Merge a client-side `--profile` Chrome trace with the daemon's
//!     `mcc serve --profile` trace into one document. Daemon span ids
//!     are shifted past the client's, and daemon spans that carry a
//!     `remoteTrace` link matching the client's `traceId` are
//!     re-parented onto the client span that sent the `TraceCtx`
//!     frame, so Perfetto shows client encode → wire → daemon flush →
//!     analysis as a single tree.
//!
//! mcc overhead [--reps N]
//!     Reproduce the paper's Table-3-style profiling-overhead study
//!     over the bug gallery (native vs. profiled wall time, best of N
//!     reps), then bound the cost of this build's own observability
//!     layer: estimate what the disabled instrumentation hooks cost
//!     during analysis and fail if the estimate exceeds 5% of the
//!     analysis wall time.
//!
//! mcc demo ... --submit ADDR
//!     Instead of checking in-process, ship the demo's events to a
//!     daemon via the live frame encoder and print its report.
//!
//! mcc table1
//!     Print the RMA compatibility matrix (paper Table I).
//!
//! mcc list
//!     List the available demo cases.
//! ```

use mc_checker::apps::bugs;
use mc_checker::core::streaming::StreamingChecker;
use mc_checker::core::CheckReport;
use mc_checker::mpi_sim::{Fault, FaultPlan, RecoveryPolicy, SimError};
use mc_checker::prelude::*;
use mc_checker::profiler::{read_trace_dir, read_trace_dir_tolerant, write_trace_dir};
use mc_checker::serve::proto::{Frame, FrameReader, SessionOpts};
use mc_checker::serve::{client, ServeConfig, Server, SessionReport};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// Default daemon address for `serve`, `submit`, and `stats`.
const DEFAULT_ADDR: &str = "127.0.0.1:9477";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("trace-merge") => cmd_trace_merge(&args[1..]),
        Some("overhead") => cmd_overhead(&args[1..]),
        Some("table1") => {
            print!("{}", mc_checker::types::compat::render_table1());
            ExitCode::SUCCESS
        }
        Some("list") => {
            println!("Bug-case demos (each has a buggy and a --fixed variant):");
            for (spec, _) in bugs::table2_cases() {
                println!(
                    "  {:<14} {:>3} procs  {:<18} {}",
                    spec.name, spec.nprocs, spec.error_location, spec.root_cause
                );
            }
            for (spec, _, _) in bugs::extension_cases() {
                println!(
                    "  {:<14} {:>3} procs  {:<18} {}",
                    spec.name, spec.nprocs, spec.error_location, spec.root_cause
                );
            }
            println!("  fig2a / fig2b / fig2c / fig2d   the Figure 2 archetypes");
            println!("Recovery gallery (survivable rank failures; fault plan built in):");
            for (spec, _, _) in bugs::recovery_gallery::gallery() {
                println!(
                    "  {:<18} {:>3} procs  rank {} fails after {} epoch(s)",
                    spec.name.replace('_', "-"),
                    spec.nprocs,
                    spec.failed_rank,
                    spec.epochs_completed
                );
            }
            println!(
                "Run one with `mcc demo <case>`; enumerate its delivery schedules with \
                 `mcc explore <case>` (recovery-gallery cases are demo-only)."
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: mcc <check|demo|explore|serve|submit|stats|top|trace-merge|overhead|table1|list> ...  \
                 (see `src/bin/mcc.rs` docs)\nexit codes:\n{}",
                mc_checker::EXIT_CODE_TABLE
            );
            ExitCode::from(2)
        }
    }
}

/// The value following `flag`, if any.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// `--profile out.json` support: a recorder that is enabled only when
/// the flag is present, installed as the process-global handle so the
/// simulator and trace IO report into it too, and flushed to a Chrome
/// trace_event file when the command finishes.
struct ProfileSink {
    path: Option<String>,
    obs: RecorderHandle,
}

impl ProfileSink {
    fn from_args(args: &[String]) -> Self {
        let path = flag_value(args, "--profile").map(str::to_string);
        let obs =
            if path.is_some() { RecorderHandle::enabled() } else { RecorderHandle::disabled() };
        if obs.is_enabled() {
            // Mint the process trace id up front so the written trace is
            // self-identifying even when no daemon ever negotiated
            // `tracectx` (trace-merge keys the parent rewrite on it).
            obs.ensure_trace_id();
            mc_checker::obs::set_global(obs.clone());
        }
        Self { path, obs }
    }

    /// Writes the trace file (if requested); IO failure trumps `code`.
    fn finish(&self, code: ExitCode) -> ExitCode {
        let Some(path) = &self.path else { return code };
        match std::fs::write(path, self.obs.to_chrome_trace()) {
            Ok(()) => {
                eprintln!("profile written to {path} (open in ui.perfetto.dev)");
                code
            }
            Err(e) => {
                eprintln!("mcc: cannot write profile `{path}`: {e}");
                ExitCode::from(2)
            }
        }
    }
}

/// Builds the analysis session from the shared `check` flags.
fn session_from_args(args: &[String], obs: &RecorderHandle) -> Result<AnalysisSession, ExitCode> {
    let has = |f: &str| args.iter().any(|a| a == f);
    let threads = match flag_value(args, "--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("mcc: --threads expects a positive integer, got `{v}`");
                return Err(ExitCode::from(2));
            }
        },
        None if has("--parallel") => 4,
        None => 1,
    };
    let engine = match flag_value(args, "--engine") {
        Some(v) => match v.parse::<Engine>() {
            Ok(e) => e,
            Err(e) => {
                eprintln!("mcc: {e}");
                return Err(ExitCode::from(2));
            }
        },
        None if has("--naive") => Engine::Naive,
        None => Engine::Sweep,
    };
    Ok(AnalysisSession::builder().threads(threads).engine(engine).recorder(obs.clone()).build())
}

/// Resolves `--format text|json` (with `--json` as an alias).
fn json_from_args(args: &[String]) -> Result<bool, ExitCode> {
    match flag_value(args, "--format") {
        Some("json") => Ok(true),
        Some("text") | None => Ok(args.iter().any(|a| a == "--json")),
        Some(other) => {
            eprintln!("mcc: unknown format `{other}` (expected 'text' or 'json')");
            Err(ExitCode::from(2))
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        eprintln!(
            "usage: mcc check <trace-dir> [--threads N] [--engine sweep|naive] \
             [--format text|json] [--timings] [--profile out.json] \
             [--streaming] [--tolerate-truncation]"
        );
        return ExitCode::from(2);
    };
    for flag in ["--seed", "--seed-sweep"] {
        if args.iter().any(|a| a == flag) {
            eprintln!(
                "mcc: `{flag}` is a simulator knob: `mcc check` analyzes a recorded trace and \
                 cannot re-run it under a different schedule. Re-record the trace with \
                 `mcc demo <case> {flag} N --trace-out DIR`, or enumerate delivery schedules \
                 systematically with `mcc explore <case>`."
            );
            return ExitCode::from(2);
        }
    }
    let has = |f: &str| args.iter().any(|a| a == f);
    let json = match json_from_args(args) {
        Ok(j) => j,
        Err(code) => return code,
    };
    let sink = ProfileSink::from_args(args);

    if has("--tolerate-truncation") {
        return sink.finish(cmd_check_tolerant(dir, args, json, &sink.obs));
    }
    let trace = match read_trace_dir(Path::new(dir)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mcc: cannot read trace directory `{dir}`: {e}");
            eprintln!(
                "mcc: (a damaged directory may still be readable with --tolerate-truncation)"
            );
            return sink.finish(ExitCode::from(2));
        }
    };

    if has("--streaming") {
        let (findings, stats) = StreamingChecker::run_over(&trace);
        eprintln!(
            "streaming: {} events, {} regions flushed, peak buffer {} events",
            stats.total_events, stats.regions_flushed, stats.peak_buffered
        );
        return sink.finish(render_findings(&findings, json));
    }

    let session = match session_from_args(args, &sink.obs) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let report = session.run(&trace);
    eprintln!(
        "analyzed {} events: {} DAG nodes, {} regions, {} epochs ({} unmatched sync) \
         [engine {}, {} thread(s)]",
        report.stats.total_events,
        report.stats.dag_nodes,
        report.stats.regions,
        report.stats.epochs,
        report.stats.unmatched_sync,
        session.engine(),
        session.threads(),
    );
    sink.finish(report_exit(&report, json, has("--timings")))
}

/// `mcc check --tolerate-truncation`: tolerant read, degraded check.
fn cmd_check_tolerant(dir: &str, args: &[String], json: bool, obs: &RecorderHandle) -> ExitCode {
    let (trace, health) = match read_trace_dir_tolerant(Path::new(dir)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mcc: cannot read trace directory `{dir}`: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("trace health: {}", health.summary());
    let session = match session_from_args(args, obs) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let (mut report, info) = session.run_with_repair(&trace);
    if !health.is_complete() {
        // The reader lost data even if every surviving event resolved.
        report.mark_degraded();
    }
    eprintln!("degraded-mode repair: {}", info.summary());
    report_exit(&report, json, args.iter().any(|a| a == "--timings"))
}

/// Prints a report and maps it to the documented exit codes (0/1
/// complete, 4/3 degraded, 6/5 recovered — `mc_checker::EXIT_CODE_TABLE`).
/// `timings` switches the JSON rendering to the additive
/// per-phase-timings variant.
fn report_exit(report: &CheckReport, json: bool, timings: bool) -> ExitCode {
    if json {
        if timings {
            print!("{}", report.to_json_with_timings());
        } else {
            print!("{}", report.to_json());
        }
    } else {
        print!("{}", report.render());
    }
    ExitCode::from(mc_checker::exit_code_for(report.confidence, report.has_errors()))
}

fn render_findings(findings: &[ConsistencyError], json: bool) -> ExitCode {
    if json {
        match serde_json::to_string_pretty(findings) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("mcc: serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else if findings.is_empty() {
        println!("MC-Checker: no memory consistency errors detected.");
    } else {
        for (i, e) in findings.iter().enumerate() {
            println!("--- finding {} ---\n{e}\n", i + 1);
        }
    }
    if findings.iter().any(|e| e.severity == Severity::Error) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Shared by `submit` and `demo --submit`: print a daemon session report
/// and map it to the documented exit codes.
fn session_report_exit(report: &SessionReport, json: bool) -> ExitCode {
    eprintln!(
        "session: {} events ingested, {} regions flushed, peak buffer {} events, \
         {} eviction(s), confidence {}",
        report.events_ingested,
        report.regions_flushed,
        report.peak_buffered,
        report.evictions,
        report.confidence,
    );
    if json {
        println!("{}", report.to_json());
    } else if report.findings.is_empty() {
        println!("MC-Checker: no memory consistency errors detected.");
    } else {
        for (i, e) in report.findings.iter().enumerate() {
            println!("--- finding {} ---\n{e}\n", i + 1);
        }
    }
    ExitCode::from(mc_checker::exit_code_for(report.confidence, report.has_errors()))
}

/// Parses a positive-integer flag, reporting a uniform usage error.
fn positive_flag<T: std::str::FromStr + PartialOrd + From<u8>>(
    args: &[String],
    flag: &str,
) -> Result<Option<T>, ExitCode> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => match v.parse::<T>() {
            Ok(n) if n >= T::from(1u8) => Ok(Some(n)),
            _ => {
                eprintln!("mcc: {flag} expects a positive integer, got `{v}`");
                Err(ExitCode::from(2))
            }
        },
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--listen").unwrap_or(DEFAULT_ADDR);
    let mut cfg = ServeConfig::default();
    macro_rules! take {
        ($flag:literal, $ty:ty, $set:expr) => {
            match positive_flag::<$ty>(args, $flag) {
                Ok(Some(v)) =>
                {
                    #[allow(clippy::redundant_closure_call)]
                    ($set)(&mut cfg, v)
                }
                Ok(None) => {}
                Err(code) => return code,
            }
        };
    }
    take!("--max-buffer", usize, |c: &mut ServeConfig, n| c.hard_watermark = n);
    take!("--soft-watermark", usize, |c: &mut ServeConfig, n| c.soft_watermark = n);
    take!("--idle-timeout-ms", u64, |c: &mut ServeConfig, n| c.idle_timeout =
        Duration::from_millis(n));
    take!("--write-timeout-ms", u64, |c: &mut ServeConfig, n| c.write_timeout =
        Some(Duration::from_millis(n)));
    take!("--tick-ms", u64, |c: &mut ServeConfig, n| c.tick = Duration::from_millis(n));
    take!("--max-threads", usize, |c: &mut ServeConfig, n| c.max_threads = n);
    take!("--ack-interval", u64, |c: &mut ServeConfig, n| c.ack_interval = n);
    take!("--resume-grace-ms", u64, |c: &mut ServeConfig, n| c.resume_grace =
        Duration::from_millis(n));
    take!("--max-sessions", usize, |c: &mut ServeConfig, n| c.max_sessions = n);
    take!("--mem-ceiling", usize, |c: &mut ServeConfig, n| c.mem_ceiling = n << 20);
    take!("--quota-events", u64, |c: &mut ServeConfig, n| c.quota_max_events = n);
    take!("--quota-rate", u64, |c: &mut ServeConfig, n| c.quota_event_rate = n);
    take!("--quota-bytes", usize, |c: &mut ServeConfig, n| c.quota_max_bytes = n);
    take!("--deadline-s", u64, |c: &mut ServeConfig, n| c.session_deadline =
        Some(Duration::from_secs(n)));
    take!("--busy-retry-ms", u64, |c: &mut ServeConfig, n| c.busy_retry_after =
        Duration::from_millis(n));
    cfg.soft_watermark = cfg.soft_watermark.min(cfg.hard_watermark);
    if let Some(dir) = flag_value(args, "--journal-dir") {
        cfg.journal_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(v) = flag_value(args, "--fsync") {
        match mc_checker::serve::FsyncPolicy::parse(v) {
            Some(p) => cfg.fsync = p,
            None => {
                eprintln!("mcc: --fsync expects never|ack|always, got `{v}`");
                return ExitCode::from(2);
            }
        }
    }
    cfg.recover = args.iter().any(|a| a == "--recover");
    cfg.no_binary = args.iter().any(|a| a == "--no-binary");
    cfg.no_tracectx = args.iter().any(|a| a == "--no-tracectx");
    if cfg.recover && cfg.journal_dir.is_none() {
        eprintln!("mcc: --recover requires --journal-dir");
        return ExitCode::from(2);
    }
    // `--profile` turns on the daemon-side recorder; its Chrome trace —
    // session spans carrying `remoteTrace` links back to the submitting
    // clients — is written when the server exits, ready for
    // `mcc trace-merge` against a client-side profile.
    let profile = flag_value(args, "--profile").map(str::to_string);
    if profile.is_some() {
        cfg.recorder = RecorderHandle::enabled();
        mc_checker::obs::set_global(cfg.recorder.clone());
    }
    let obs = cfg.recorder.clone();
    let recover = cfg.recover;
    let server = match Server::bind(addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mcc: cannot bind `{addr}`: {e}");
            return ExitCode::from(2);
        }
    };
    // Parsed by the serve-smoke CI job and the `submit --addr` examples.
    println!("mcc serve: listening on {}", server.local_addr());
    if recover {
        // Parsed by the chaos-smoke CI job.
        println!(
            "mcc serve: recovered {} parked session(s) from the journal",
            server.registry().parked_count()
        );
    }
    // SIGINT/SIGTERM ask the accept loop to exit instead of killing the
    // process, so `run` returns, journals close, and the `--profile`
    // trace below actually gets written.
    install_shutdown_handler(server.handle());
    let code = match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mcc: serve failed: {e}");
            ExitCode::from(2)
        }
    };
    if let Some(path) = profile {
        match std::fs::write(&path, obs.to_chrome_trace()) {
            Ok(()) => eprintln!("profile written to {path} (open in ui.perfetto.dev)"),
            Err(e) => {
                eprintln!("mcc: cannot write profile `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    code
}

/// Set from the SIGINT/SIGTERM handler; a watcher thread turns it into
/// a clean [`mc_checker::serve::ServerHandle::shutdown`].
static SERVE_STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Routes SIGINT and SIGTERM into a graceful server shutdown. The
/// handler itself only stores a flag (the only async-signal-safe thing
/// it may do); a watcher thread notices and pokes the accept loop.
/// Declared against the C library the Rust runtime already links, so no
/// new dependency is involved.
#[cfg(unix)]
fn install_shutdown_handler(handle: mc_checker::serve::ServerHandle) {
    use std::sync::atomic::Ordering;
    extern "C" fn on_signal(_sig: i32) {
        SERVE_STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // POSIX-mandated numbers: SIGINT = 2, SIGTERM = 15.
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(2, handler);
        signal(15, handler);
    }
    std::thread::spawn(move || loop {
        if SERVE_STOP.load(Ordering::SeqCst) {
            handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    });
}

#[cfg(not(unix))]
fn install_shutdown_handler(_handle: mc_checker::serve::ServerHandle) {}

fn cmd_submit(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        eprintln!(
            "usage: mcc submit <trace-dir> [--addr ADDR] [--threads N] [--max-buffer N] \
             [--format text|json] [--codec json|binary] [--batch-size N] [--profile out.json]"
        );
        return ExitCode::from(2);
    };
    let json = match json_from_args(args) {
        Ok(j) => j,
        Err(code) => return code,
    };
    // The global recorder the sink installs is what the client reads to
    // stamp the session with a trace context (see `client::send_trace_ctx`).
    let sink = ProfileSink::from_args(args);
    let mut opts = SessionOpts::default();
    if let Some(v) = flag_value(args, "--threads") {
        match v.parse::<u32>() {
            Ok(n) if n >= 1 => opts.threads = n,
            _ => {
                eprintln!("mcc: --threads expects a positive integer, got `{v}`");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(v) = flag_value(args, "--max-buffer") {
        match v.parse::<u32>() {
            Ok(n) if n >= 1 => opts.max_buffered = n,
            _ => {
                eprintln!("mcc: --max-buffer expects a positive integer, got `{v}`");
                return ExitCode::from(2);
            }
        }
    }
    let trace = match read_trace_dir(Path::new(dir)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mcc: cannot read trace directory `{dir}`: {e}");
            return ExitCode::from(2);
        }
    };
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let mut submit_cfg = client::SubmitCfg::default();
    if let Some(v) = flag_value(args, "--codec") {
        match v {
            "json" => submit_cfg.prefer_binary = false,
            "binary" => submit_cfg.prefer_binary = true,
            _ => {
                eprintln!("mcc: --codec expects json|binary, got `{v}`");
                return ExitCode::from(2);
            }
        }
    }
    match positive_flag::<usize>(args, "--batch-size") {
        Ok(Some(n)) => submit_cfg.batch_size = n,
        Ok(None) => {}
        Err(code) => return code,
    }
    if args.iter().any(|a| a == "--durable") {
        let mut policy = client::RetryPolicy::default();
        match positive_flag::<u32>(args, "--retries") {
            Ok(Some(n)) => policy.retries = n,
            Ok(None) => {}
            Err(code) => return code,
        }
        match positive_flag::<u64>(args, "--backoff-ms") {
            Ok(Some(ms)) => policy.base_backoff = Duration::from_millis(ms),
            Ok(None) => {}
            Err(code) => return code,
        }
        match positive_flag::<u64>(args, "--throttle-ms") {
            Ok(Some(ms)) => policy.throttle = Some(Duration::from_millis(ms)),
            Ok(None) => {}
            Err(code) => return code,
        }
        return sink.finish(
            match client::submit_durable_tcp_cfg(addr, &trace, &opts, &policy, &submit_cfg) {
                Ok((report, stats)) => {
                    eprintln!(
                        "durable submit: {} attempt(s), {} resume(s), {} event(s) re-sent, \
                         {} byte(s) over {} codec, {:.1?}",
                        stats.attempts,
                        stats.resumes,
                        stats.events_resent,
                        stats.bytes_sent,
                        stats.codec,
                        stats.wall
                    );
                    session_report_exit(&report, json)
                }
                Err(e) => {
                    eprintln!("mcc: durable submit to `{addr}` failed: {e}");
                    ExitCode::from(2)
                }
            },
        );
    }
    sink.finish(match client::submit_tcp_cfg(addr, &trace, &opts, &submit_cfg) {
        Ok((report, info)) => {
            eprintln!(
                "submit: {} frame(s), {} byte(s) over {} codec",
                info.frames_sent, info.bytes_sent, info.codec
            );
            session_report_exit(&report, json)
        }
        Err(e) => {
            eprintln!("mcc: submit to `{addr}` failed: {e}");
            ExitCode::from(2)
        }
    })
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    if args.iter().any(|a| a == "--metrics") {
        return match client::metrics_tcp(addr) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mcc: metrics from `{addr}` failed: {e}");
                ExitCode::from(2)
            }
        };
    }
    match client::stats_tcp(addr) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mcc: stats from `{addr}` failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walks nested object keys in a parsed JSON document; absent or
/// non-integer paths read as 0, so a newer/older daemon never crashes
/// the view.
fn int_at(doc: &serde::Value, keys: &[&str]) -> i128 {
    let mut v = doc;
    for k in keys {
        match v.get(k) {
            Some(next) => v = next,
            None => return 0,
        }
    }
    match v {
        serde::Value::Int(n) => *n,
        _ => 0,
    }
}

/// Like [`int_at`] for string leaves (e.g. HEALTH's `pressure.level`).
fn str_at<'a>(doc: &'a serde::Value, keys: &[&str]) -> Option<&'a str> {
    let mut v = doc;
    for k in keys {
        v = v.get(k)?;
    }
    match v {
        serde::Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Human-scale byte count for `mcc top` (10 MiB reads better than
/// 10485760).
fn fmt_bytes(n: i128) -> String {
    let n = n.max(0) as u64;
    if n >= 1 << 20 {
        format!("{:.1}MiB", n as f64 / (1u64 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1}KiB", n as f64 / 1024.0)
    } else {
        format!("{n}B")
    }
}

/// Reads one histogram family out of the Prometheus exposition:
/// `(count, p50, p99)` in the family's unit, quantiles resolved to the
/// cumulative bucket bound they fall in (`u64::MAX` = overflow bucket).
fn hist_from_metrics(text: &str, family: &str) -> Option<(u64, u64, u64)> {
    let bucket_prefix = format!("mcc_{family}_bucket{{le=\"");
    let count_prefix = format!("mcc_{family}_count ");
    let mut buckets: Vec<(u64, u64)> = Vec::new();
    let mut count = 0u64;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(&bucket_prefix) {
            let (le, tail) = rest.split_once("\"}")?;
            let bound = if le == "+Inf" { u64::MAX } else { le.parse().ok()? };
            buckets.push((bound, tail.trim().parse().ok()?));
        } else if let Some(rest) = line.strip_prefix(&count_prefix) {
            count = rest.trim().parse().ok()?;
        }
    }
    if count == 0 || buckets.is_empty() {
        return None;
    }
    let quantile = |q: f64| -> u64 {
        let rank = ((q * count as f64).ceil() as u64).max(1);
        for &(bound, cum) in &buckets {
            if cum >= rank {
                return bound;
            }
        }
        u64::MAX
    };
    Some((count, quantile(0.5), quantile(0.99)))
}

/// One `mcc top` latency row; the overflow bucket prints as `>last`.
fn top_latency_row(label: &str, metrics: &str, family: &str) {
    let fmt = |v: u64| {
        if v == u64::MAX {
            ">65536".to_string()
        } else {
            v.to_string()
        }
    };
    match hist_from_metrics(metrics, family) {
        Some((count, p50, p99)) => {
            println!("   {:<14} {:>8} {:>8}   {:>8}", label, fmt(p50), fmt(p99), count);
        }
        None => println!("   {label:<14} {:>8} {:>8}   {:>8}", "-", "-", "-"),
    }
}

fn cmd_top(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let once = args.iter().any(|a| a == "--once");
    let interval = match positive_flag::<u64>(args, "--interval-ms") {
        Ok(v) => v.unwrap_or(1000),
        Err(code) => return code,
    };
    loop {
        let health = match client::health_tcp(addr) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("mcc: health from `{addr}` failed: {e}");
                return ExitCode::from(2);
            }
        };
        let metrics = match client::metrics_tcp(addr) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("mcc: metrics from `{addr}` failed: {e}");
                return ExitCode::from(2);
            }
        };
        let doc = match serde_json::parse_value_str(&health) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("mcc: unparseable HEALTH document from `{addr}`: {e}");
                return ExitCode::from(2);
            }
        };
        if !once {
            // Clear and home, as `top` does, so the view refreshes in place.
            print!("\x1b[2J\x1b[H");
        }
        let uptime_ms = int_at(&doc, &["uptime_ms"]);
        println!("mcc top — {addr} — uptime {:.1}s", uptime_ms as f64 / 1e3);
        println!(
            " sessions  active {}  parked {}  completed {}  salvaged {}  resumed {}  \
             recovered {}  rejected {}",
            int_at(&doc, &["sessions", "active"]),
            int_at(&doc, &["sessions", "parked"]),
            int_at(&doc, &["sessions", "completed"]),
            int_at(&doc, &["sessions", "salvaged"]),
            int_at(&doc, &["sessions", "resumed"]),
            int_at(&doc, &["sessions", "recovered"]),
            int_at(&doc, &["sessions", "rejected"]),
        );
        println!(
            " events    {} ingested  {}/s  findings {}  buffered {}",
            int_at(&doc, &["events_ingested"]),
            int_at(&doc, &["events_per_sec"]),
            int_at(&doc, &["findings"]),
            int_at(&doc, &["buffered_events"]),
        );
        println!(
            " pressure  evictions {}  backpressure stalls {}  corrupt frames {}",
            int_at(&doc, &["evictions"]),
            int_at(&doc, &["backpressure_stalls"]),
            int_at(&doc, &["frames_corrupt"]),
        );
        // Governance sections are schema v2; a v1 daemon just shows
        // zeros / "-" here.
        let ceiling = int_at(&doc, &["pressure", "mem_ceiling_bytes"]);
        println!(
            " memory    {}  accounted {}  ceiling {}  peak {}",
            str_at(&doc, &["pressure", "level"]).unwrap_or("-"),
            fmt_bytes(int_at(&doc, &["pressure", "accounted_bytes"])),
            if ceiling == 0 { "unlimited".to_string() } else { fmt_bytes(ceiling) },
            fmt_bytes(int_at(&doc, &["pressure", "peak_accounted_bytes"])),
        );
        println!(
            " admission admitted {}  rejected {}  shed {}  throttled {}",
            int_at(&doc, &["admission", "admitted"]),
            int_at(&doc, &["admission", "rejected"]),
            int_at(&doc, &["admission", "shed"]),
            int_at(&doc, &["admission", "throttled"]),
        );
        println!(" latency (µs)       p50      p99      count");
        top_latency_row("ingest→ack", &metrics, "serve_ingest_ack_latency_us");
        top_latency_row("journal fsync", &metrics, "serve_journal_fsync_us");
        top_latency_row("region flush", &metrics, "stream_region_flush_us");
        top_latency_row("first finding", &metrics, "stream_first_finding_latency_us");
        if once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(interval));
    }
}

/// Replaces (or inserts) `key` in an object value.
fn obj_set(v: &mut serde::Value, key: &str, val: serde::Value) {
    if let serde::Value::Obj(fields) = v {
        for (k, slot) in fields.iter_mut() {
            if k == key {
                *slot = val;
                return;
            }
        }
        fields.push((key.to_string(), val));
    }
}

fn as_int(v: Option<&serde::Value>) -> Option<i128> {
    match v {
        Some(serde::Value::Int(n)) => Some(*n),
        _ => None,
    }
}

fn cmd_trace_merge(args: &[String]) -> ExitCode {
    let (Some(client_path), Some(daemon_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: mcc trace-merge <client.json> <daemon.json> [-o merged.json]");
        return ExitCode::from(2);
    };
    let out_path =
        flag_value(args, "-o").or_else(|| flag_value(args, "--out")).unwrap_or("merged.json");
    let mut docs = Vec::new();
    for path in [client_path, daemon_path] {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mcc: cannot read trace `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        match serde_json::parse_value_str(&text) {
            Ok(d) => docs.push(d),
            Err(e) => {
                eprintln!("mcc: `{path}` is not a Chrome trace document: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let daemon_doc = docs.pop().expect("two docs parsed");
    let client_doc = docs.pop().expect("two docs parsed");
    let trace_id = as_int(client_doc.get("traceId"));
    if trace_id.is_none() {
        eprintln!(
            "mcc: `{client_path}` carries no traceId (was it recorded with --profile against a \
             tracectx-capable daemon?); merging without parent links"
        );
    }
    let events_of = |doc: &serde::Value| -> Vec<serde::Value> {
        match doc.get("traceEvents") {
            Some(serde::Value::Arr(evs)) => evs.clone(),
            _ => Vec::new(),
        }
    };
    let client_events = events_of(&client_doc);
    let daemon_events = events_of(&daemon_doc);
    // Shift daemon span ids past the client's so the merged id space
    // stays collision-free; remote links then resolve in client ids.
    let offset = client_events
        .iter()
        .filter_map(|e| as_int(e.get("args").and_then(|a| a.get("id"))))
        .max()
        .unwrap_or(0)
        + 1;
    let mut merged = client_events;
    let mut links = 0usize;
    for ev in daemon_events {
        let mut ev = ev.clone();
        obj_set(&mut ev, "pid", serde::Value::Int(2));
        let Some(serde::Value::Obj(_)) = ev.get("args") else {
            merged.push(ev);
            continue;
        };
        let id = as_int(ev.get("args").and_then(|a| a.get("id"))).unwrap_or(0);
        let parent = as_int(ev.get("args").and_then(|a| a.get("parent"))).unwrap_or(0);
        let remote_trace = as_int(ev.get("args").and_then(|a| a.get("remoteTrace")));
        let remote_parent = as_int(ev.get("args").and_then(|a| a.get("remoteParent")));
        let new_parent = match (remote_trace, remote_parent) {
            // The daemon span was explicitly linked (via a TraceCtx
            // frame) to a span of *this* client trace: re-parent it
            // there, in unshifted client ids.
            (Some(rt), Some(rp)) if trace_id == Some(rt) => {
                links += 1;
                rp
            }
            _ if parent != 0 => parent + offset,
            _ => 0,
        };
        if let serde::Value::Obj(fields) = &mut ev {
            for (k, v) in fields.iter_mut() {
                if k == "args" {
                    if id != 0 {
                        obj_set(v, "id", serde::Value::Int(id + offset));
                    }
                    obj_set(v, "parent", serde::Value::Int(new_parent));
                }
            }
        }
        merged.push(ev);
    }
    let mut out = Vec::new();
    out.push(("displayTimeUnit".to_string(), serde::Value::Str("ms".into())));
    if let Some(id) = trace_id {
        out.push(("traceId".to_string(), serde::Value::Int(id)));
    }
    out.push(("traceEvents".to_string(), serde::Value::Arr(merged)));
    out.push((
        "metrics".to_string(),
        serde::Value::Obj(vec![
            (
                "client".to_string(),
                client_doc.get("metrics").cloned().unwrap_or(serde::Value::Obj(Vec::new())),
            ),
            (
                "daemon".to_string(),
                daemon_doc.get("metrics").cloned().unwrap_or(serde::Value::Obj(Vec::new())),
            ),
        ]),
    ));
    let doc = serde::Value::Obj(out);
    let rendered = match serde_json::to_string(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mcc: cannot render the merged trace: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::write(out_path, rendered) {
        eprintln!("mcc: cannot write `{out_path}`: {e}");
        return ExitCode::from(2);
    }
    // Parsed by the obs-smoke CI job.
    println!(
        "trace-merge: {links} daemon span(s) parent-linked into the client trace, \
         written to {out_path}"
    );
    ExitCode::SUCCESS
}

/// One bug-gallery entry: name, rank count, program body.
type GalleryCase = (&'static str, u32, fn(&mut Proc));

/// `mcc overhead`: the paper's Table-3-style overhead study, plus a
/// bound on the cost of this build's own (disabled) instrumentation.
fn cmd_overhead(args: &[String]) -> ExitCode {
    let reps = match flag_value(args, "--reps") {
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("mcc: --reps expects a positive integer, got `{v}`");
                return ExitCode::from(2);
            }
        },
        None => 3,
    };

    let mut cases: Vec<GalleryCase> = Vec::new();
    for (spec, body) in bugs::table2_cases() {
        cases.push((spec.name, spec.nprocs, body));
    }
    for (spec, body, _) in bugs::extension_cases() {
        cases.push((spec.name, spec.nprocs, body));
    }

    println!("Profiling overhead over the bug gallery (best of {reps} rep(s) per mode):");
    println!(
        "{:<14} {:>5} {:>12} {:>12} {:>8} {:>9}",
        "app", "procs", "native", "profiled", "norm", "overhead"
    );
    for &(name, nprocs, body) in &cases {
        let base = SimConfig::new(nprocs).with_seed(0xC11);
        let rep =
            match mc_checker::profiler::profile_run(name, base, Instrument::Relevant, reps, body) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("mcc: profiling `{name}` failed: {e}");
                    return ExitCode::from(2);
                }
            };
        println!(
            "{:<14} {:>5} {:>10.3}ms {:>10.3}ms {:>7.2}x {:>8.1}%",
            rep.name,
            rep.nprocs,
            rep.native.as_secs_f64() * 1e3,
            rep.profiled.as_secs_f64() * 1e3,
            rep.normalized,
            rep.overhead_pct,
        );
    }

    // Bound the observability layer's own cost. Every hook in the
    // analysis pipeline goes through RecorderHandle, which counts its
    // invocations even when disabled; multiply that count by the
    // microbenchmarked per-call cost of the disabled path and compare
    // against the analysis wall time.
    let mut total_ops = 0u64;
    let mut total_wall = std::time::Duration::ZERO;
    for &(name, nprocs, body) in &cases {
        let trace = bugs::trace_of(nprocs, 0xC11, body);
        let counting = RecorderHandle::enabled();
        AnalysisSession::builder().recorder(counting.clone()).build().run(&trace);
        total_ops += counting.ops();

        let disabled = RecorderHandle::disabled();
        let session = AnalysisSession::builder().recorder(disabled).build();
        let mut best = std::time::Duration::MAX;
        for _ in 0..reps {
            let t = std::time::Instant::now();
            std::hint::black_box(session.run(&trace));
            best = best.min(t.elapsed());
        }
        total_wall += best;
        let _ = name;
    }

    // Per-call cost of a disabled hook, measured on this machine.
    let probe = RecorderHandle::disabled();
    const PROBE_CALLS: u64 = 1 << 22;
    let t = std::time::Instant::now();
    for i in 0..PROBE_CALLS {
        std::hint::black_box(&probe).add(std::hint::black_box("overhead_probe_total"), i);
    }
    let per_call = t.elapsed().as_secs_f64() / PROBE_CALLS as f64;

    let instr_cost = total_ops as f64 * per_call;
    let pct = 100.0 * instr_cost / total_wall.as_secs_f64().max(1e-9);
    println!();
    println!(
        "Disabled-instrumentation bound: {total_ops} hook call(s) across the gallery, \
         {:.1} ns/call disabled, ~{pct:.3}% of {:.3} ms analysis wall time (limit 5%)",
        per_call * 1e9,
        total_wall.as_secs_f64() * 1e3,
    );
    if pct >= 5.0 {
        eprintln!("mcc: disabled instrumentation overhead {pct:.3}% exceeds the 5% budget");
        return ExitCode::from(1);
    }
    println!("OK: instrumentation is free when disabled (within budget).");
    ExitCode::SUCCESS
}

/// `mcc demo ... --submit ADDR`: ship the demo's events to a daemon with
/// the live frame encoder and print the daemon's verdict.
fn submit_demo_trace(trace: &Trace, addr: &str) -> ExitCode {
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mcc: cannot connect to daemon at `{addr}`: {e}");
            return ExitCode::from(2);
        }
    };
    // Read the daemon's side on a clone of the socket so the `Welcome`
    // (and its capability list) arrives before we pick an event codec.
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mcc: cannot clone the daemon socket: {e}");
            return ExitCode::from(2);
        }
    };
    let mut reader = FrameReader::new(read_half);
    let mut writer = match mc_checker::profiler::TraceFrameWriter::new(
        stream,
        trace.nprocs(),
        SessionOpts::default(),
    ) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("mcc: shipping events to `{addr}` failed: {e}");
            return ExitCode::from(2);
        }
    };
    match reader.next_frame() {
        Ok(Some(Frame::Welcome { capabilities, .. })) => {
            if capabilities.iter().any(|c| c == "binary") {
                if let Err(e) = writer.set_batching(mc_checker::serve::CodecKind::Binary, 256) {
                    eprintln!("mcc: shipping events to `{addr}` failed: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Ok(Some(Frame::Error { message })) => {
            eprintln!("mcc: daemon refused the session: {message}");
            return ExitCode::from(2);
        }
        Ok(Some(_)) | Ok(None) => {
            eprintln!("mcc: daemon closed the connection without a welcome");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("mcc: reading the daemon's welcome failed: {e}");
            return ExitCode::from(2);
        }
    }
    let shipped = (|| {
        let mut idx = vec![0usize; trace.nprocs()];
        let mut remaining = trace.total_events();
        while remaining > 0 {
            for (r, i) in idx.iter_mut().enumerate() {
                if *i < trace.procs[r].events.len() {
                    let ev = &trace.procs[r].events[*i];
                    writer.event(
                        mc_checker::types::Rank(r as u32),
                        ev.kind.clone(),
                        trace.procs[r].loc(ev.loc),
                    )?;
                    *i += 1;
                    remaining -= 1;
                }
            }
        }
        writer.finish()
    })();
    if let Err(e) = shipped {
        eprintln!("mcc: shipping events to `{addr}` failed: {e}");
        return ExitCode::from(2);
    }
    loop {
        match reader.next_frame() {
            Ok(Some(Frame::Welcome { .. })) => {}
            Ok(Some(Frame::Ack { .. })) => {}
            Ok(Some(Frame::Report { json })) => {
                return match SessionReport::from_json(&json) {
                    Ok(report) => session_report_exit(&report, false),
                    Err(e) => {
                        eprintln!("mcc: unparseable session report: {e}");
                        ExitCode::from(2)
                    }
                };
            }
            Ok(Some(Frame::Error { message })) => {
                eprintln!("mcc: daemon refused the session: {message}");
                return ExitCode::from(2);
            }
            Ok(Some(_)) | Ok(None) => {
                eprintln!("mcc: daemon closed the connection without a report");
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("mcc: reading the daemon's report failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
}

/// Parses a `R:N` pair (rank, count) as used by `--abort` and `--hang`.
fn parse_rank_count(v: &str) -> Option<(u32, u64)> {
    let (r, n) = v.split_once(':')?;
    Some((r.parse().ok()?, n.parse().ok()?))
}

/// A demo case resolved to its default process count and body.
type ResolvedCase = (u32, fn(&mut Proc));

/// The non-gallery demo cases: default process count and body for a case
/// name and variant. The recovery gallery resolves separately because
/// its cases carry their own fault plans.
fn resolve_case(name: &str, fixed: bool) -> Option<ResolvedCase> {
    Some(match (name, fixed) {
        ("emulate", false) => (2, bugs::emulate::buggy),
        ("emulate", true) => (2, bugs::emulate::fixed),
        ("bt-broadcast", false) => (2, bugs::bt_broadcast::buggy),
        ("bt-broadcast", true) => (2, bugs::bt_broadcast::fixed),
        ("lockopts", false) => (64, bugs::lockopts::buggy),
        ("lockopts", true) => (64, bugs::lockopts::fixed),
        ("ping-pong", false) => (2, bugs::pingpong::buggy),
        ("ping-pong", true) => (2, bugs::pingpong::fixed),
        ("jacobi", false) => (4, bugs::jacobi::buggy),
        ("jacobi", true) => (4, bugs::jacobi::fixed),
        ("adlb", false) => (2, bugs::adlb::buggy),
        ("adlb", true) => (2, bugs::adlb::fixed),
        ("adlb-crash", _) => (2, bugs::adlb::buggy),
        ("mpi3-queue", false) => (4, bugs::mpi3_queue::buggy),
        ("mpi3-queue", true) => (4, bugs::mpi3_queue::fixed),
        ("fig2a", _) => (2, bugs::archetypes::fig2a),
        ("fig2b", _) => (3, bugs::archetypes::fig2b),
        ("fig2c", _) => (3, bugs::archetypes::fig2c),
        ("fig2d", _) => (2, bugs::archetypes::fig2d),
        _ => return None,
    })
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let Some(name) = args.first().map(String::as_str) else {
        eprintln!(
            "usage: mcc demo <case> [--fixed] [--procs N] [--trace-out DIR] \
             [--abort R:N] [--hang R:N] [--recover-policy abort|notify|checkpoint] \
             [--seed N] [--seed-sweep N] [--submit ADDR] [--profile out.json]"
        );
        return ExitCode::from(2);
    };
    let sink = ProfileSink::from_args(args);
    let fixed = args.iter().any(|a| a == "--fixed");
    let procs_override = flag_value(args, "--procs").and_then(|v| v.parse::<u32>().ok());

    let policy = match flag_value(args, "--recover-policy") {
        None | Some("abort") => None,
        Some("notify") => Some(RecoveryPolicy::Notify),
        Some("checkpoint") => Some(RecoveryPolicy::Checkpoint),
        Some(other) => {
            eprintln!("mcc: --recover-policy expects abort, notify or checkpoint, got `{other}`");
            return ExitCode::from(2);
        }
    };
    let mut faults = FaultPlan::none();
    for (flag, is_abort) in [("--abort", true), ("--hang", false)] {
        if let Some(v) = flag_value(args, flag) {
            let Some((rank, n)) = parse_rank_count(v) else {
                eprintln!("mcc: {flag} expects R:N (e.g. {flag} 1:6)");
                return ExitCode::from(2);
            };
            faults = faults.with(match (is_abort, policy) {
                // A survivable failure: the run continues, survivors
                // observe the death, and the analysis recovers.
                (true, Some(recover)) => Fault::RankFailure { rank, after_events: n, recover },
                (true, None) => Fault::RankAbort { rank, after_events: n },
                (false, _) => Fault::HangAtSync { rank, nth_sync: n },
            });
        }
    }
    if name == "adlb-crash" {
        faults = bugs::adlb::crash_mid_epoch_faults();
    }
    // The recovery gallery ships its own fault plan (a survivable rank
    // failure) unless the command line overrides it.
    let gallery_case = bugs::recovery_gallery::gallery()
        .into_iter()
        .find(|(spec, _, _)| spec.name.replace('_', "-") == name);
    if let Some((_, gallery_faults, _)) = &gallery_case {
        if faults.is_empty() {
            faults = gallery_faults();
        }
    }

    let (default_procs, body): (u32, fn(&mut Proc)) = if let Some((spec, _, gbody)) = gallery_case {
        (spec.nprocs, gbody)
    } else {
        match resolve_case(name, fixed) {
            Some(case) => case,
            None => {
                eprintln!("mcc: unknown demo `{name}` (try `mcc list`)");
                return ExitCode::from(2);
            }
        }
    };
    let procs = procs_override.unwrap_or(default_procs);

    let seed = match flag_value(args, "--seed") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("mcc: --seed expects an unsigned integer, got `{v}`");
                return ExitCode::from(2);
            }
        },
    };
    let sweep = match positive_flag::<u64>(args, "--seed-sweep") {
        Ok(v) => v,
        Err(code) => return code,
    };
    if (seed.is_some() || sweep.is_some()) && !faults.is_empty() {
        eprintln!(
            "mcc: --seed/--seed-sweep pick adversarial delivery schedules and cannot be \
             combined with fault injection (or a case that ships a fault plan)"
        );
        return ExitCode::from(2);
    }
    if let Some(n) = sweep {
        for flag in ["--trace-out", "--submit"] {
            if args.iter().any(|a| a == flag) {
                eprintln!("mcc: {flag} is per-run and cannot be combined with --seed-sweep");
                return ExitCode::from(2);
            }
        }
        // Random-search baseline: try N consecutive seeds under the
        // adversarial delivery policy, stop at the first dirty trace.
        let base = seed.unwrap_or(0xC11);
        eprintln!(
            "running {name}{} with {procs} ranks, sweeping {n} seed(s) from {base}...",
            if fixed { " (fixed)" } else { "" }
        );
        let session = AnalysisSession::builder().recorder(sink.obs.clone()).build();
        for s in base..base.saturating_add(n) {
            let report = session.run(&bugs::trace_adversarial(procs, s, body));
            if report.has_errors() {
                eprintln!(
                    "seed sweep: error first exposed at seed {s} ({} of {n} seed(s) tried); \
                     `mcc explore {name}` enumerates schedules instead of sampling them",
                    s - base + 1
                );
                return sink.finish(report_exit(&report, false, false));
            }
        }
        println!("seed sweep: no consistency error in {n} seed(s) (base seed {base})");
        return sink.finish(ExitCode::SUCCESS);
    }
    eprintln!("running {name}{} with {procs} ranks...", if fixed { " (fixed)" } else { "" });

    let (trace, sim_error): (Trace, Option<SimError>) = if faults.is_empty() {
        let trace = match seed {
            // The opted-in random baseline: one adversarial schedule.
            Some(s) => bugs::trace_adversarial(procs, s, body),
            None => bugs::trace_of(procs, 0xC11, body),
        };
        (trace, None)
    } else {
        // Rank deaths are the point of this run; keep their panic
        // backtraces out of the report.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (trace, error) = bugs::trace_under_faults(procs, 0xC11, faults, body);
        std::panic::set_hook(prev);
        if let Some(e) = &error {
            eprintln!("simulator: {e}");
        }
        (trace, error)
    };

    if let Some(dir) = flag_value(args, "--trace-out") {
        if let Err(e) = write_trace_dir(&trace, Path::new(dir)) {
            eprintln!("mcc: cannot write trace: {e}");
            return sink.finish(ExitCode::from(2));
        }
        eprintln!("trace written to {dir}");
    }

    if let Some(addr) = flag_value(args, "--submit") {
        return sink.finish(submit_demo_trace(&trace, addr));
    }

    let session = AnalysisSession::builder().recorder(sink.obs.clone()).build();
    if sim_error.is_none() {
        // A survivable rank failure leaves no simulator error; `run`
        // notices the failure markers and recovers (exit 5/6).
        let report = session.run(&trace);
        return sink.finish(report_exit(&report, false, false));
    }
    // The run was cut short: the trace may stop mid-epoch, so only the
    // degraded path is safe.
    let (mut report, info) = session.run_with_repair(&trace);
    report.mark_degraded();
    eprintln!("degraded-mode repair: {}", info.summary());
    sink.finish(report_exit(&report, false, false))
}

fn cmd_explore(args: &[String]) -> ExitCode {
    let Some(name) = args.first().map(String::as_str) else {
        eprintln!(
            "usage: mcc explore <case> [--fixed] [--procs N] [--max-schedules N] \
             [--max-depth N] [--threads N] [--format text|json] [--replay WITNESS]"
        );
        return ExitCode::from(2);
    };
    let json = match json_from_args(args) {
        Ok(j) => j,
        Err(code) => return code,
    };
    let fixed = args.iter().any(|a| a == "--fixed");
    let is_gallery = bugs::recovery_gallery::gallery()
        .into_iter()
        .any(|(spec, _, _)| spec.name.replace('_', "-") == name);
    if is_gallery || name == "adlb-crash" {
        eprintln!(
            "mcc: `{name}` ships a fault plan; `mcc explore` enumerates the delivery \
             schedules of fault-free runs (run it with `mcc demo {name}` instead)"
        );
        return ExitCode::from(2);
    }
    let Some((default_procs, body)) = resolve_case(name, fixed) else {
        eprintln!("mcc: unknown case `{name}` (try `mcc list`)");
        return ExitCode::from(2);
    };
    let procs =
        flag_value(args, "--procs").and_then(|v| v.parse::<u32>().ok()).unwrap_or(default_procs);
    let max_schedules = match positive_flag::<u64>(args, "--max-schedules") {
        Ok(v) => v.unwrap_or(256),
        Err(code) => return code,
    };
    let max_depth = match positive_flag::<usize>(args, "--max-depth") {
        Ok(v) => v.unwrap_or(64),
        Err(code) => return code,
    };
    let threads = match positive_flag::<usize>(args, "--threads") {
        Ok(v) => v.unwrap_or(1),
        Err(code) => return code,
    };
    let explorer = mc_checker::explore::Explorer::new(procs)
        .with_max_schedules(max_schedules)
        .with_max_depth(max_depth)
        .with_threads(threads);

    // Deadlocking and crashing schedules are expected outcomes of the
    // enumeration; keep their rank panics out of the output.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let code = if let Some(witness) = flag_value(args, "--replay") {
        match explorer.replay(witness, body) {
            Err(e) => {
                eprintln!("mcc: {e}");
                ExitCode::from(2)
            }
            Ok(outcome) => {
                eprintln!("replayed witness {} with {procs} rank(s)", outcome.witness);
                if let Some(e) = &outcome.sim_error {
                    eprintln!("simulator: {e}");
                }
                let findings_code = render_findings(&outcome.findings, json);
                if outcome.sim_error.is_some() {
                    // The witness reproduced a deadlock or crash.
                    ExitCode::from(1)
                } else {
                    findings_code
                }
            }
        }
    } else {
        eprintln!(
            "exploring {name}{} with {procs} rank(s), budget {max_schedules} schedule(s), \
             {threads} thread(s)...",
            if fixed { " (fixed)" } else { "" }
        );
        let report = explorer.run(body);
        if json {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.render());
        }
        ExitCode::from(report.exit_code())
    };
    std::panic::set_hook(prev);
    code
}

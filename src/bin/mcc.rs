//! `mcc` — the MC-Checker command line.
//!
//! ```text
//! mcc check <trace-dir> [--json] [--naive] [--parallel] [--streaming]
//!     Analyze a trace directory written by the Profiler
//!     (mcc_profiler::write_trace_dir) and print the findings.
//!
//! mcc demo <case> [--fixed] [--procs N] [--trace-out DIR]
//!     Run one of the built-in bug cases under the Profiler and check it.
//!     Cases: emulate, bt-broadcast, lockopts, ping-pong, jacobi, adlb,
//!     mpi3-queue, fig2a, fig2b, fig2c, fig2d.
//!
//! mcc table1
//!     Print the RMA compatibility matrix (paper Table I).
//!
//! mcc list
//!     List the available demo cases.
//! ```

use mc_checker::apps::bugs;
use mc_checker::core::streaming::StreamingChecker;
use mc_checker::prelude::*;
use mc_checker::profiler::{read_trace_dir, write_trace_dir};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("table1") => {
            print!("{}", mc_checker::types::compat::render_table1());
            ExitCode::SUCCESS
        }
        Some("list") => {
            println!("Bug-case demos (each has a buggy and a --fixed variant):");
            for (spec, _) in bugs::table2_cases() {
                println!(
                    "  {:<14} {:>3} procs  {:<18} {}",
                    spec.name, spec.nprocs, spec.error_location, spec.root_cause
                );
            }
            for (spec, _, _) in bugs::extension_cases() {
                println!(
                    "  {:<14} {:>3} procs  {:<18} {}",
                    spec.name, spec.nprocs, spec.error_location, spec.root_cause
                );
            }
            println!("  fig2a / fig2b / fig2c / fig2d   the Figure 2 archetypes");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: mcc <check|demo|table1|list> ...  (see `src/bin/mcc.rs` docs)");
            ExitCode::from(2)
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        eprintln!("usage: mcc check <trace-dir> [--json] [--naive] [--parallel] [--streaming]");
        return ExitCode::from(2);
    };
    let trace = match read_trace_dir(Path::new(dir)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mcc: cannot read trace directory `{dir}`: {e}");
            return ExitCode::from(2);
        }
    };
    let has = |f: &str| args.iter().any(|a| a == f);

    if has("--streaming") {
        let (findings, stats) = StreamingChecker::run_over(&trace);
        eprintln!(
            "streaming: {} events, {} regions flushed, peak buffer {} events",
            stats.total_events, stats.regions_flushed, stats.peak_buffered
        );
        return render_findings(&findings, has("--json"));
    }

    let opts = CheckOptions {
        naive_inter: has("--naive"),
        parallel: has("--parallel"),
        ..Default::default()
    };
    let report = McChecker::with_options(opts).check(&trace);
    eprintln!(
        "analyzed {} events: {} DAG nodes, {} regions, {} epochs ({} unmatched sync)",
        report.stats.total_events,
        report.stats.dag_nodes,
        report.stats.regions,
        report.stats.epochs,
        report.stats.unmatched_sync
    );
    let has_errors = report.has_errors();
    let code = render_findings(&report.diagnostics, has("--json"));
    if code == ExitCode::SUCCESS && has_errors {
        return ExitCode::from(1);
    }
    code
}

fn render_findings(findings: &[ConsistencyError], json: bool) -> ExitCode {
    if json {
        match serde_json::to_string_pretty(findings) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("mcc: serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else if findings.is_empty() {
        println!("MC-Checker: no memory consistency errors detected.");
    } else {
        for (i, e) in findings.iter().enumerate() {
            println!("--- finding {} ---\n{e}\n", i + 1);
        }
    }
    if findings.iter().any(|e| e.severity == Severity::Error) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let Some(name) = args.first().map(String::as_str) else {
        eprintln!("usage: mcc demo <case> [--fixed] [--procs N] [--trace-out DIR]");
        return ExitCode::from(2);
    };
    let fixed = args.iter().any(|a| a == "--fixed");
    let procs_override = args
        .iter()
        .position(|a| a == "--procs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u32>().ok());

    let (default_procs, body): (u32, fn(&mut Proc)) = match (name, fixed) {
        ("emulate", false) => (2, bugs::emulate::buggy),
        ("emulate", true) => (2, bugs::emulate::fixed),
        ("bt-broadcast", false) => (2, bugs::bt_broadcast::buggy),
        ("bt-broadcast", true) => (2, bugs::bt_broadcast::fixed),
        ("lockopts", false) => (64, bugs::lockopts::buggy),
        ("lockopts", true) => (64, bugs::lockopts::fixed),
        ("ping-pong", false) => (2, bugs::pingpong::buggy),
        ("ping-pong", true) => (2, bugs::pingpong::fixed),
        ("jacobi", false) => (4, bugs::jacobi::buggy),
        ("jacobi", true) => (4, bugs::jacobi::fixed),
        ("adlb", false) => (2, bugs::adlb::buggy),
        ("adlb", true) => (2, bugs::adlb::fixed),
        ("mpi3-queue", false) => (4, bugs::mpi3_queue::buggy),
        ("mpi3-queue", true) => (4, bugs::mpi3_queue::fixed),
        ("fig2a", _) => (2, bugs::archetypes::fig2a),
        ("fig2b", _) => (3, bugs::archetypes::fig2b),
        ("fig2c", _) => (3, bugs::archetypes::fig2c),
        ("fig2d", _) => (2, bugs::archetypes::fig2d),
        _ => {
            eprintln!("mcc: unknown demo `{name}` (try `mcc list`)");
            return ExitCode::from(2);
        }
    };
    let procs = procs_override.unwrap_or(default_procs);
    eprintln!("running {name}{} with {procs} ranks...", if fixed { " (fixed)" } else { "" });
    let trace = bugs::trace_of(procs, 0xC11, body);

    if let Some(dir) = args.iter().position(|a| a == "--trace-out").and_then(|i| args.get(i + 1)) {
        if let Err(e) = write_trace_dir(&trace, Path::new(dir)) {
            eprintln!("mcc: cannot write trace: {e}");
            return ExitCode::from(2);
        }
        eprintln!("trace written to {dir}");
    }

    let report = McChecker::new().check(&trace);
    print!("{}", report.render());
    if report.has_errors() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

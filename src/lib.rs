#![warn(missing_docs)]
//! # MC-Checker
//!
//! A full-system Rust reproduction of **"MC-Checker: Detecting Memory
//! Consistency Errors in MPI One-Sided Applications"** (Chen et al.,
//! SC 2014).
//!
//! MPI one-sided communication (RMA) decouples data movement from
//! synchronization: `MPI_Put`/`MPI_Get`/`MPI_Accumulate` are nonblocking
//! and complete only at the epoch-closing synchronization. Accessing the
//! involved buffers in between — from the same process or another — leaves
//! window memory undefined. MC-Checker finds those *memory consistency
//! errors* from an execution trace:
//!
//! 1. **ST-Analyzer** ([`st_analyzer`]) statically marks the variables
//!    that can alias RMA-exposed memory, so the Profiler instruments only
//!    relevant loads/stores;
//! 2. **Profiler** ([`mpi_sim`]'s tracer + [`profiler`]) records one-sided
//!    calls, synchronization, datatype/support calls, and the relevant
//!    memory accesses, per rank;
//! 3. **DN-Analyzer** ([`core`]) matches synchronization across ranks
//!    (Algorithm 1), builds the happens-before DAG with epoch semantics,
//!    extracts concurrent regions, and checks unordered operation pairs
//!    against the MPI-2.2 compatibility ruleset (Table I).
//!
//! The distributed substrate the paper ran on (MPICH on a cluster) is
//! replaced by [`mpi_sim`], an in-process simulated MPI runtime with
//! thread-per-rank processes and adversarial RMA completion timing.
//!
//! ## Quickstart
//!
//! ```
//! use mc_checker::prelude::*;
//!
//! // A buggy program: put then store to the same buffer in one epoch.
//! let result = run(SimConfig::new(2).with_seed(1), |p| {
//!     let wbuf = p.alloc_i32s(1);
//!     let win = p.win_create(wbuf, 4, CommId::WORLD);
//!     p.win_fence(win);
//!     if p.rank() == 0 {
//!         let buf = p.alloc_i32s(1);
//!         p.tstore_i32(buf, 7);
//!         p.put(buf, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
//!         p.tstore_i32(buf, 8); // races with the nonblocking put
//!     }
//!     p.win_fence(win);
//!     p.win_free(win);
//! })
//! .unwrap();
//!
//! let report = AnalysisSession::builder()
//!     .threads(4)
//!     .engine(Engine::Sweep)
//!     .build()
//!     .run(&result.trace.unwrap());
//! assert!(report.has_errors());
//! println!("{}", report.render());
//! ```

/// The CLI's exit-code contract, shared by `mcc check`, `mcc demo`,
/// `mcc explore` and `mcc submit`. The `mcc` usage text prints this
/// table verbatim, the
/// README quotes it, and `tests/recovery_pipeline.rs` asserts all three
/// stay in sync with [`exit_code_for`].
pub const EXIT_CODE_TABLE: &str = "\
  0  complete analysis, no errors
  1  complete analysis, errors found
  2  usage or I/O error
  3  degraded analysis, errors found
  4  degraded analysis, no errors
  5  recovered analysis (rank failure modeled), errors found
  6  recovered analysis (rank failure modeled), no errors
  7  exploration: schedule budget exhausted before covering the space (no errors found)";

/// Maps an analysis verdict to the documented process exit code (the
/// left column of [`EXIT_CODE_TABLE`]).
pub fn exit_code_for(confidence: mcc_core::report::Confidence, has_errors: bool) -> u8 {
    use mcc_core::report::Confidence;
    match (confidence, has_errors) {
        (Confidence::Complete, false) => 0,
        (Confidence::Complete, true) => 1,
        (Confidence::Degraded, true) => 3,
        (Confidence::Degraded, false) => 4,
        (Confidence::Recovered, true) => 5,
        (Confidence::Recovered, false) => 6,
    }
}

pub use mcc_apps as apps;
pub use mcc_codec as codec;
pub use mcc_core as core;
pub use mcc_explore as explore;
pub use mcc_mpi_sim as mpi_sim;
pub use mcc_obs as obs;
pub use mcc_profiler as profiler;
pub use mcc_serve as serve;
pub use mcc_st_analyzer as st_analyzer;
pub use mcc_types as types;

/// The names most programs need.
pub mod prelude {
    pub use mcc_core::{
        AnalysisSession, CheckReport, ConsistencyError, Engine, ErrorScope, Severity,
    };
    pub use mcc_mpi_sim::{run, DeliveryPolicy, Instrument, Proc, SimConfig};
    pub use mcc_obs::RecorderHandle;
    pub use mcc_types::{CommId, DataMap, DatatypeId, LockKind, Rank, ReduceOp, Trace, WinId};
}

//! Minimal in-repo stand-in for `rayon`.
//!
//! Two entry points:
//!
//! * [`par_map`] — a genuinely multithreaded indexed map over `0..n` on
//!   `std::thread::scope` workers pulling from an atomic work counter.
//!   Results are returned **in index order regardless of thread count or
//!   scheduling**, which is what the checker's deterministic-merge
//!   contract needs. There is no work stealing; shards are claimed
//!   whole, which is ideal for the checker's coarse, similar-sized
//!   shards.
//! * [`prelude::IntoParallelIterator`] — the sequential compatibility
//!   trait kept for older call sites: `into_par_iter()` yields the plain
//!   iterator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every index in `0..n` on up to `threads` OS threads and
/// returns the results in index order.
///
/// `threads <= 1` (or `n <= 1`) runs inline on the caller's thread with
/// no synchronization at all, so the single-threaded path has zero
/// overhead over a plain loop. Worker threads claim indices from a shared
/// atomic counter; each result is written into its own slot, so the
/// output order is always `f(0), f(1), ..., f(n-1)`.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let cells: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                *cells[i].lock().expect("result slot poisoned") = Some(v);
            });
        }
    });
    cells
        .into_iter()
        .map(|c| c.into_inner().expect("result slot poisoned").expect("worker filled every slot"))
        .collect()
}

pub mod prelude {
    /// Conversion into a "parallel" iterator (sequential in this shim).
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Converts `self` into an iterator ("parallel" in the real rayon).
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v: Vec<u32> = (0..4u32).into_par_iter().flat_map(|i| vec![i, i]).collect();
        assert_eq!(v, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 4, 8] {
            let v = par_map(100, threads, |i| i * i);
            assert_eq!(v, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn par_map_runs_on_multiple_threads() {
        use std::collections::HashSet;
        let ids = par_map(64, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "work should spread over more than one thread");
    }

    #[test]
    fn par_map_edge_cases() {
        assert!(par_map(0, 4, |i| i).is_empty());
        assert_eq!(par_map(1, 4, |i| i), vec![0]);
        assert_eq!(par_map(3, 0, |i| i), vec![0, 1, 2], "zero threads clamps to one");
    }
}

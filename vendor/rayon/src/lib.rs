//! Offline stand-in for `rayon`.
//!
//! Exposes the `into_par_iter()` entry point the checker's parallel mode
//! uses, but executes sequentially: `into_par_iter()` simply yields the
//! standard iterator, so adapter chains (`flat_map`, `map`, `collect`,
//! ...) are the plain `Iterator` methods. Results are therefore in
//! deterministic order; the caller's post-sort for "parallel
//! interleaving" is a no-op but stays correct. Swap in the real rayon
//! when a registry is available to get actual work-stealing parallelism.

pub mod prelude {
    /// Conversion into a "parallel" iterator (sequential in this shim).
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Converts `self` into an iterator ("parallel" in the real rayon).
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v: Vec<u32> = (0..4u32).into_par_iter().flat_map(|i| vec![i, i]).collect();
        assert_eq!(v, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }
}

//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the unpoisoned `lock()`/`read()`/`write()` API the simulator
//! uses, plus `Condvar::wait_for`. Poisoning is swallowed (a panicked
//! rank thread must not wedge the others — the simulator has its own
//! abort protocol), which matches parking_lot's no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion backed by `std::sync::Mutex`, without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// Holds the inner std guard in an `Option` so [`Condvar::wait_for`] can
/// temporarily take ownership of it (std's wait API consumes the guard).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.0.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard { inner: Some(g) }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader-writer lock backed by `std::sync::RwLock`, without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }
}

/// Shared guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.0.wait(g).unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self.0.wait_timeout(g, timeout).unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(50));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

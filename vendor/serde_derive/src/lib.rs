//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits without depending on `syn`/`quote` (unavailable offline): the
//! input item is parsed directly from the `proc_macro::TokenStream` and the
//! impl is emitted as a source string. Only the shapes this workspace uses
//! are supported — non-generic structs (named, tuple, unit) and enums with
//! unit/tuple/struct variants, no `#[serde(...)]` attributes. Field *types*
//! are never inspected: the generated code builds struct literals and lets
//! inference pick the right `from_value` impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i)?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("serde_derive: unsupported item `{other}`")),
    };
    let name = expect_ident(&tokens, &mut i)?;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the vendored derive"
        ));
    }
    let kind = if is_enum {
        let body = expect_group(&tokens, &mut i, Delimiter::Brace)?;
        ItemKind::Enum(parse_variants(body)?)
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            _ => return Err(format!("serde_derive: malformed struct `{name}`")),
        }
    };
    Ok(Item { name, kind })
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // e.g. pub(crate)
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("serde_derive: expected identifier, found {other:?}")),
    }
}

fn expect_group(
    tokens: &[TokenTree],
    i: &mut usize,
    delim: Delimiter,
) -> Result<TokenStream, String> {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            Ok(g.stream())
        }
        other => Err(format!("serde_derive: expected {delim:?} group, found {other:?}")),
    }
}

/// Advances past a type (after `:`), stopping at a `,` outside any
/// angle-bracket nesting. Parens/brackets arrive pre-grouped, so only
/// `<`/`>` depth needs manual tracking.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!("serde_derive: expected `:` after `{name}`, found {other:?}"))
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts comma-separated fields of a tuple struct/variant at angle depth 0.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream())?);
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional explicit discriminant (`= expr`).
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Arr(::std::vec![{}])", elems.join(", "))
        }
        ItemKind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", pairs.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::__private::tag({vn:?}, ::serde::Serialize::to_value(__f0))"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::__private::tag({vn:?}, ::serde::Value::Arr(::std::vec![{}]))",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::__private::tag({vn:?}, ::serde::Value::Obj(::std::vec![{}]))",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(::serde::__private::elem(__v, {i})?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name}({}))", elems.join(", "))
        }
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__v, {f:?})?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => return ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!(
                                    "::serde::Deserialize::from_value(::serde::__private::elem(__inner, {i})?)?"
                                ))
                                .collect();
                            Some(format!(
                                "{vn:?} => return ::std::result::Result::Ok({name}::{vn}({})),",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__inner, {f:?})?)?"
                                ))
                                .collect();
                            Some(format!(
                                "{vn:?} => return ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let mut s = String::new();
            if !unit_arms.is_empty() {
                s.push_str(&format!(
                    "if let ::serde::Value::Str(__s) = __v {{\n\
                         match __s.as_str() {{ {} _ => {{}} }}\n\
                     }}\n",
                    unit_arms.join(" ")
                ));
            }
            if !data_arms.is_empty() {
                s.push_str(&format!(
                    "if let ::std::option::Option::Some((__k, __inner)) = ::serde::__private::variant(__v) {{\n\
                         match __k {{ {} _ => {{}} }}\n\
                     }}\n",
                    data_arms.join(" ")
                ));
            }
            s.push_str(&format!(
                "::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown {name} variant: {{:?}}\", __v)))"
            ));
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

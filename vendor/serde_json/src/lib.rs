//! Offline stand-in for `serde_json`: prints and parses the vendored
//! `serde::Value` tree as standard JSON.
//!
//! The parser is written for hostile input — the profiler's
//! degraded-mode reader feeds it torn and bit-flipped trace lines — so it
//! is recursive-descent with an explicit nesting cap (no stack overflow on
//! `[[[[...`), checked numeric conversion, and error returns (never
//! panics) on malformed text.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes to a JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing bytes at offset {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // Keep floats recognizably floats on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: try to combine; otherwise
                            // substitute (hostile input must not panic).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.literal("\\u") {
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // char boundaries are safe to recover).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            let x: f64 = text.parse().map_err(|_| self.err("bad number"))?;
            Ok(Value::Float(x))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                // Fall back for absurdly long digit strings.
                Err(_) => {
                    let x: f64 = text.parse().map_err(|_| self.err("bad number"))?;
                    Ok(Value::Float(x))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&"a\"b\nc".to_string()).unwrap(), "\"a\\\"b\\nc\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\nc\"").unwrap(), "a\"b\nc");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![Some(1u64), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        let back: Vec<Option<u64>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u8, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn u64_max_is_lossless() {
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for s in ["", "{", "[1,", "\"abc", "{\"a\"", "nul", "-", "\u{1}", "[}", "1e", "{\"a\":}"] {
            assert!(from_str::<Vec<u64>>(s).is_err(), "input {s:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let s = "[".repeat(100_000);
        assert!(parse_value_str(&s).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(), "A😀");
        // Lone surrogate degrades to the replacement character.
        assert_eq!(from_str::<String>("\"\\ud800x\"").unwrap(), "\u{FFFD}x");
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `Strategy` with `prop_map`/`prop_flat_map`, ranges, tuples, `Just`,
//! `collection::vec`, `prop_oneof!`, and the `proptest!`/`prop_assert*`
//! macros — on top of a deterministic per-test RNG. Differences from the
//! real crate: no shrinking (a failing case reports its inputs via
//! `Debug` but is not minimized) and no persistence files; each test
//! derives its seed from its own path, so failures reproduce exactly
//! across runs.

/// Deterministic RNG and failure plumbing used by the generated tests.
pub mod test_runner {
    use std::fmt;

    /// Deterministic per-case random generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a generator for one test case from the test's path and
        /// the case index, so every run of the suite sees the same cases.
        pub fn for_case(test_path: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }

    /// A failed property assertion (carries the rendered message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl From<String> for TestCaseError {
        fn from(s: String) -> Self {
            Self(s)
        }
    }

    impl From<&str> for TestCaseError {
        fn from(s: &str) -> Self {
            Self(s.to_string())
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f`.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Builds a union; panics on an empty alternative list.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self(arms)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    ((self.start as i128) + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    ((lo as i128) + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; keep the offline suite brisk
        // while still exploring a meaningful sample.
        Self { cases: 64 }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...)` block
/// becomes a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; ) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strat = ($($strat,)*);
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ($($pat,)*) =
                    $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}: {}",
                        stringify!($name),
                        __case,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

/// Fails the enclosing property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), __l, __r
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!(
                    "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), ::std::format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __l
            )));
        }
    }};
}

/// Uniform random choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..100).prop_map(|x| x * 2);
        let mut r1 = TestRng::for_case("t", 0);
        let mut r2 = TestRng::for_case("t", 0);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn vec_respects_size() {
        let s = collection::vec(0u8..10, 3..6);
        let mut rng = TestRng::for_case("v", 1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|x| x)];
        let mut rng = TestRng::for_case("o", 2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && (seen[3] || seen[4]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 0u32..50, v in collection::vec(0u8..4, 0..4)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.len(), "lengths {}", v.len());
            prop_assert_ne!(x + 1, 0);
        }
    }
}

//! Offline stand-in for `serde`.
//!
//! This workspace builds without crates.io access, so the external serde
//! stack is replaced by a small in-repo equivalent. Instead of serde's
//! visitor architecture, everything round-trips through one dynamic
//! [`Value`] tree: `Serialize` renders a value into the tree and
//! `Deserialize` rebuilds it. `serde_json` (also vendored) prints and
//! parses the tree as JSON. The derive macros in `serde_derive` generate
//! impls of these traits with serde's default data layout (externally
//! tagged enums, transparent newtypes), so the on-disk trace format stays
//! conventional JSON.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// Dynamic serialization tree — the interchange format between
/// `Serialize`, `Deserialize`, and the JSON front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers the full `u64`/`i64` ranges losslessly).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

// A `Value` is its own serialization (mirrors real serde_json, where
// `Value` implements both traits), so codecs written against value
// trees compose with the generic `Serialize`/`Deserialize` surface.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across hashers.
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            _ => Err(Error::msg("expected object")),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let mut it = items.iter();
                        let tuple = ($(
                            {
                                let _ = $idx;
                                $name::from_value(it.next().ok_or_else(|| Error::msg("tuple too short"))?)?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(Error::msg("tuple too long"));
                        }
                        Ok(tuple)
                    }
                    _ => Err(Error::msg("expected array for tuple")),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Support code for the derive macros — not a public API.
#[doc(hidden)]
pub mod __private {
    use super::{Error, Value};

    /// Looks up a named field in an object value.
    pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
        match v {
            Value::Obj(_) => {
                v.get(name).ok_or_else(|| Error::msg(format!("missing field `{name}`")))
            }
            _ => Err(Error::msg(format!("expected object with field `{name}`"))),
        }
    }

    /// Indexes into an array value.
    pub fn elem(v: &Value, idx: usize) -> Result<&Value, Error> {
        match v {
            Value::Arr(items) => {
                items.get(idx).ok_or_else(|| Error::msg(format!("missing tuple element {idx}")))
            }
            _ => Err(Error::msg("expected array")),
        }
    }

    /// Decomposes an externally tagged enum value (`{"Variant": data}`).
    pub fn variant(v: &Value) -> Option<(&str, &Value)> {
        match v {
            Value::Obj(fields) if fields.len() == 1 => Some((fields[0].0.as_str(), &fields[0].1)),
            _ => None,
        }
    }

    /// Wraps variant data in its external tag.
    pub fn tag(name: &str, data: Value) -> Value {
        Value::Obj(vec![(name.to_string(), data)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some = Some(7u32).to_value();
        let none: Value = Option::<u32>::None.to_value();
        assert_eq!(Option::<u32>::from_value(&some).unwrap(), Some(7));
        assert_eq!(Option::<u32>::from_value(&none).unwrap(), None);
    }

    #[test]
    fn int_range_checked() {
        let v = Value::Int(300);
        assert!(u8::from_value(&v).is_err());
        assert_eq!(u16::from_value(&v).unwrap(), 300);
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let tree = v.to_value();
        let back: Vec<(u32, String)> = Deserialize::from_value(&tree).unwrap();
        assert_eq!(v, back);
    }
}

//! Offline stand-in for `rand_chacha`.
//!
//! The simulator only needs `ChaCha8Rng` as a *deterministic, seedable,
//! well-mixed* stream for adversarial delivery decisions — the actual
//! ChaCha keystream is irrelevant (and nothing here is cryptographic), so
//! this shim provides the same two-trait surface backed by xorshift*
//! mixing over a SplitMix-initialized state.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator with the `ChaCha8Rng` name/API.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: u64,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so nearby seeds do not yield nearby streams.
        let mut s = seed ^ 0x6a09_e667_f3bc_c908;
        for _ in 0..4 {
            s = (s ^ (s >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        Self { state: s | 1 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xorshift64* — small, fast, and plenty for scheduling decisions.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}

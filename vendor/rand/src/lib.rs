//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `rand` dependency is replaced by this minimal, API-compatible
//! subset: the `Rng`/`RngCore`/`SeedableRng` traits and a deterministic
//! `StdRng`. The generator is a SplitMix64 — statistically fine for the
//! simulator's adversarial scheduling and the synthetic benchmark
//! workloads, which only need reproducible, well-mixed streams (nothing
//! here is cryptographic).

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: core::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128).wrapping_sub(range.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((range.start as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 high-quality mantissa bits, as the real rand does.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Provided generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The default deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..14);
            assert!((10..14).contains(&v));
            let s = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}

//! Offline stand-in for `criterion`.
//!
//! Supports the benchmark-group API surface used by `crates/bench` and
//! reports simple wall-clock statistics (min/mean over a handful of
//! timed samples, plus derived throughput) instead of criterion's full
//! statistical machinery. Passing `--test` (as `cargo test` does for
//! bench targets) runs every closure exactly once, so a wedged benchmark
//! is a test failure rather than a silent hang.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Reads CLI flags (only `--test` is honored).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            test_mode: self.test_mode,
        }
    }
}

/// Throughput annotation for the current benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { text: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = if self.test_mode { 1 } else { self.samples };
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut timed = 0u32;
        for _ in 0..samples {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                let per_iter = b.elapsed / b.iters;
                best = best.min(per_iter);
                total += per_iter;
                timed += 1;
            }
        }
        let name = &self.name;
        if timed == 0 {
            println!("{name}/{id}: no iterations recorded");
            return;
        }
        let mean = total / timed;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{name}/{id}: mean {mean:?}, best {best:?} ({timed} samples){rate}");
    }
}

/// Passed to each benchmark closure; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times one call of `routine` (criterion runs many; one honest
    /// sample is enough for this shim's coarse reporting).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert!(count >= 2, "closure ran once per sample");
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(99).to_string(), "99");
    }
}

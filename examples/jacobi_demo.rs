//! Domain-scenario example: a Jacobi solver with RMA halo exchange,
//! demonstrating the whole workflow a user would follow —
//!
//! 1. run the application under the Profiler,
//! 2. persist the per-rank trace files to disk (as the paper's online
//!    Profiler does),
//! 3. load them back and run the offline DN-Analyzer,
//! 4. fix the bug and show the checker going quiet.
//!
//! ```text
//! cargo run --release --example jacobi_demo
//! ```

use mc_checker::apps::bugs::jacobi;
use mc_checker::prelude::*;
use mc_checker::profiler::{read_trace_dir, write_trace_dir};

fn main() {
    let dir = std::env::temp_dir().join(format!("mcc-jacobi-{}", std::process::id()));

    // 1. Run the buggy solver (missing mid-iteration fence) under the
    //    Profiler.
    println!("running buggy jacobi (4 ranks, missing halo fence)...");
    let result = run(
        SimConfig::new(4).with_seed(7).with_delivery(DeliveryPolicy::Adversarial),
        jacobi::buggy,
    )
    .expect("runs");
    let trace = result.trace.unwrap();

    // 2. Persist per-rank trace files.
    write_trace_dir(&trace, &dir).expect("trace written");
    println!("trace files written to {}", dir.display());

    // 3. Offline analysis from disk.
    let loaded = read_trace_dir(&dir).expect("trace read back");
    assert_eq!(loaded, trace, "lossless trace round-trip");
    let report = AnalysisSession::new().run(&loaded);
    println!("\n{}", report.render());

    // 4. The fix: restore the double-fence protocol.
    println!("running fixed jacobi...");
    let fixed = run(
        SimConfig::new(4).with_seed(7).with_delivery(DeliveryPolicy::Adversarial),
        jacobi::fixed,
    )
    .expect("runs");
    let report = AnalysisSession::new().run(&fixed.trace.unwrap());
    println!("{}", report.render());

    std::fs::remove_dir_all(&dir).ok();
}

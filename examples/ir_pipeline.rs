//! The static-analysis pipeline end to end: ST-Analyzer on a mini-C
//! program, analysis-guided instrumentation, and detection — including
//! the BT-broadcast case study written as IR with the paper's Figure 6
//! line numbers, so the diagnostics cite the same lines the paper does.
//!
//! ```text
//! cargo run --example ir_pipeline
//! ```

use mc_checker::prelude::*;
use mc_checker::st_analyzer::{
    analyze, ir::MpiCall, ir::PtrExpr, ir::StmtKind as K, run_program, s, Arg, BinOp, Expr as E,
    Func, InterpConfig, Program,
};

/// BT-broadcast's child-side polling loop (paper Figure 6), in IR form.
fn bt_broadcast_ir() -> Program {
    Program {
        file: "bt_broadcast.c".into(),
        funcs: vec![Func {
            name: "main".into(),
            params: vec![],
            body: vec![
                s(0, K::DeclArray { name: "flag".into(), len: E::Const(1) }),
                s(
                    0,
                    K::Mpi(MpiCall::WinCreate {
                        buf: "flag".into(),
                        len: E::Const(1),
                        win: "win".into(),
                    }),
                ),
                s(
                    0,
                    K::If {
                        cond: E::bin(BinOp::Eq, E::Rank, E::Const(0)),
                        // Parent: set its flag, then wait at the barrier.
                        then_body: vec![
                            s(
                                0,
                                K::Store {
                                    ptr: "flag".into(),
                                    index: E::Const(0),
                                    value: E::Const(1),
                                },
                            ),
                            s(0, K::Mpi(MpiCall::Barrier)),
                        ],
                        // Child: Figure 6 lines 1..8.
                        else_body: vec![
                            s(0, K::Mpi(MpiCall::Barrier)),
                            s(
                                1,
                                K::Mpi(MpiCall::Lock {
                                    kind: LockKind::Shared,
                                    target: E::Const(0),
                                    win: "win".into(),
                                }),
                            ),
                            s(3, K::DeclScalar { name: "check".into(), init: E::Const(0) }),
                            s(
                                4,
                                K::While {
                                    cond: E::bin(BinOp::Eq, E::var("check"), E::Const(0)),
                                    body: vec![s(
                                        5,
                                        K::Mpi(MpiCall::Get {
                                            origin: "check".into(),
                                            count: E::Const(1),
                                            target: E::Const(0),
                                            disp: E::Const(0),
                                            win: "win".into(),
                                        }),
                                    )],
                                    max_iters: 32,
                                },
                            ),
                            s(
                                8,
                                K::Mpi(MpiCall::Unlock { target: E::Const(0), win: "win".into() }),
                            ),
                        ],
                    },
                ),
                s(9, K::Mpi(MpiCall::Barrier)),
                s(10, K::Mpi(MpiCall::WinFree { win: "win".into() })),
            ],
        }],
    }
}

/// A helper-function program showing label propagation through calls.
fn aliasing_ir() -> Program {
    Program {
        file: "alias.c".into(),
        funcs: vec![
            Func {
                name: "main".into(),
                params: vec![],
                body: vec![
                    s(1, K::DeclArray { name: "data".into(), len: E::Const(8) }),
                    s(
                        2,
                        K::AssignPtr {
                            name: "view".into(),
                            value: PtrExpr::Offset("data".into(), E::Const(2)),
                        },
                    ),
                    s(3, K::DeclArray { name: "unrelated".into(), len: E::Const(8) }),
                    s(4, K::Call { func: "publish".into(), args: vec![Arg::Ptr("view".into())] }),
                ],
            },
            Func {
                name: "publish".into(),
                params: vec![("buf".into(), true)],
                body: vec![s(
                    10,
                    K::Mpi(MpiCall::Put {
                        origin: "buf".into(),
                        count: E::Const(1),
                        target: E::Const(0),
                        disp: E::Const(0),
                        win: "w".into(),
                    }),
                )],
            },
        ],
    }
}

fn main() {
    // --- ST-Analyzer on the aliasing example --------------------------
    let prog = aliasing_ir();
    let report = analyze(&prog);
    println!("ST-Analyzer report for alias.c ({} labels):", report.label_count());
    for f in ["main", "publish"] {
        let vars: Vec<&str> = report.relevant_in(f).collect();
        println!("  {f}: {vars:?}");
    }
    assert!(report.is_relevant("main", "data"), "alias chain reaches the array");
    assert!(!report.is_relevant("main", "unrelated"));

    // --- the BT-broadcast case study, IR edition -----------------------
    let prog = bt_broadcast_ir();
    let st = analyze(&prog);
    println!(
        "\nST-Analyzer marks in bt_broadcast.c: flag relevant: {}, check relevant: {}",
        st.is_relevant("main", "flag"),
        st.is_relevant("main", "check")
    );

    let outcome = run_program(
        &prog,
        InterpConfig {
            sim: SimConfig::new(2).with_seed(3).with_delivery(DeliveryPolicy::AtClose),
            report: Some(st),
        },
    )
    .expect("program runs");
    println!(
        "executed: {} events, {} livelocked loop(s) observed",
        outcome.result.stats.total_events(),
        outcome.livelocks
    );

    let report = AnalysisSession::new().run(&outcome.result.trace.unwrap());
    println!("\n{}", report.render());
    // The paper: conflicting operations at lines 4 and 5 of Figure 6.
    let e = report.errors().next().expect("bug detected");
    let lines = [e.a.loc.line, e.b.loc.line];
    println!("conflicting lines: {lines:?} (paper: 4 and 5)");
}

//! Quickstart: run a small MPI one-sided program on the simulated
//! runtime, check its trace, and print the diagnostics — the full
//! ST-Analyzer → Profiler → DN-Analyzer pipeline of the paper's Figure 5
//! in one file.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mc_checker::prelude::*;

fn main() {
    // --- a distributed counter with a fetch-and-increment bug ---------
    // Every rank exposes one i32 in a window. Rank 0 "increments" rank
    // 1's counter: get, add one, put back. The get is nonblocking, and
    // the add happens inside the epoch — the Figure 1 bug.
    let result = run(SimConfig::new(2).with_seed(42).with_delivery(DeliveryPolicy::AtClose), |p| {
        p.set_func("fetch_and_inc");
        let counter = p.alloc_i32s(1);
        p.poke_i32(counter, 100);
        let win = p.win_create(counter, 4, CommId::WORLD);
        p.barrier(CommId::WORLD);
        if p.rank() == 0 {
            let out = p.alloc_i32s(1);
            p.win_lock(LockKind::Shared, 1, win);
            p.get(out, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            let v = p.tload_i32(out); // BUG: the get may not be done
            p.tstore_i32(out, v + 1); // BUG: and this may be overwritten
            p.put(out, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            p.win_unlock(1, win);
            println!("[rank 0] read counter = {v} (expected 100)");
        }
        p.barrier(CommId::WORLD);
        if p.rank() == 1 {
            println!("[rank 1] counter after increment = {}", p.peek_i32(counter));
        }
        p.win_free(win);
    })
    .expect("simulation runs");

    // --- offline analysis ---------------------------------------------
    let trace = result.trace.expect("tracing enabled by default");
    println!(
        "\nProfiler logged {} events across {} ranks; analyzing...\n",
        trace.total_events(),
        trace.nprocs()
    );
    let report = AnalysisSession::new().run(&trace);
    print!("{}", report.render());
    println!(
        "analysis: {} events, {} DAG nodes, {} regions, {} epochs",
        report.stats.total_events,
        report.stats.dag_nodes,
        report.stats.regions,
        report.stats.epochs
    );
    std::process::exit(if report.has_errors() { 1 } else { 0 });
}

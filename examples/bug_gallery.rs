//! The bug gallery: runs all four Figure 2 error archetypes plus the five
//! Table II applications (buggy and fixed variants) and prints what the
//! checker finds for each.
//!
//! ```text
//! cargo run --release --example bug_gallery
//! ```

use mc_checker::apps::bugs::{self, archetypes};
use mc_checker::prelude::*;

fn check(name: &str, nprocs: u32, body: impl Fn(&mut Proc) + Send + Sync) {
    let trace = bugs::trace_of(nprocs, 99, body);
    let report = AnalysisSession::new().run(&trace);
    let errors = report.errors().count();
    let warnings = report.warnings().count();
    println!("=== {name} ({nprocs} procs): {errors} error(s), {warnings} warning(s) ===");
    for e in report.diagnostics.iter().take(2) {
        println!("{e}\n");
    }
}

fn main() {
    println!("--- Figure 2 archetypes ---------------------------------\n");
    for (name, nprocs, body, scope) in archetypes::all() {
        println!("[expected: {scope}]");
        check(name, nprocs, body);
    }

    println!("--- Table II applications (buggy) ------------------------\n");
    for (spec, body) in bugs::table2_cases() {
        check(spec.name, spec.nprocs, body);
    }

    println!("--- Table II applications (fixed: expect silence) --------\n");
    for (spec, body) in bugs::fixed_cases() {
        check(&format!("{} (fixed)", spec.name), spec.nprocs, body);
    }

    println!("--- the original lockopts (exclusive lock → warning) -----\n");
    check("lockopts/exclusive", 8, bugs::lockopts::original_exclusive);

    println!("--- extension case studies (ADLB §II-B, MPI-3 §V) --------\n");
    for (spec, buggy, fixed) in bugs::extension_cases() {
        check(spec.name, spec.nprocs, buggy);
        check(&format!("{} (fixed)", spec.name), spec.nprocs, fixed);
    }
}

//! Integration test for the ST-Analyzer claim (paper §IV-A / §VII-B):
//! analysis-guided instrumentation records strictly fewer load/store
//! events than instrument-everything, while detecting exactly the same
//! memory consistency errors.

use mc_checker::prelude::*;
use mc_checker::st_analyzer::{
    analyze, ir::MpiCall, ir::StmtKind as K, run_program, s, BinOp, Expr as E, Func, InterpConfig,
    Program,
};

/// An IR program with a Figure 2a bug plus plenty of irrelevant local
/// computation the instrument-all mode would also record.
fn buggy_program() -> Program {
    Program {
        file: "prog.mc".into(),
        funcs: vec![Func {
            name: "main".into(),
            params: vec![],
            body: vec![
                s(1, K::DeclArray { name: "wbuf".into(), len: E::Const(4) }),
                s(
                    2,
                    K::Mpi(MpiCall::WinCreate {
                        buf: "wbuf".into(),
                        len: E::Const(4),
                        win: "w".into(),
                    }),
                ),
                // Irrelevant computation: a loop over a scratch array.
                s(3, K::DeclArray { name: "scratch".into(), len: E::Const(16) }),
                s(4, K::DeclScalar { name: "i".into(), init: E::Const(0) }),
                s(
                    5,
                    K::While {
                        cond: E::bin(BinOp::Lt, E::var("i"), E::Const(16)),
                        body: vec![
                            s(
                                6,
                                K::Store {
                                    ptr: "scratch".into(),
                                    index: E::var("i"),
                                    value: E::var("i"),
                                },
                            ),
                            s(
                                7,
                                K::Assign {
                                    name: "i".into(),
                                    value: E::bin(BinOp::Add, E::var("i"), E::Const(1)),
                                },
                            ),
                        ],
                        max_iters: 100,
                    },
                ),
                s(8, K::Mpi(MpiCall::Fence { win: "w".into() })),
                s(
                    9,
                    K::If {
                        cond: E::bin(BinOp::Eq, E::Rank, E::Const(0)),
                        then_body: vec![
                            s(10, K::DeclArray { name: "buf".into(), len: E::Const(1) }),
                            s(
                                11,
                                K::Store {
                                    ptr: "buf".into(),
                                    index: E::Const(0),
                                    value: E::Const(7),
                                },
                            ),
                            s(
                                12,
                                K::Mpi(MpiCall::Put {
                                    origin: "buf".into(),
                                    count: E::Const(1),
                                    target: E::Const(1),
                                    disp: E::Const(0),
                                    win: "w".into(),
                                }),
                            ),
                            // The bug: overwrite the origin inside the epoch.
                            s(
                                13,
                                K::Store {
                                    ptr: "buf".into(),
                                    index: E::Const(0),
                                    value: E::Const(8),
                                },
                            ),
                        ],
                        else_body: vec![],
                    },
                ),
                s(14, K::Mpi(MpiCall::Fence { win: "w".into() })),
                s(15, K::Mpi(MpiCall::WinFree { win: "w".into() })),
            ],
        }],
    }
}

fn run_mode(report: Option<mc_checker::st_analyzer::Report>) -> (u64, usize) {
    let prog = buggy_program();
    let outcome =
        run_program(&prog, InterpConfig { sim: SimConfig::new(2).with_seed(5), report }).unwrap();
    let mem_events = outcome.result.stats.total_mem_events();
    let check = AnalysisSession::new().run(&outcome.result.trace.unwrap());
    (mem_events, check.errors().count())
}

#[test]
fn guided_instrumentation_smaller_but_equally_effective() {
    let prog = buggy_program();
    let st = analyze(&prog);
    // The analysis marks exactly the window buffer and the RMA origin.
    assert!(st.is_relevant("main", "wbuf"));
    assert!(st.is_relevant("main", "buf"));
    assert!(!st.is_relevant("main", "scratch"));
    assert!(!st.is_relevant("main", "i"));

    let (events_guided, errors_guided) = run_mode(Some(st));
    let (events_all, errors_all) = run_mode(None);

    assert!(errors_guided > 0, "bug detected under guided instrumentation");
    assert_eq!(errors_guided, errors_all, "same detections either way");
    assert!(
        events_guided * 3 < events_all,
        "guided instrumentation logs a small fraction of accesses: {events_guided} vs {events_all}"
    );
}

#[test]
fn diagnostics_cite_ir_lines() {
    let prog = buggy_program();
    let st = analyze(&prog);
    let outcome =
        run_program(&prog, InterpConfig { sim: SimConfig::new(2).with_seed(5), report: Some(st) })
            .unwrap();
    let report = AnalysisSession::new().run(&outcome.result.trace.unwrap());
    let e = report.errors().next().unwrap();
    assert_eq!(e.a.loc.file, "prog.mc");
    let lines = [e.a.loc.line, e.b.loc.line];
    assert!(lines.contains(&12), "the put at line 12: {lines:?}");
    assert!(lines.contains(&13), "the store at line 13: {lines:?}");
}

//! Socket-level protocol fuzzing against a live daemon. Every attack —
//! seeded random garbage, torn frame headers, single-bit flips on valid
//! frames, hostile event batches, oversized length prefixes — must end
//! in a typed `Error` frame or a clean close, never a wedged thread, a
//! leaked session, or a panic; afterwards the daemon still answers
//! control queries and completes a normal submission.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::core::Confidence;
use mc_checker::prelude::*;
use mc_checker::serve::proto::{
    encode_frame_with, write_frame_with, EventBatch, Frame, FrameReader, SessionOpts,
    FRAME_HEADER_LEN, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use mc_checker::serve::{
    client, CodecKind, ProtoError, Registry, ServeConfig, Server, ServerHandle,
};
use mc_checker::types::{EventKind, SourceLoc};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn start_server() -> (String, ServerHandle, Arc<Registry>, thread::JoinHandle<()>) {
    let cfg = ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let registry = server.registry();
    let join = thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle, registry, join)
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    stream
}

/// Reads frames until the server closes the connection (or stops
/// talking for `patience`), returning every frame received. A fuzzed
/// connection must end this way — the read side erroring out with
/// anything other than a timeout means the daemon broke framing.
fn drain_to_close(mut reader: FrameReader<TcpStream>, patience: Duration) -> Vec<Frame> {
    let mut got = Vec::new();
    let start = Instant::now();
    loop {
        match reader.next_frame() {
            Ok(Some(f)) => got.push(f),
            Ok(None) => return got,
            Err(ProtoError::Idle) => {
                if start.elapsed() >= patience {
                    return got;
                }
            }
            // The server hung up mid-frame or with unparseable bytes on
            // the wire: from the fuzzer's seat that is still a close,
            // and the post-fuzz liveness checks decide whether the
            // daemon survived.
            Err(_) => return got,
        }
    }
}

fn wait_until(mut f: impl FnMut() -> bool, timeout: Duration) -> bool {
    let start = Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() >= timeout {
            return false;
        }
        thread::sleep(Duration::from_millis(20));
    }
}

/// After the abuse: no session may linger, control queries must answer,
/// and a well-formed submission must complete — the daemon took the
/// fuzzing without wedging.
fn assert_daemon_healthy(addr: &str, registry: &Registry) {
    assert!(
        wait_until(
            || {
                let f = registry.fleet();
                f.active == 0 && f.parked == 0
            },
            Duration::from_secs(10)
        ),
        "fuzzed connections leaked sessions: {:?}",
        registry.fleet()
    );
    let stats = client::stats_tcp(addr).expect("stats after fuzzing");
    assert!(stats.contains("sessions_active"), "{stats}");
    let health = client::health_tcp(addr).expect("health after fuzzing");
    assert!(health.contains("schema_version"), "{health}");
    let trace = trace_of(2, 0xF00D, bugs::pingpong::buggy);
    let report = client::submit_tcp(addr, &trace, &SessionOpts::default())
        .expect("a normal submission after fuzzing");
    assert_eq!(report.confidence, Confidence::Complete);
}

/// Pure random byte blobs: whatever the bytes happen to decode as —
/// an oversized length, a checksum mismatch, garbage JSON — the server
/// answers with nothing but typed `Error` frames and closes.
#[test]
fn random_garbage_never_wedges_the_daemon() {
    let (addr, handle, registry, join) = start_server();
    let mut rng = StdRng::seed_from_u64(0x6172_6261_6765);
    for round in 0..48 {
        let len = rng.gen_range(1usize..2048);
        let blob: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut stream = connect(&addr);
        // A blob may exceed the socket buffer after the server already
        // gave up on the connection; a send error is an acceptable end.
        let _ = stream.write_all(&blob);
        for frame in drain_to_close(FrameReader::new(stream), Duration::from_millis(500)) {
            assert!(
                matches!(frame, Frame::Error { .. }),
                "round {round}: garbage elicited a non-Error frame: {frame:?}"
            );
        }
    }
    assert_daemon_healthy(&addr, &registry);
    handle.shutdown();
    join.join().unwrap();
}

/// A valid handshake followed by a torn frame header (the connection
/// dies mid-header): the session must be salvaged, not leaked.
#[test]
fn torn_header_after_handshake_salvages_the_session() {
    let (addr, handle, registry, join) = start_server();
    let mut rng = StdRng::seed_from_u64(0x7465_6172);
    for _ in 0..8 {
        let stream = connect(&addr);
        let mut reader = FrameReader::new(stream);
        let opts = SessionOpts::default();
        write_frame_with(
            reader.get_mut(),
            &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1, opts },
            CodecKind::Json,
        )
        .unwrap();
        match reader.next_frame() {
            Ok(Some(Frame::Welcome { .. })) => {}
            other => panic!("expected Welcome, got {other:?}"),
        }
        // Tear the stream inside the 8-byte header.
        let cut = rng.gen_range(1usize..FRAME_HEADER_LEN);
        let valid = encode_frame_with(
            &Frame::Event {
                seq: 0,
                rank: 0,
                kind: EventKind::Barrier { comm: CommId::WORLD },
                loc: SourceLoc::unknown(),
            },
            CodecKind::Json,
        );
        reader.get_mut().write_all(&valid[..cut]).unwrap();
        drop(reader);
    }
    assert_daemon_healthy(&addr, &registry);
    handle.shutdown();
    join.join().unwrap();
}

/// Single-bit corruption of a well-formed first frame: every flip lands
/// in the length, the checksum, or the payload, and each is caught as a
/// typed `Error` (checksum mismatch, oversized length) or a clean close
/// while the server waits for bytes that never come.
#[test]
fn bit_flipped_frames_are_rejected_with_typed_errors() {
    let (addr, handle, registry, join) = start_server();
    let opts = SessionOpts::default();
    let pristine = encode_frame_with(
        &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 2, opts },
        CodecKind::Json,
    );
    let mut rng = StdRng::seed_from_u64(0x666C_6970);
    for round in 0..64 {
        let mut bytes = pristine.clone();
        let bit = rng.gen_range(0usize..bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let mut stream = connect(&addr);
        let _ = stream.write_all(&bytes);
        let frames = drain_to_close(FrameReader::new(stream), Duration::from_millis(500));
        for frame in &frames {
            assert!(
                matches!(frame, Frame::Error { .. }),
                "round {round} (bit {bit}): corrupted Hello elicited {frame:?}"
            );
        }
        assert!(
            frames.len() <= 1,
            "round {round} (bit {bit}): one bad frame drew {} replies",
            frames.len()
        );
    }
    assert_daemon_healthy(&addr, &registry);
    handle.shutdown();
    join.join().unwrap();
}

/// Structurally hostile `EventBatch`es behind intact checksums — a loc
/// index past its table, disagreeing column lengths — in both payload
/// codecs: the validator answers with a typed `Error` naming the
/// defect and the session ends salvaged, not wedged.
#[test]
fn hostile_batches_get_typed_errors_in_both_codecs() {
    let (addr, handle, registry, join) = start_server();
    for codec in [CodecKind::Json, CodecKind::Binary] {
        let hostile: [(EventBatch, &str); 2] = [
            (
                EventBatch {
                    first_seq: 0,
                    ranks: vec![0, 0],
                    loc_idx: vec![0, 99],
                    kinds: vec![
                        EventKind::Barrier { comm: CommId::WORLD },
                        EventKind::Barrier { comm: CommId::WORLD },
                    ],
                    locs: vec![SourceLoc::unknown()],
                },
                "loc index",
            ),
            (
                EventBatch {
                    first_seq: 0,
                    ranks: vec![0, 0, 0],
                    loc_idx: vec![0],
                    kinds: vec![EventKind::Barrier { comm: CommId::WORLD }],
                    locs: vec![SourceLoc::unknown()],
                },
                "columns disagree",
            ),
        ];
        for (batch, needle) in hostile {
            let stream = connect(&addr);
            let mut reader = FrameReader::new(stream);
            write_frame_with(
                reader.get_mut(),
                &Frame::Hello {
                    version: PROTOCOL_VERSION,
                    nprocs: 1,
                    opts: SessionOpts::default(),
                },
                CodecKind::Json,
            )
            .unwrap();
            match reader.next_frame() {
                Ok(Some(Frame::Welcome { .. })) => {}
                other => panic!("expected Welcome, got {other:?}"),
            }
            reader.get_mut().write_all(&encode_frame_with(&Frame::Batch(batch), codec)).unwrap();
            let frames = drain_to_close(reader, Duration::from_secs(2));
            let err = frames.iter().find_map(|f| match f {
                Frame::Error { message } => Some(message.clone()),
                _ => None,
            });
            match err {
                Some(message) => assert!(
                    message.contains(needle),
                    "{codec:?}: error should name the defect ({needle}): {message}"
                ),
                None => panic!("{codec:?}: hostile batch drew no Error: {frames:?}"),
            }
        }
    }
    assert_daemon_healthy(&addr, &registry);
    handle.shutdown();
    join.join().unwrap();
}

/// A length prefix past `MAX_FRAME_LEN` is refused from the header
/// alone — the server must answer with the typed oversize `Error`
/// without waiting for (or reading) the announced payload.
#[test]
fn oversized_length_prefix_is_refused_from_the_header() {
    let (addr, handle, registry, join) = start_server();
    for announced in [MAX_FRAME_LEN + 1, u32::MAX as usize] {
        let mut header = Vec::with_capacity(FRAME_HEADER_LEN);
        header.extend_from_slice(&(announced as u32).to_le_bytes());
        header.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        let mut stream = connect(&addr);
        stream.write_all(&header).unwrap();
        let started = Instant::now();
        let frames = drain_to_close(FrameReader::new(stream), Duration::from_secs(2));
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "oversize rejection waited on payload bytes"
        );
        match frames.as_slice() {
            [Frame::Error { message }] => {
                assert!(message.contains("exceeds"), "{message}");
            }
            other => panic!("expected exactly one oversize Error, got {other:?}"),
        }
    }
    assert_daemon_healthy(&addr, &registry);
    handle.shutdown();
    join.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: a valid two-frame stream (`Hello` + one event) cut at
    /// ANY byte position and continued with arbitrary junk draws
    /// nothing but the handshake reply and typed `Error`s, leaks no
    /// session, and leaves the daemon answering a fresh handshake.
    #[test]
    fn prefix_plus_junk_streams_never_wedge_the_daemon(
        cut in 0usize..600,
        junk in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 1..256),
    ) {
        let (addr, handle, registry, join) = start_server();
        let mut bytes = encode_frame_with(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                nprocs: 1,
                opts: SessionOpts::default(),
            },
            CodecKind::Json,
        );
        bytes.extend(encode_frame_with(
            &Frame::Event {
                seq: 0,
                rank: 0,
                kind: EventKind::Barrier { comm: CommId::WORLD },
                loc: SourceLoc::unknown(),
            },
            CodecKind::Json,
        ));
        let cut = cut.min(bytes.len());
        let mut stream = connect(&addr);
        let _ = stream.write_all(&bytes[..cut]);
        let _ = stream.write_all(&junk);
        for frame in drain_to_close(FrameReader::new(stream), Duration::from_millis(500)) {
            // A cut past a complete event may salvage the session when
            // the junk corrupts the stream: a Degraded Report next to
            // the typed Error is the contract, not a violation.
            prop_assert!(
                matches!(
                    frame,
                    Frame::Welcome { .. } | Frame::Error { .. } | Frame::Report { .. }
                ),
                "cut {cut}: mutated stream elicited {frame:?}"
            );
        }
        prop_assert!(
            wait_until(
                || {
                    let f = registry.fleet();
                    f.active == 0 && f.parked == 0
                },
                Duration::from_secs(10)
            ),
            "mutated stream leaked a session: {:?}",
            registry.fleet()
        );
        // The daemon still shakes hands after the abuse.
        let stream = connect(&addr);
        let mut reader = FrameReader::new(stream);
        write_frame_with(
            reader.get_mut(),
            &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1, opts: SessionOpts::default() },
            CodecKind::Json,
        )
        .unwrap();
        let replies = drain_to_close(reader, Duration::from_millis(500));
        prop_assert!(
            matches!(replies.first(), Some(Frame::Welcome { .. })),
            "no Welcome after fuzzing: {replies:?}"
        );
        handle.shutdown();
        join.join().unwrap();
    }
}

//! End-to-end robustness of the crash-recovery path: a trace directory
//! damaged at an arbitrary byte — truncated or bit-flipped — must always
//! come back through the tolerant reader and the degraded-mode checker
//! without a panic, and pre-damage findings must survive truncation of
//! an unrelated rank.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::core::Confidence;
use mc_checker::prelude::*;
use mc_checker::profiler::{read_trace_dir_tolerant, stream_trace_dir};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

/// A scratch trace directory holding the `adlb` bug case, written with
/// the streaming (crash-consistent) writer.
fn written_trace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcc-it-degraded-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    let trace = trace_of(2, 5, bugs::adlb::buggy);
    stream_trace_dir(&trace, &dir).unwrap();
    dir
}

#[test]
fn truncating_one_rank_keeps_other_ranks_findings() {
    let dir = written_trace("truncate-rank");
    // Rank 1 is the passive side of the adlb bug; cutting its file
    // mid-line must not lose rank 0's intra-epoch put/store conflict.
    let victim = dir.join("rank-1.jsonl");
    let len = fs::metadata(&victim).unwrap().len();
    let data = fs::read(&victim).unwrap();
    fs::write(&victim, &data[..(len as usize) / 2]).unwrap();

    let (trace, health) = read_trace_dir_tolerant(&dir).unwrap();
    assert!(!health.is_complete());
    let (mut report, _info) = AnalysisSession::new().run_with_repair(&trace);
    if !health.is_complete() {
        report.mark_degraded();
    }
    assert_eq!(report.confidence, Confidence::Degraded);
    assert!(
        report.errors().any(|e| {
            [e.a.op.as_str(), e.b.op.as_str()].contains(&"MPI_Put")
                && [e.a.op.as_str(), e.b.op.as_str()].contains(&"store")
        }),
        "rank 0's put/store conflict must survive rank 1's truncation:\n{}",
        report.render()
    );
    fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite of the crash-consistency work: cut the on-disk trace at
    /// ANY byte offset; reader + degraded checker must never panic.
    #[test]
    fn truncation_anywhere_never_panics_the_checker(cut in 0usize..600) {
        let dir = written_trace("prop-cut");
        let victim = dir.join("rank-0.jsonl");
        let data = fs::read(&victim).unwrap();
        let cut = cut.min(data.len());
        fs::write(&victim, &data[..cut]).unwrap();

        let (trace, _health) = read_trace_dir_tolerant(&dir).unwrap();
        let (report, _info) = AnalysisSession::new().run_with_repair(&trace);
        let _ = report.render();
        fs::remove_dir_all(&dir).ok();
    }

    /// Flip any single bit of the serialized trace: the line either
    /// still parses, parses into different-but-droppable events, or is
    /// counted corrupt — never a panic anywhere downstream.
    #[test]
    fn bit_flip_anywhere_never_panics_the_checker(pos in 0usize..600, bit in 0u8..8) {
        let dir = written_trace("prop-flip");
        let victim = dir.join("rank-1.jsonl");
        let mut data = fs::read(&victim).unwrap();
        if !data.is_empty() {
            let pos = pos % data.len();
            data[pos] ^= 1 << bit;
            fs::write(&victim, &data).unwrap();
        }

        let (trace, _health) = read_trace_dir_tolerant(&dir).unwrap();
        let (report, _info) = AnalysisSession::new().run_with_repair(&trace);
        let _ = report.render();
        fs::remove_dir_all(&dir).ok();
    }
}

/// A ring of puts: every rank stores a private scratch cell and puts it
/// to its right neighbour's window, two fences apart.
fn put_ring(p: &mut Proc) {
    let right = (p.rank() + 1) % p.size();
    let buf = p.alloc_i32s(1);
    let win = p.win_create(buf, 4, CommId::WORLD);
    let scratch = p.alloc_i32s(1);
    p.win_fence(win);
    p.tstore_i32(scratch, p.rank() as i32);
    p.put(scratch, 1, DatatypeId::INT, right, 0, 1, DatatypeId::INT, win);
    p.win_fence(win);
    p.win_free(win);
}

/// Two ranks abort in the *same* epoch (both die at the closing fence
/// with a put in flight): the sanitizer must synthesize a close for each
/// torn log, and the repaired trace must survive the full pipeline as a
/// degraded report.
#[test]
fn simultaneous_aborts_in_one_epoch_sanitize_cleanly() {
    use mc_checker::apps::bugs::trace_under_faults;
    use mc_checker::mpi_sim::{Fault, FaultPlan};

    let faults = FaultPlan::none()
        .with(Fault::RankAbort { rank: 1, after_events: 4 })
        .with(Fault::RankAbort { rank: 2, after_events: 4 });
    let (trace, error) = trace_under_faults(4, 7, faults, put_ring);
    assert!(error.is_some(), "simultaneous aborts are a failed run");

    let (repaired, info) = mc_checker::core::sanitize(&trace);
    // Both aborted ranks died inside their access epoch; the survivors
    // deadlocked in the fence waiting for them (aborts, unlike survivable
    // failures, do not complete collectives around the corpse), so every
    // log is torn — but each by exactly its one open epoch.
    for r in [1u32, 2] {
        let n = info.synthesized.iter().filter(|(rank, _)| rank.0 == r).count();
        assert_eq!(n, 1, "aborted rank {r} has exactly one open epoch to close:\n{info:?}");
    }

    let (mut report, _info) = AnalysisSession::new().run_with_repair(&trace);
    report.mark_degraded();
    assert_eq!(report.confidence, Confidence::Degraded);
    let _ = report.render();
    let _ = repaired; // the sanitized trace itself is checked above
}

/// Two ranks fail *survivably* in the same epoch: the survivors complete
/// the fence around both corpses, log both notifications, and the
/// checker recovers — quarantining both in-flight puts — rather than
/// degrading.
#[test]
fn two_survivable_failures_in_one_epoch_recover() {
    use mc_checker::apps::bugs::trace_under_faults;
    use mc_checker::mpi_sim::{Fault, FaultPlan, RecoveryPolicy};
    use mc_checker::types::EventKind;

    let faults = FaultPlan::none()
        .with(Fault::RankFailure { rank: 1, after_events: 4, recover: RecoveryPolicy::Notify })
        .with(Fault::RankFailure { rank: 2, after_events: 4, recover: RecoveryPolicy::Notify });
    let (trace, error) = trace_under_faults(4, 7, faults, put_ring);
    assert!(error.is_none(), "survivable failures are not an error");

    // Each survivor observes both deaths.
    for r in [0usize, 3] {
        let markers = trace.procs[r]
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RankFailed { .. }))
            .count();
        assert_eq!(markers, 2, "survivor {r} logs one marker per corpse");
    }

    let report = AnalysisSession::new().run(&trace);
    assert_eq!(
        report.confidence,
        Confidence::Recovered,
        "two survivable failures still recover:\n{}",
        report.render()
    );
    // Nobody read the undelivered bytes, so the recovered report is clean.
    assert!(report.errors().next().is_none(), "{}", report.render());
}

//! End-to-end robustness of the crash-recovery path: a trace directory
//! damaged at an arbitrary byte — truncated or bit-flipped — must always
//! come back through the tolerant reader and the degraded-mode checker
//! without a panic, and pre-damage findings must survive truncation of
//! an unrelated rank.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::core::Confidence;
use mc_checker::prelude::*;
use mc_checker::profiler::{read_trace_dir_tolerant, stream_trace_dir};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

/// A scratch trace directory holding the `adlb` bug case, written with
/// the streaming (crash-consistent) writer.
fn written_trace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcc-it-degraded-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    let trace = trace_of(2, 5, bugs::adlb::buggy);
    stream_trace_dir(&trace, &dir).unwrap();
    dir
}

#[test]
fn truncating_one_rank_keeps_other_ranks_findings() {
    let dir = written_trace("truncate-rank");
    // Rank 1 is the passive side of the adlb bug; cutting its file
    // mid-line must not lose rank 0's intra-epoch put/store conflict.
    let victim = dir.join("rank-1.jsonl");
    let len = fs::metadata(&victim).unwrap().len();
    let data = fs::read(&victim).unwrap();
    fs::write(&victim, &data[..(len as usize) / 2]).unwrap();

    let (trace, health) = read_trace_dir_tolerant(&dir).unwrap();
    assert!(!health.is_complete());
    let (mut report, _info) = AnalysisSession::new().run_with_repair(&trace);
    if !health.is_complete() {
        report.mark_degraded();
    }
    assert_eq!(report.confidence, Confidence::Degraded);
    assert!(
        report.errors().any(|e| {
            [e.a.op.as_str(), e.b.op.as_str()].contains(&"MPI_Put")
                && [e.a.op.as_str(), e.b.op.as_str()].contains(&"store")
        }),
        "rank 0's put/store conflict must survive rank 1's truncation:\n{}",
        report.render()
    );
    fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite of the crash-consistency work: cut the on-disk trace at
    /// ANY byte offset; reader + degraded checker must never panic.
    #[test]
    fn truncation_anywhere_never_panics_the_checker(cut in 0usize..600) {
        let dir = written_trace("prop-cut");
        let victim = dir.join("rank-0.jsonl");
        let data = fs::read(&victim).unwrap();
        let cut = cut.min(data.len());
        fs::write(&victim, &data[..cut]).unwrap();

        let (trace, _health) = read_trace_dir_tolerant(&dir).unwrap();
        let (report, _info) = AnalysisSession::new().run_with_repair(&trace);
        let _ = report.render();
        fs::remove_dir_all(&dir).ok();
    }

    /// Flip any single bit of the serialized trace: the line either
    /// still parses, parses into different-but-droppable events, or is
    /// counted corrupt — never a panic anywhere downstream.
    #[test]
    fn bit_flip_anywhere_never_panics_the_checker(pos in 0usize..600, bit in 0u8..8) {
        let dir = written_trace("prop-flip");
        let victim = dir.join("rank-1.jsonl");
        let mut data = fs::read(&victim).unwrap();
        if !data.is_empty() {
            let pos = pos % data.len();
            data[pos] ^= 1 << bit;
            fs::write(&victim, &data).unwrap();
        }

        let (trace, _health) = read_trace_dir_tolerant(&dir).unwrap();
        let (report, _info) = AnalysisSession::new().run_with_repair(&trace);
        let _ = report.render();
        fs::remove_dir_all(&dir).ok();
    }
}

//! Integration tests for nonblocking point-to-point synchronization —
//! the paper's §V names the omission of "nonblocking send with its
//! corresponding wait" as a false-positive source in its prototype; this
//! reproduction implements the matching (isend → the receive's MPI_Wait)
//! so such programs analyze cleanly.

use mc_checker::prelude::*;

#[test]
fn isend_irecv_roundtrip_moves_data() {
    run(SimConfig::new(2).with_seed(3), |p| {
        let buf = p.alloc_i32s(2);
        if p.rank() == 0 {
            p.poke_i32(buf, 8);
            p.poke_i32(buf + 4, 9);
            let req = p.isend(buf, 2, DatatypeId::INT, 1, 5, CommId::WORLD);
            p.wait_req(req);
        } else {
            let req = p.irecv(buf, 2, DatatypeId::INT, 0, 5, CommId::WORLD);
            p.wait_req(req);
            assert_eq!(p.peek_i32(buf), 8);
            assert_eq!(p.peek_i32(buf + 4), 9);
        }
    })
    .unwrap();
}

/// A put synchronized through an isend/irecv+wait handshake is ordered —
/// the checker must stay silent (this is exactly the §V false-positive
/// pattern).
#[test]
fn nonblocking_handshake_orders_rma() {
    let result = run(SimConfig::new(2).with_seed(3).with_delivery(DeliveryPolicy::AtClose), |p| {
        let wbuf = p.alloc_i32s(1);
        let win = p.win_create(wbuf, 4, CommId::WORLD);
        let flag = p.alloc_i32s(1);
        p.win_fence(win);
        if p.rank() == 0 {
            // Put, close the epoch, then signal with a nonblocking send.
            let src = p.alloc_i32s(1);
            p.tstore_i32(src, 4);
            p.put(src, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            p.win_fence(win);
            let req = p.isend(flag, 1, DatatypeId::INT, 1, 0, CommId::WORLD);
            p.wait_req(req);
        } else {
            p.win_fence(win);
            let req = p.irecv(flag, 1, DatatypeId::INT, 0, 0, CommId::WORLD);
            p.wait_req(req);
            // Ordered after the put via fence + handshake: safe.
            let _ = p.tload_i32(wbuf);
            p.tstore_i32(wbuf, 0);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    })
    .unwrap();
    let report = AnalysisSession::new().run(&result.trace.unwrap());
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
}

/// The handshake only orders one direction: the receiver's accesses
/// *before* its wait are still concurrent with the sender's.
#[test]
fn access_before_wait_still_races() {
    let result = run(SimConfig::new(2).with_seed(3).with_delivery(DeliveryPolicy::AtClose), |p| {
        let wbuf = p.alloc_i32s(1);
        let win = p.win_create(wbuf, 4, CommId::WORLD);
        let flag = p.alloc_i32s(1);
        p.barrier(CommId::WORLD);
        if p.rank() == 0 {
            let src = p.alloc_i32s(1);
            p.win_lock(LockKind::Shared, 1, win);
            p.put(src, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            p.win_unlock(1, win);
            let req = p.isend(flag, 1, DatatypeId::INT, 1, 0, CommId::WORLD);
            p.wait_req(req);
        } else {
            let req = p.irecv(flag, 1, DatatypeId::INT, 0, 0, CommId::WORLD);
            // BUG: touch the window before the wait — the put is not
            // ordered yet.
            p.tstore_i32(wbuf, 1);
            p.wait_req(req);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    })
    .unwrap();
    let report = AnalysisSession::new().run(&result.trace.unwrap());
    assert!(report.has_errors(), "store before the wait races with the put");
    // Move the store after the wait: clean.
    let result = run(SimConfig::new(2).with_seed(3).with_delivery(DeliveryPolicy::AtClose), |p| {
        let wbuf = p.alloc_i32s(1);
        let win = p.win_create(wbuf, 4, CommId::WORLD);
        let flag = p.alloc_i32s(1);
        p.barrier(CommId::WORLD);
        if p.rank() == 0 {
            let src = p.alloc_i32s(1);
            p.win_lock(LockKind::Shared, 1, win);
            p.put(src, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            p.win_unlock(1, win);
            let req = p.isend(flag, 1, DatatypeId::INT, 1, 0, CommId::WORLD);
            p.wait_req(req);
        } else {
            let req = p.irecv(flag, 1, DatatypeId::INT, 0, 0, CommId::WORLD);
            p.wait_req(req);
            p.tstore_i32(wbuf, 1);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    })
    .unwrap();
    let report = AnalysisSession::new().run(&result.trace.unwrap());
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
}

/// Mixed blocking/nonblocking matching: a blocking send can satisfy an
/// irecv and vice versa.
#[test]
fn mixed_blocking_nonblocking_matching() {
    let result = run(SimConfig::new(2).with_seed(3), |p| {
        let a = p.alloc_i32s(1);
        let b = p.alloc_i32s(1);
        if p.rank() == 0 {
            p.send(a, 1, DatatypeId::INT, 1, 1, CommId::WORLD); // blocking send
            let req = p.irecv(b, 1, DatatypeId::INT, 1, 2, CommId::WORLD);
            p.wait_req(req);
        } else {
            let req = p.irecv(a, 1, DatatypeId::INT, 0, 1, CommId::WORLD);
            p.wait_req(req);
            p.send(b, 1, DatatypeId::INT, 0, 2, CommId::WORLD);
        }
    })
    .unwrap();
    let report = AnalysisSession::new().run(&result.trace.unwrap());
    assert_eq!(report.stats.unmatched_sync, 0, "all four calls matched");
}

//! Integration test for Table II: every bug case detected end-to-end at
//! the paper's process counts, with the expected scope, root-cause pair,
//! and severity — and every fixed variant clean.

use mc_checker::apps::bugs::{self, fixed_cases, table2_cases, trace_of};
use mc_checker::prelude::*;

#[test]
fn all_five_bugs_detected_at_paper_scale() {
    for (spec, body) in table2_cases() {
        let trace = trace_of(spec.nprocs, 0xdead, body);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors(), "{} not detected", spec.name);
        // Scope matches the paper's "error location" column.
        let wants_cross = spec.error_location.contains("across");
        assert!(
            report
                .errors()
                .any(|e| matches!(e.scope, ErrorScope::CrossProcess { .. }) == wants_cross),
            "{}: no finding in the expected location `{}`:\n{}",
            spec.name,
            spec.error_location,
            report.render()
        );
        // Diagnostics carry file/line/function for both sides.
        for e in report.errors() {
            assert!(e.a.loc.line > 0, "{}", spec.name);
            assert!(!e.a.loc.func.is_empty());
            assert!(e.b.loc.line > 0);
        }
    }
}

#[test]
fn no_false_positives_on_fixed_variants() {
    for (spec, body) in fixed_cases() {
        let trace = trace_of(spec.nprocs, 0xdead, body);
        let report = AnalysisSession::new().run(&trace);
        assert_eq!(
            report.diagnostics.len(),
            0,
            "{} (fixed) flagged:\n{}",
            spec.name,
            report.render()
        );
    }
}

#[test]
fn detection_is_scale_independent() {
    // "MC-Checker's detection capability is not affected by the scale of
    // the system": lockopts detected from 4 up to 64 ranks.
    for nprocs in [4u32, 16, 64] {
        let trace = trace_of(nprocs, 0xdead, bugs::lockopts::buggy);
        let report = AnalysisSession::new().run(&trace);
        assert!(report.has_errors(), "lockopts at {nprocs} ranks");
    }
}

#[test]
fn exclusive_lock_demotion_matches_paper() {
    // "For the original bug with the exclusive lock, we can also detect
    // it but report only a warning."
    let trace = trace_of(8, 0xdead, bugs::lockopts::original_exclusive);
    let report = AnalysisSession::new().run(&trace);
    assert!(!report.has_errors());
    assert!(report.warnings().next().is_some());
}

#[test]
fn detection_independent_of_checker_options() {
    for (spec, body) in table2_cases() {
        let trace = trace_of(spec.nprocs.min(8), 0xdead, body);
        let baseline = AnalysisSession::new().run(&trace).diagnostics.len();
        for (name, session) in [
            ("naive engine", AnalysisSession::builder().engine(Engine::Naive).build()),
            ("no region partitioning", AnalysisSession::builder().partition_regions(false).build()),
            ("4 threads", AnalysisSession::builder().threads(4).build()),
            ("naive matching", AnalysisSession::builder().naive_matching(true).build()),
        ] {
            let n = session.run(&trace).diagnostics.len();
            assert_eq!(n, baseline, "{} with {name}", spec.name);
        }
    }
}

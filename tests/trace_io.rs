//! Integration test for the Profiler→DN-Analyzer file boundary: traces
//! survive the on-disk round trip byte-exactly and produce identical
//! reports, mirroring the paper's offline analysis workflow.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::prelude::*;
use mc_checker::profiler::{read_trace_dir, write_trace_dir};

#[test]
fn reports_identical_after_disk_round_trip() {
    let dir = std::env::temp_dir().join(format!("mcc-it-roundtrip-{}", std::process::id()));
    for (spec, body) in bugs::table2_cases() {
        if spec.nprocs > 8 {
            continue; // keep the I/O test snappy
        }
        let trace = trace_of(spec.nprocs, 3, body);
        write_trace_dir(&trace, &dir).unwrap();
        let loaded = read_trace_dir(&dir).unwrap();
        assert_eq!(trace, loaded, "{}: lossless round trip", spec.name);
        let a = AnalysisSession::new().run(&trace);
        let b = AnalysisSession::new().run(&loaded);
        assert_eq!(a.diagnostics, b.diagnostics, "{}", spec.name);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn big_trace_round_trip() {
    // A heavier trace with datatypes, groups and sub-communicators.
    let result = run(SimConfig::new(4).with_seed(11), |p| {
        let world = p.comm_group(CommId::WORLD);
        let evens = p.group_incl(world, &[0, 2]);
        let sub = p.comm_create(CommId::WORLD, evens);
        let col = p.type_vector(4, 1, 4, DatatypeId::INT);
        let mat = p.alloc_i32s(16);
        let win = p.win_create(mat, 64, CommId::WORLD);
        p.win_fence(win);
        if p.rank() == 0 {
            let src = p.alloc_i32s(4);
            p.put(src, 4, DatatypeId::INT, 1, 0, 1, col, win);
        }
        p.win_fence(win);
        if let Some(c) = sub {
            p.barrier(c);
        }
        p.win_free(win);
    })
    .unwrap();
    let trace = result.trace.unwrap();
    let dir = std::env::temp_dir().join(format!("mcc-it-big-{}", std::process::id()));
    write_trace_dir(&trace, &dir).unwrap();
    let loaded = read_trace_dir(&dir).unwrap();
    assert_eq!(trace, loaded);
    std::fs::remove_dir_all(&dir).ok();
}

/// Failure traces — with `rank_failed`, `MPI_Win_reexpose`, `checkpoint`
/// and `restore` markers — survive the disk round trip byte-exactly, and
/// the recovered report is identical on both sides.
#[test]
fn recovery_markers_survive_the_disk_round_trip() {
    use mc_checker::apps::bugs::{recovery_gallery, trace_under_faults};
    use mc_checker::types::EventKind;

    let dir = std::env::temp_dir().join(format!("mcc-it-recovery-rt-{}", std::process::id()));
    for (spec, faults, body) in recovery_gallery::gallery() {
        let (trace, error) = trace_under_faults(spec.nprocs, 11, faults(), body);
        assert!(error.is_none(), "{}", spec.name);
        assert!(
            trace.iter_events().any(|(_, e)| matches!(e.kind, EventKind::RankFailed { .. })),
            "{}: failure trace carries its markers",
            spec.name
        );
        write_trace_dir(&trace, &dir).unwrap();
        let loaded = read_trace_dir(&dir).unwrap();
        assert_eq!(trace, loaded, "{}: lossless round trip", spec.name);
        let a = AnalysisSession::new().run(&trace);
        let b = AnalysisSession::new().run(&loaded);
        assert_eq!(a.to_json(), b.to_json(), "{}: identical recovered reports", spec.name);
    }
    std::fs::remove_dir_all(&dir).ok();
}

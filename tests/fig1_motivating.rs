//! Integration test for the paper's Figure 1: the motivating example
//! where a nonblocking `MPI_Get`'s origin buffer is read and written
//! before `MPI_Win_unlock` closes the epoch.

use mc_checker::prelude::*;

fn fig1_body(p: &mut Proc) {
    p.set_func("fig1");
    let remote = p.alloc_i32s(1);
    p.poke_i32(remote, 41);
    let win = p.win_create(remote, 4, CommId::WORLD);
    p.barrier(CommId::WORLD);
    if p.rank() == 0 {
        let out = p.alloc_i32s(1);
        p.win_lock(LockKind::Shared, 1, win); // line 1
        p.get(out, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win); // line 2
        let x = p.tload_i32(out); // line 3: may retrieve an old value
        p.tstore_i32(out, x + 1); // line 4: may be overwritten by the get
        p.win_unlock(1, win); // line 6
    }
    p.barrier(CommId::WORLD);
    p.win_free(win);
}

#[test]
fn figure1_get_load_store_conflicts() {
    let result =
        run(SimConfig::new(2).with_seed(1).with_delivery(DeliveryPolicy::AtClose), fig1_body)
            .unwrap();
    let report = AnalysisSession::new().run(&result.trace.unwrap());
    assert!(report.has_errors());
    // Both the load and the store conflict with the get.
    let mut conflicting_ops: Vec<String> =
        report.errors().filter(|e| e.a.op == "MPI_Get").map(|e| e.b.op.clone()).collect();
    conflicting_ops.sort();
    assert_eq!(conflicting_ops, vec!["load".to_string(), "store".to_string()]);
    // Every finding is in rank 0's epoch.
    for e in report.errors() {
        assert!(matches!(e.scope, ErrorScope::IntraEpoch { rank: Rank(0), .. }));
    }
}

#[test]
fn figure1_symptom_is_timing_dependent_but_detection_is_not() {
    // Eager delivery hides the symptom; the checker still fires.
    for delivery in [DeliveryPolicy::Eager, DeliveryPolicy::AtClose, DeliveryPolicy::Adversarial] {
        let result =
            run(SimConfig::new(2).with_seed(1).with_delivery(delivery), fig1_body).unwrap();
        let report = AnalysisSession::new().run(&result.trace.unwrap());
        assert!(report.has_errors(), "{delivery:?}");
    }
}

//! Streaming/batch equivalence and wire-protocol properties.
//!
//! The streaming checker's contract is byte-comparability: over a
//! complete stream it must report exactly what the batch
//! [`AnalysisSession`] reports — same events, same epoch ordinals, same
//! canonical order, same deduplicated representative — so its serialized
//! findings are byte-identical to the batch diagnostics. The wire
//! protocol's contract is that frames round-trip and truncation is always
//! detected, never silently parsed.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::core::streaming::StreamingChecker;
use mc_checker::prelude::*;
use mc_checker::serve::proto::{decode_frame, encode_frame_with, Frame, ProtoError, SessionOpts};
use mc_checker::serve::CodecKind;
use mc_checker::types::{EventKind, SourceLoc, WinId};
use proptest::prelude::*;

type BugBody = fn(&mut Proc);

/// Every bug archetype in `crates/apps/src/bugs`, at a small scale.
fn archetypes() -> [(&'static str, u32, BugBody); 8] {
    [
        ("adlb", 4, bugs::adlb::buggy),
        ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
        ("bt_broadcast", 4, bugs::bt_broadcast::buggy),
        ("emulate", 4, bugs::emulate::buggy),
        ("jacobi", 4, bugs::jacobi::buggy),
        ("lockopts", 4, bugs::lockopts::buggy),
        ("pingpong", 2, bugs::pingpong::buggy),
        ("fig2c", 3, bugs::archetypes::fig2c),
    ]
}

#[test]
fn streaming_findings_equal_batch_on_every_archetype() {
    for (name, nprocs, body) in archetypes() {
        let trace = trace_of(nprocs, 0xdead, body);
        let batch = AnalysisSession::new().run(&trace);
        let (streamed, stats) = StreamingChecker::run_over(&trace);
        assert!(!batch.diagnostics.is_empty(), "{name}: archetype must exhibit its bug");
        assert_eq!(streamed, batch.diagnostics, "{name}: streamed findings diverge from batch");
        // Byte-level: the serialized documents agree too.
        let a = serde_json::to_string(&streamed).unwrap();
        let b = serde_json::to_string(&batch.diagnostics).unwrap();
        assert_eq!(a, b, "{name}: serialized findings diverge");
        assert_eq!(stats.total_events, trace.total_events(), "{name}");
        assert_eq!(stats.evictions, 0, "{name}: no cap set, nothing may be evicted");
    }
}

#[test]
fn streaming_findings_equal_batch_on_fixed_variants() {
    let fixed: [(&'static str, u32, BugBody); 5] = [
        ("emulate", 4, bugs::emulate::fixed),
        ("bt_broadcast", 4, bugs::bt_broadcast::fixed),
        ("jacobi", 4, bugs::jacobi::fixed),
        ("pingpong", 2, bugs::pingpong::fixed),
        ("mpi3_queue", 4, bugs::mpi3_queue::fixed),
    ];
    for (name, nprocs, body) in fixed {
        let trace = trace_of(nprocs, 0xdead, body);
        let batch = AnalysisSession::new().run(&trace);
        let (streamed, _) = StreamingChecker::run_over(&trace);
        assert_eq!(streamed, batch.diagnostics, "{name} (fixed)");
    }
}

/// Two unordered puts from one origin to one target produce an
/// intra-epoch finding *and* a cross-process finding for the same event
/// pair — equal canonical keys, distinct dedup keys. The batch stable
/// sort keeps the intra-epoch one first; streaming must tie-break the
/// same way (regression: hash-map iteration order leaked into ties).
#[test]
fn tie_between_intra_and_cross_findings_matches_batch_order() {
    fn double_put(p: &mut Proc) {
        let wbuf = p.alloc_i32s(2);
        let win = p.win_create(wbuf, 8, CommId::WORLD);
        p.win_fence(win);
        if p.rank() == 0 {
            let buf = p.alloc_i32s(1);
            p.put(buf, 1, DatatypeId::INT, 2, 0, 1, DatatypeId::INT, win);
            p.put(buf, 1, DatatypeId::INT, 2, 0, 1, DatatypeId::INT, win);
        }
        p.win_fence(win);
        p.win_free(win);
    }
    let trace = trace_of(3, 1, double_put);
    let batch = AnalysisSession::new().run(&trace).diagnostics;
    let intra = batch
        .iter()
        .filter(|e| matches!(e.scope, mc_checker::core::ErrorScope::IntraEpoch { .. }))
        .count();
    assert!(intra >= 1 && intra < batch.len(), "workload must exercise both scope classes");
    let (streamed, _) = StreamingChecker::run_over(&trace);
    assert_eq!(streamed, batch);
}

#[test]
fn streaming_findings_all_carry_complete_confidence() {
    use mc_checker::core::Confidence;
    for (name, nprocs, body) in archetypes() {
        let trace = trace_of(nprocs, 0xdead, body);
        let (streamed, _) = StreamingChecker::run_over(&trace);
        for f in &streamed {
            assert_eq!(f.confidence, Confidence::Complete, "{name}");
        }
    }
}

fn arb_loc() -> impl Strategy<Value = SourceLoc> {
    (0..8u32, 1..5000u32).prop_map(|(f, line)| SourceLoc::new(format!("src/f{f}.c"), line, "fn"))
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0..9u32, 0..64u32, 1..8u32, 0..4096u32, 0..2u8).prop_map(
            |(version, nprocs, threads, cap, durable)| Frame::Hello {
                version,
                nprocs,
                opts: SessionOpts {
                    threads,
                    max_buffered: cap,
                    durable: durable == 1,
                    governance: false
                },
            }
        ),
        (0..9u32, 0..u64::MAX, 0..3usize).prop_map(|(version, session, caps)| Frame::Welcome {
            version,
            session,
            capabilities: (0..caps).map(|i| format!("cap{i}")).collect(),
        }),
        (0..u64::MAX, 0..8u32, 0..16u32, arb_loc()).prop_map(|(seq, rank, win, loc)| {
            Frame::Event { seq, rank, kind: EventKind::Fence { win: WinId(win) }, loc }
        }),
        (0..u64::MAX, 0..8u32, arb_loc()).prop_map(|(seq, rank, loc)| Frame::Event {
            seq,
            rank,
            kind: EventKind::Barrier { comm: CommId::WORLD },
            loc,
        }),
        Just(Frame::Finish),
        Just(Frame::Stats),
        Just(Frame::Metrics),
        (0..u64::MAX).prop_map(|through| Frame::Ack { through }),
        (0..u64::MAX, 0..u64::MAX)
            .prop_map(|(session, from_seq)| Frame::Resume { session, from_seq }),
        (0..u64::MAX).prop_map(|session| Frame::Gone { session }),
        (0..100u32).prop_map(|i| Frame::MetricsReport { text: format!("mcc_x {i}\n") }),
        (0..100u32).prop_map(|i| Frame::Report { json: format!("{{\"i\":{i}}}") }),
        (0..100u32).prop_map(|i| Frame::StatsReport { json: format!("{{\"n\":{i}}}") }),
        (0..100u32).prop_map(|i| Frame::Error { message: format!("refused #{i}") }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frame round-trips through the wire encoding unchanged.
    #[test]
    fn frames_round_trip(frame in arb_frame()) {
        let bytes = encode_frame_with(&frame, CodecKind::Json);
        let (back, used) = decode_frame(&bytes).expect("encoded frame decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, frame);
    }

    /// No strict prefix of a frame ever decodes — truncation is always
    /// reported, with an accurate byte count, never parsed as a frame.
    #[test]
    fn truncated_frames_are_rejected(frame in arb_frame(), keep in 0..100u32) {
        let bytes = encode_frame_with(&frame, CodecKind::Json);
        let cut = bytes.len() * keep as usize / 100; // < bytes.len()
        match decode_frame(&bytes[..cut]) {
            Err(ProtoError::Truncated { needed, got }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(needed > cut);
            }
            other => prop_assert!(false, "prefix of {} bytes decoded as {:?}", cut, other),
        }
    }

    /// Two frames written back to back decode to the same two frames —
    /// the length prefix delimits them exactly.
    #[test]
    fn concatenated_frames_split_cleanly(a in arb_frame(), b in arb_frame()) {
        let mut bytes = encode_frame_with(&a, CodecKind::Json);
        bytes.extend_from_slice(&encode_frame_with(&b, CodecKind::Json));
        let (fa, used) = decode_frame(&bytes).expect("first frame");
        let (fb, rest) = decode_frame(&bytes[used..]).expect("second frame");
        prop_assert_eq!(fa, a);
        prop_assert_eq!(fb, b);
        prop_assert_eq!(used + rest, bytes.len());
    }
}

//! Property-based integration tests over the full pipeline: randomly
//! generated one-sided programs are run on the simulator, and the
//! checker's invariants are verified on the resulting traces.

use mc_checker::prelude::*;
use proptest::prelude::*;

/// A small random one-sided program: a sequence of per-round actions that
/// is correct by construction (every round is fence-isolated and every
/// target slot is touched by at most one writer per round).
#[derive(Debug, Clone)]
struct SafeProgram {
    nprocs: u32,
    rounds: Vec<Vec<Action>>, // per round, one action per rank
}

#[derive(Debug, Clone, Copy)]
enum Action {
    Idle,
    /// Put into `target`'s slot equal to the origin's rank (disjoint per
    /// origin).
    PutOwnSlot {
        target: u32,
    },
    /// Get from `target`'s read-only slot (never written by anyone).
    GetReadOnly {
        target: u32,
    },
    /// Accumulate(SUM) into `target`'s slot 0 — all sums may overlap.
    AccSlot0 {
        target: u32,
    },
    /// Store to the rank's own *non-window* scratch.
    LocalScratch,
}

fn arb_action(nprocs: u32) -> impl Strategy<Value = Action> {
    (0..5u8, 0..nprocs).prop_map(move |(k, t)| match k {
        0 => Action::Idle,
        1 => Action::PutOwnSlot { target: t },
        2 => Action::GetReadOnly { target: t },
        3 => Action::AccSlot0 { target: t },
        _ => Action::LocalScratch,
    })
}

fn arb_program() -> impl Strategy<Value = SafeProgram> {
    (2..5u32)
        .prop_flat_map(|nprocs| {
            (
                Just(nprocs),
                proptest::collection::vec(
                    proptest::collection::vec(arb_action(nprocs), nprocs as usize),
                    1..5,
                ),
            )
        })
        .prop_map(|(nprocs, rounds)| SafeProgram { nprocs, rounds })
}

fn run_safe(prog: &SafeProgram, seed: u64) -> Trace {
    let prog = prog.clone();
    let n = prog.nprocs;
    let result = run(SimConfig::new(n).with_seed(seed), move |p| {
        let me = p.rank();
        // Layout: slot 0 = accumulate slot, slots 1..=n = per-origin put
        // slots, slot n+1 = read-only slot.
        let slots = n as u64 + 2;
        let wbuf = p.alloc_i32s(slots as usize);
        let win = p.win_create(wbuf, 4 * slots, CommId::WORLD);
        let scratch = p.alloc_i32s(4);
        let src = p.alloc_i32s(1);
        let dst = p.alloc_i32s(1);
        p.win_fence(win);
        for round in &prog.rounds {
            match round[me as usize] {
                Action::Idle => {}
                Action::PutOwnSlot { target } => {
                    p.tstore_i32(src, me as i32);
                    // Slot me+1: disjoint from every other origin's slot
                    // and from slot 0.
                    p.put(
                        src,
                        1,
                        DatatypeId::INT,
                        target,
                        4 * (me as u64 + 1),
                        1,
                        DatatypeId::INT,
                        win,
                    );
                }
                Action::GetReadOnly { target } => {
                    p.get(
                        dst,
                        1,
                        DatatypeId::INT,
                        target,
                        4 * (n as u64 + 1),
                        1,
                        DatatypeId::INT,
                        win,
                    );
                }
                Action::AccSlot0 { target } => {
                    p.tstore_i32(src, 1);
                    p.accumulate(
                        src,
                        1,
                        DatatypeId::INT,
                        target,
                        0,
                        1,
                        DatatypeId::INT,
                        ReduceOp::Sum,
                        win,
                    );
                }
                Action::LocalScratch => {
                    let v = p.load_i32(scratch);
                    p.store_i32(scratch, v + 1);
                }
            }
            p.win_fence(win);
        }
        p.win_free(win);
    })
    .expect("safe program runs");
    result.trace.expect("traced")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness against construction: correct-by-construction programs
    /// never produce findings under any checker configuration.
    #[test]
    fn safe_programs_are_never_flagged(prog in arb_program(), seed in 0u64..1000) {
        let trace = run_safe(&prog, seed);
        for session in [
            AnalysisSession::new(),
            AnalysisSession::builder().engine(Engine::Naive).build(),
            AnalysisSession::builder().partition_regions(false).build(),
            AnalysisSession::builder().threads(4).build(),
        ] {
            let report = session.run(&trace);
            prop_assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
        }
    }

    /// Determinism: identical traces yield identical reports.
    #[test]
    fn checker_is_deterministic(prog in arb_program(), seed in 0u64..1000) {
        let trace = run_safe(&prog, seed);
        let a = AnalysisSession::new().run(&trace);
        let b = AnalysisSession::new().run(&trace);
        prop_assert_eq!(a.diagnostics, b.diagnostics);
    }

    /// Differential: the sweep engine and the naive all-pairs engine agree
    /// on every random trace, at any thread count, finding for finding.
    #[test]
    fn sweep_and_naive_engines_agree(prog in arb_program(), seed in 0u64..1000) {
        let trace = run_safe(&prog, seed);
        let naive = AnalysisSession::builder().engine(Engine::Naive).build().run(&trace);
        for threads in [1usize, 4] {
            let sweep = AnalysisSession::builder()
                .engine(Engine::Sweep)
                .threads(threads)
                .build()
                .run(&trace);
            prop_assert_eq!(&sweep.diagnostics, &naive.diagnostics);
            prop_assert_eq!(sweep.to_json(), naive.to_json());
        }
    }

    /// Injecting a same-slot concurrent writer pair into an otherwise safe
    /// program is always caught (get vs put on overlapping slot 0 across
    /// two origins).
    #[test]
    fn injected_conflicts_are_always_caught(prog in arb_program(), seed in 0u64..1000) {
        let prog2 = prog.clone();
        let n = prog.nprocs;
        let result = run(SimConfig::new(n).with_seed(seed), move |p| {
            let me = p.rank();
            let slots = n as u64 + 2;
            let wbuf = p.alloc_i32s(slots as usize);
            let win = p.win_create(wbuf, 4 * slots, CommId::WORLD);
            let src = p.alloc_i32s(1);
            p.win_fence(win);
            // Safe prefix.
            for round in &prog2.rounds {
                if let Action::PutOwnSlot { target } = round[me as usize] {
                    p.tstore_i32(src, 1);
                    p.put(src, 1, DatatypeId::INT, target, 4 * (me as u64 + 1), 1, DatatypeId::INT, win);
                }
                p.win_fence(win);
            }
            // Injected conflict: ranks 0 and 1 both put slot 0 of rank 0.
            if me < 2 {
                p.tstore_i32(src, me as i32);
                p.put(src, 1, DatatypeId::INT, 0, 0, 1, DatatypeId::INT, win);
            }
            p.win_fence(win);
            p.win_free(win);
        })
        .expect("runs");
        let trace = result.trace.unwrap();
        let report = AnalysisSession::new().run(&trace);
        prop_assert!(report.has_errors());
        // Differential on a conflicting trace: naive agrees with sweep.
        let naive = AnalysisSession::builder().engine(Engine::Naive).build().run(&trace);
        prop_assert_eq!(&naive.diagnostics, &report.diagnostics);
        // And exactly the injected pair: two puts targeting rank 0.
        let e = report.errors().next().unwrap();
        prop_assert_eq!(&e.a.op, "MPI_Put");
        prop_assert_eq!(&e.b.op, "MPI_Put");
        let at_rank0 = matches!(e.scope, ErrorScope::CrossProcess { target: Rank(0), .. });
        prop_assert!(at_rank0);
    }
}

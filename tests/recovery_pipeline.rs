//! End-to-end determinism and ground truth of the recovery gallery.
//!
//! The four fault-tolerant workloads (checkpointed Jacobi, re-exposed
//! pingpong, interrupted ADLB, notification race) die survivably inside
//! the simulator and route the checker through its failure-aware
//! pipeline. The contract under test: the recovered verdict is *stable* —
//! byte-identical across thread counts, across the sweep and naive
//! engines, and between streaming and batch analysis — and matches each
//! workload's ground truth.

use mc_checker::apps::bugs::{recovery_gallery, trace_under_faults};
use mc_checker::core::streaming::StreamingChecker;
use mc_checker::core::Confidence;
use mc_checker::mpi_sim::{run_tolerant, DeliveryPolicy, SimConfig};
use mc_checker::prelude::*;
use recovery_gallery::RecoverySpec;
use std::time::Duration;

fn gallery_traces() -> Vec<(RecoverySpec, Trace)> {
    recovery_gallery::gallery()
        .into_iter()
        .map(|(spec, faults, body)| {
            let (trace, error) = trace_under_faults(spec.nprocs, 11, faults(), body);
            assert!(error.is_none(), "{}: a survivable failure is not an error", spec.name);
            (spec, trace)
        })
        .collect()
}

/// The runner's own ledger agrees with the spec: exactly the scheduled
/// rank dies, after exactly the advertised number of completed epochs.
#[test]
fn runner_ledger_matches_the_spec() {
    for (spec, faults, body) in recovery_gallery::gallery() {
        let outcome = run_tolerant(
            SimConfig::new(spec.nprocs)
                .with_seed(11)
                .with_delivery(DeliveryPolicy::AtClose)
                .with_faults(faults())
                .expect("gallery fault plans target existing ranks")
                .with_watchdog(Duration::from_millis(2000)),
            body,
        )
        .expect("gallery configuration is valid");
        assert!(outcome.error.is_none(), "{}", spec.name);
        assert_eq!(
            outcome.stats.failures,
            vec![(spec.failed_rank, spec.epochs_completed)],
            "{}: runner failure ledger",
            spec.name
        );
    }
}

/// The recovered report is byte-identical at 1, 2 and 4 analysis threads.
#[test]
fn recovered_report_identical_across_thread_counts() {
    for (spec, trace) in gallery_traces() {
        let baseline = AnalysisSession::builder().threads(1).build().run(&trace).to_json();
        assert!(baseline.contains("\"confidence\": \"recovered\""), "{}", spec.name);
        for threads in [2usize, 4] {
            let got = AnalysisSession::builder().threads(threads).build().run(&trace).to_json();
            assert_eq!(got, baseline, "{}: JSON diverged at {threads} threads", spec.name);
        }
    }
}

/// The sweep and naive engines agree on every recovered report.
#[test]
fn recovered_report_identical_across_engines() {
    for (spec, trace) in gallery_traces() {
        let sweep = AnalysisSession::builder().threads(4).build().run(&trace);
        let naive = AnalysisSession::builder().engine(Engine::Naive).build().run(&trace);
        assert_eq!(sweep.to_json(), naive.to_json(), "{}: engines disagree", spec.name);
    }
}

/// Streaming analysis of a failure trace reports exactly what batch
/// reports, byte for byte, and flags the session as recovered.
#[test]
fn streaming_matches_batch_on_recovery_gallery() {
    for (spec, trace) in gallery_traces() {
        let batch = AnalysisSession::new().run(&trace);
        assert_eq!(batch.confidence, Confidence::Recovered, "{}", spec.name);
        let (streamed, _stats) = StreamingChecker::run_over(&trace);
        assert_eq!(streamed, batch.diagnostics, "{}: streamed findings diverge", spec.name);
        let a = serde_json::to_string(&streamed).unwrap();
        let b = serde_json::to_string(&batch.diagnostics).unwrap();
        assert_eq!(a, b, "{}: serialized findings diverge", spec.name);
    }
}

/// The streaming checker's recovered flag trips exactly on failure
/// traces.
#[test]
fn streaming_recovered_flag_follows_the_markers() {
    for (spec, trace) in gallery_traces() {
        let mut sc = StreamingChecker::new(trace.nprocs()).unwrap();
        for r in 0..trace.nprocs() {
            for ev in &trace.procs[r].events {
                let loc = trace.procs[r].loc(ev.loc);
                sc.push(Rank(r as u32), ev.kind.clone(), loc).unwrap();
            }
        }
        assert!(
            sc.is_recovered(),
            "{}: streaming checker must notice the failure markers",
            spec.name
        );
        let _ = sc.finish();
    }
}

/// The exit-code contract has one source of truth. Every line of
/// `EXIT_CODE_TABLE` must appear verbatim in the README and in the CLI's
/// doc header, and the table's left column must agree with
/// `exit_code_for` on every (confidence, has_errors) combination.
#[test]
fn exit_code_table_does_not_drift() {
    let readme =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md")).unwrap();
    let cli =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/src/bin/mcc.rs")).unwrap();
    for line in mc_checker::EXIT_CODE_TABLE.lines() {
        let line = line.trim();
        assert!(readme.contains(line), "README.md lost exit-code line: {line}");
        assert!(cli.contains(line), "mcc.rs doc header lost exit-code line: {line}");
    }
    let expect = [
        (Confidence::Complete, false, 0u8, "complete analysis, no errors"),
        (Confidence::Complete, true, 1, "complete analysis, errors found"),
        (Confidence::Degraded, true, 3, "degraded analysis, errors found"),
        (Confidence::Degraded, false, 4, "degraded analysis, no errors"),
        (Confidence::Recovered, true, 5, "recovered analysis (rank failure modeled), errors found"),
        (Confidence::Recovered, false, 6, "recovered analysis (rank failure modeled), no errors"),
    ];
    for (conf, errs, code, desc) in expect {
        assert_eq!(mc_checker::exit_code_for(conf, errs), code, "{desc}");
        let row = mc_checker::EXIT_CODE_TABLE
            .lines()
            .find(|l| l.trim().starts_with(&format!("{code}  ")))
            .unwrap_or_else(|| panic!("table has no row for exit code {code}"));
        assert!(row.contains(desc), "table row for {code} does not describe `{desc}`: {row}");
    }
    // Code 2 (usage/IO) never comes out of exit_code_for; it must still
    // be documented.
    assert!(mc_checker::EXIT_CODE_TABLE.contains("2  usage or I/O error"));
}

/// Ground truth once more, through the facade: kinds, confidence, and the
/// identity of both sides of each finding.
#[test]
fn gallery_ground_truth_via_facade() {
    for (spec, trace) in gallery_traces() {
        let report = AnalysisSession::new().run(&trace);
        assert_eq!(report.confidence, Confidence::Recovered, "{}", spec.name);
        let kinds: Vec<&str> = report
            .diagnostics
            .iter()
            .map(|d| match d.kind {
                mc_checker::types::ConflictKind::StaleReadFromFailedRank => {
                    "stale-read-from-failed-rank"
                }
                mc_checker::types::ConflictKind::LostUpdateAcrossReexposure => {
                    "lost-update-across-reexposure"
                }
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, spec.expected_kinds, "{}: {}", spec.name, report.render());
        for d in &report.diagnostics {
            assert_eq!(d.a.rank.0, spec.failed_rank, "{}: side A is the dead rank", spec.name);
        }
    }
}

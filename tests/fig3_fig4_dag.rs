//! Integration test for the paper's Figures 3 and 4: an execution
//! timeline across three processes is turned into a data-access DAG whose
//! epochs leave concurrent operations unordered, barriers partition the
//! trace into the regions A and B, and the put/store race inside a region
//! is detected while the barrier-separated put/get pair (the paper's
//! operations `c` and `d`) is not.

use mc_checker::core::{dag, matching, preprocess, regions, vc::Clocks, AnalysisSession};
use mc_checker::types::{
    CommId, DatatypeId, EventKind, EventRef, Rank, RmaKind, RmaOp, Trace, TraceBuilder, WinId,
};

fn put(target: u32, disp: u64) -> EventKind {
    EventKind::Rma(RmaOp {
        kind: RmaKind::Put,
        win: WinId(0),
        target: Rank(target),
        origin_addr: 0x200,
        origin_count: 1,
        origin_dtype: DatatypeId::INT,
        target_disp: disp,
        target_count: 1,
        target_dtype: DatatypeId::INT,
    })
}

fn get(target: u32, disp: u64) -> EventKind {
    EventKind::Rma(RmaOp {
        kind: RmaKind::Get,
        win: WinId(0),
        target: Rank(target),
        origin_addr: 0x300,
        origin_count: 1,
        origin_dtype: DatatypeId::INT,
        target_disp: disp,
        target_count: 1,
        target_dtype: DatatypeId::INT,
    })
}

/// Builds the Figure 3 timeline. Returns the trace and the labelled
/// operations `(a, b, c, d)`:
/// * region A: `a` = P0's put into P1's window slot 0, `b` = P1's store
///   to the same slot (the race of Figure 4), `c` = P2's put into slot 1;
/// * region B (after the barriers): `d` = P1's get of P2's window.
fn fig3_trace() -> (Trace, [EventRef; 4]) {
    let mut b = TraceBuilder::new(3);
    for r in 0..3u32 {
        b.push(
            Rank(r),
            EventKind::WinCreate { win: WinId(0), base: 0x40, len: 0x40, comm: CommId::WORLD },
        );
        b.push(Rank(r), EventKind::Fence { win: WinId(0) });
    }
    // --- region A ---
    let a = b.push(Rank(0), put(1, 0));
    let st = b.push(Rank(1), EventKind::Store { addr: 0x40, len: 4 });
    let c = b.push(Rank(2), put(1, 8));
    for r in 0..3u32 {
        b.push(Rank(r), EventKind::Fence { win: WinId(0) });
    }
    for r in 0..3u32 {
        b.push(Rank(r), EventKind::Barrier { comm: CommId::WORLD });
    }
    // --- region B ---
    let d = b.push(Rank(1), get(2, 8));
    for r in 0..3u32 {
        b.push(Rank(r), EventKind::Fence { win: WinId(0) });
    }
    (b.build(), [a, st, c, d])
}

#[test]
fn dag_orders_epochs_and_leaves_concurrency() {
    let (trace, [a, st, c, d]) = fig3_trace();
    let ctx = preprocess::preprocess(&trace);
    let m = matching::match_sync(&trace, &ctx);
    assert!(m.unmatched.is_empty());
    let g = dag::build(&trace, &ctx, &m);
    let clocks = Clocks::compute(&g);

    // Within region A: the put `a` and the target's store are concurrent
    // (the Figure 4 race), and the two puts from different origins are
    // concurrent.
    assert!(clocks.concurrent(g.enter(a), g.enter(st)));
    assert!(clocks.concurrent(g.enter(a), g.enter(c)));
    // Across the barrier: c happens-before d — "the barriers in P0, P1,
    // and P2 make c always happen before d".
    assert!(clocks.ordered(g.enter(c), g.enter(d)));
    assert!(!clocks.concurrent(g.enter(c), g.enter(d)));
}

#[test]
fn regions_a_and_b_extracted() {
    let (trace, [a, st, c, d]) = fig3_trace();
    let ctx = preprocess::preprocess(&trace);
    let m = matching::match_sync(&trace, &ctx);
    let parts = regions::partition(&trace, &m);
    // Fences + the explicit barrier are global syncs: events before the
    // final barrier land in earlier regions than d.
    assert!(parts.count >= 2);
    assert_eq!(parts.region_of(a), parts.region_of(st));
    assert_eq!(parts.region_of(a), parts.region_of(c));
    assert!(parts.region_of(d) > parts.region_of(c));
}

#[test]
fn checker_reports_only_the_region_a_race() {
    let (trace, [a, st, c, d]) = fig3_trace();
    let report = AnalysisSession::new().run(&trace);
    // Exactly one conflict: put `a` vs store `st` (overlapping slot 0).
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render());
    let e = &report.diagnostics[0];
    let pair = [e.a.ev, e.b.ev];
    assert!(pair.contains(&a) && pair.contains(&st));
    // Neither c (disjoint slot) nor d (ordered by the barrier) appears.
    for e in &report.diagnostics {
        assert_ne!(e.a.ev, c);
        assert_ne!(e.b.ev, c);
        assert_ne!(e.a.ev, d);
        assert_ne!(e.b.ev, d);
    }
}

#[test]
fn dag_shape_matches_figure4() {
    // The nonblocking put hangs between its issue point and the closing
    // fence; the store chains through program order.
    let (trace, [a, st, _, _]) = fig3_trace();
    let ctx = preprocess::preprocess(&trace);
    let m = matching::match_sync(&trace, &ctx);
    let g = dag::build(&trace, &ctx, &m);
    // `a` is a floating (RMA) node; the store is a chain node.
    assert!(matches!(g.node_kind[g.enter(a) as usize], dag::NodeKind::Rma { .. }));
    assert!(matches!(g.node_kind[g.enter(st) as usize], dag::NodeKind::Chain));
    // Every event has a node; collectives have two phases.
    assert!(g.node_count() > trace.total_events());
}

//! Observability invariants: pipeline metric snapshots must be
//! byte-identical at every thread count (counters commute, durations are
//! kept out of snapshots), and the Chrome-trace export must be valid
//! JSON whose span set covers the whole analysis pipeline.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::prelude::*;
use proptest::prelude::*;
use serde::Value;
use std::collections::BTreeSet;

type BugBody = fn(&mut Proc);

/// Every bug archetype in `crates/apps/src/bugs`, at a small scale.
const ARCHETYPES: [(&str, u32, BugBody); 8] = [
    ("adlb", 4, bugs::adlb::buggy),
    ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
    ("bt_broadcast", 4, bugs::bt_broadcast::buggy),
    ("emulate", 4, bugs::emulate::buggy),
    ("jacobi", 4, bugs::jacobi::buggy),
    ("lockopts", 4, bugs::lockopts::buggy),
    ("pingpong", 2, bugs::pingpong::buggy),
    ("fig2c", 3, bugs::archetypes::fig2c),
];

/// Runs one analysis into a fresh recorder and renders the snapshot.
fn snapshot_of(trace: &Trace, threads: usize, engine: Engine) -> String {
    let obs = RecorderHandle::enabled();
    AnalysisSession::builder()
        .threads(threads)
        .engine(engine)
        .recorder(obs.clone())
        .build()
        .run(trace);
    obs.snapshot().render()
}

#[test]
fn metric_snapshots_identical_across_thread_counts() {
    for (name, nprocs, body) in ARCHETYPES {
        let trace = trace_of(nprocs, 0xdead, body);
        let baseline = snapshot_of(&trace, 1, Engine::Sweep);
        assert!(baseline.contains("mcc_events_total"), "{name}: {baseline}");
        assert!(baseline.contains("mcc_shards_total"), "{name}: {baseline}");
        // The byte-identity contract covers histograms too: the sweep
        // engine populates the shard-size distribution, whose buckets
        // must not depend on how many workers drained the shards.
        assert!(
            baseline.contains("mcc_shard_items_bucket{le=\"+Inf\"}"),
            "{name}: shard_items histogram missing: {baseline}"
        );
        assert!(baseline.contains("mcc_shard_items_count"), "{name}: {baseline}");
        for threads in [2usize, 4] {
            assert_eq!(
                snapshot_of(&trace, threads, Engine::Sweep),
                baseline,
                "{name}: metric snapshot diverged at {threads} threads"
            );
        }
    }
}

/// A strict line-level parser for the Prometheus text exposition the
/// daemon serves: every line is either a `# TYPE` header or a sample
/// belonging to the most recent header; histogram blocks carry
/// non-decreasing cumulative buckets ending at `+Inf`, with `_count`
/// equal to the `+Inf` bucket. Returns `(families, samples)` counts.
fn strict_prometheus_parse(text: &str) -> (usize, usize) {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    }
    let mut current: Option<(String, &'static str)> = None;
    let mut seen_families = std::collections::BTreeSet::new();
    let mut hist_cum: Option<u64> = None;
    let mut hist_count: Option<u64> = None;
    let mut hist_inf: Option<u64> = None;
    let mut samples = 0usize;
    let close_hist = |cum: &mut Option<u64>, count: &mut Option<u64>, inf: &mut Option<u64>| {
        if let (Some(inf), Some(count)) = (inf.take(), count.take()) {
            assert_eq!(inf, count, "histogram _count must equal the +Inf bucket");
        }
        *cum = None;
    };
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            close_hist(&mut hist_cum, &mut hist_count, &mut hist_inf);
            let mut it = rest.split(' ');
            let name = it.next().expect("TYPE line has a name");
            let kind = match it.next() {
                Some("counter") => "counter",
                Some("gauge") => "gauge",
                Some("histogram") => "histogram",
                other => panic!("unknown metric type {other:?} in `{line}`"),
            };
            assert!(it.next().is_none(), "trailing junk in `{line}`");
            assert!(valid_name(name), "bad metric name in `{line}`");
            assert!(name.starts_with("mcc_"), "unprefixed family in `{line}`");
            assert!(seen_families.insert(name.to_string()), "family `{name}` declared twice");
            current = Some((name.to_string(), kind));
            continue;
        }
        let (family, kind) = current.as_ref().expect("sample before any # TYPE header");
        let (metric, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: u64 = value.parse().unwrap_or_else(|_| panic!("non-integer value in `{line}`"));
        samples += 1;
        match *kind {
            "counter" | "gauge" => {
                assert_eq!(metric, family, "sample `{metric}` outside its family `{family}`");
            }
            "histogram" => {
                if let Some(rest) = metric.strip_prefix(family.as_str()) {
                    match rest {
                        "_sum" => {}
                        "_count" => {
                            assert!(hist_count.replace(value).is_none(), "two _count lines");
                        }
                        _ => {
                            let le = rest
                                .strip_prefix("_bucket{le=\"")
                                .and_then(|s| s.strip_suffix("\"}"))
                                .unwrap_or_else(|| panic!("bad histogram sample `{line}`"));
                            if le == "+Inf" {
                                assert!(hist_inf.replace(value).is_none(), "two +Inf buckets");
                            } else {
                                let _: u64 = le
                                    .parse()
                                    .unwrap_or_else(|_| panic!("non-integer le in `{line}`"));
                                assert!(
                                    hist_inf.is_none(),
                                    "bucket after +Inf in family `{family}`"
                                );
                            }
                            let prev = hist_cum.replace(value).unwrap_or(0);
                            assert!(
                                value >= prev,
                                "cumulative bucket decreased in `{line}` ({prev} -> {value})"
                            );
                        }
                    }
                } else {
                    panic!("sample `{metric}` outside its family `{family}`");
                }
            }
            _ => unreachable!(),
        }
    }
    close_hist(&mut hist_cum, &mut hist_count, &mut hist_inf);
    (seen_families.len(), samples)
}

/// The daemon's `METRICS` payload — counters, latency histograms, and
/// gauges — survives the strict parser, over a snapshot populated by a
/// real pipeline run plus the serve-layer latency families.
#[test]
fn prometheus_exposition_is_strictly_well_formed() {
    let trace = trace_of(4, 0xdead, bugs::adlb::buggy);
    let obs = RecorderHandle::enabled();
    AnalysisSession::builder().threads(4).recorder(obs.clone()).build().run(&trace);
    // The serve layer feeds the same recorder; emulate its latency
    // observations so every sample shape (counter, histogram bucket,
    // sum, count, gauge) appears in the parsed document.
    for v in [3u64, 70, 900, 20_000, 1_000_000] {
        obs.observe(mc_checker::obs::names::INGEST_ACK_LATENCY_US, v);
        obs.observe(mc_checker::obs::names::FIRST_FINDING_LATENCY_US, v * 2);
    }
    let mut text = obs.snapshot().render();
    text.push_str(&mc_checker::obs::render_gauge("sessions_active", 3));
    let (families, samples) = strict_prometheus_parse(&text);
    assert!(families >= 5, "expected a populated exposition, got {families} families");
    assert!(samples > families, "histograms must contribute multiple samples per family");
    assert!(text.contains("# TYPE mcc_serve_ingest_ack_latency_us histogram"), "{text}");
    assert!(text.contains("# TYPE mcc_stream_first_finding_latency_us histogram"), "{text}");
    assert!(text.contains("# TYPE mcc_sessions_active gauge"), "{text}");
    // An out-of-range observation lands in +Inf only: count reflects it,
    // no finite bucket does.
    assert!(text.contains("mcc_serve_ingest_ack_latency_us_count 5"), "{text}");
}

#[test]
fn chrome_trace_is_valid_json_and_covers_the_pipeline() {
    let trace = trace_of(4, 0xdead, bugs::adlb::buggy);
    let obs = RecorderHandle::enabled();
    AnalysisSession::builder().threads(4).recorder(obs.clone()).build().run(&trace);
    let json = obs.to_chrome_trace();
    let doc = serde_json::parse_value_str(&json).expect("chrome trace must parse as JSON");

    let Some(Value::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing: {json}");
    };
    let names: BTreeSet<&str> = events
        .iter()
        .filter_map(|e| match e.get("name") {
            Some(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    for phase in [
        "check.run",
        "check.preprocess",
        "check.matching",
        "check.dag",
        "check.regions",
        "check.detect",
        "check.shard",
        "check.detect.intra",
        "check.detect.inter",
        "check.merge",
    ] {
        assert!(names.contains(phase), "span `{phase}` missing from trace: {names:?}");
    }
    // Every event is a complete-span record with the fields Perfetto
    // needs, and parent links point at recorded span ids.
    let mut ids = BTreeSet::new();
    for e in events {
        assert!(matches!(e.get("ph"), Some(Value::Str(s)) if s == "X"), "{json}");
        assert!(matches!(e.get("ts"), Some(Value::Int(_))));
        assert!(matches!(e.get("dur"), Some(Value::Int(_))));
        if let Some(args) = e.get("args") {
            if let Some(Value::Int(id)) = args.get("id") {
                ids.insert(*id);
            }
        }
    }
    for e in events {
        if let Some(args) = e.get("args") {
            if let Some(Value::Int(parent)) = args.get("parent") {
                assert!(ids.contains(parent), "dangling parent span id {parent}");
            }
        }
    }
    assert!(
        matches!(doc.get("metrics"), Some(Value::Obj(o)) if !o.is_empty()),
        "metrics object missing from trace: {json}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The snapshot contract holds for any archetype at any seed, and
    /// for both engines at their own baselines — histogram buckets
    /// (`shard_items` and anything else a run observes) included, since
    /// the comparison is over the full rendered exposition.
    #[test]
    fn metric_snapshots_thread_invariant_at_any_seed(case in 0..8usize, seed in 0..u64::MAX) {
        let (name, nprocs, body) = ARCHETYPES[case];
        let trace = trace_of(nprocs, seed, body);
        let baseline = snapshot_of(&trace, 1, Engine::Sweep);
        prop_assert!(
            baseline.contains("mcc_shard_items_bucket"),
            "{}: histogram missing from sweep baseline", name
        );
        for threads in [2usize, 4] {
            let got = snapshot_of(&trace, threads, Engine::Sweep);
            prop_assert_eq!(&got, &baseline, "{} diverged at {} threads", name, threads);
        }
        let naive1 = snapshot_of(&trace, 1, Engine::Naive);
        for threads in [2usize, 4] {
            let got = snapshot_of(&trace, threads, Engine::Naive);
            prop_assert_eq!(&got, &naive1, "{} naive diverged at {} threads", name, threads);
        }
        // Both expositions must survive the strict parser whatever the
        // seed produced.
        strict_prometheus_parse(&baseline);
        strict_prometheus_parse(&naive1);
    }
}

//! Observability invariants: pipeline metric snapshots must be
//! byte-identical at every thread count (counters commute, durations are
//! kept out of snapshots), and the Chrome-trace export must be valid
//! JSON whose span set covers the whole analysis pipeline.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::prelude::*;
use proptest::prelude::*;
use serde::Value;
use std::collections::BTreeSet;

type BugBody = fn(&mut Proc);

/// Every bug archetype in `crates/apps/src/bugs`, at a small scale.
const ARCHETYPES: [(&str, u32, BugBody); 8] = [
    ("adlb", 4, bugs::adlb::buggy),
    ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
    ("bt_broadcast", 4, bugs::bt_broadcast::buggy),
    ("emulate", 4, bugs::emulate::buggy),
    ("jacobi", 4, bugs::jacobi::buggy),
    ("lockopts", 4, bugs::lockopts::buggy),
    ("pingpong", 2, bugs::pingpong::buggy),
    ("fig2c", 3, bugs::archetypes::fig2c),
];

/// Runs one analysis into a fresh recorder and renders the snapshot.
fn snapshot_of(trace: &Trace, threads: usize, engine: Engine) -> String {
    let obs = RecorderHandle::enabled();
    AnalysisSession::builder()
        .threads(threads)
        .engine(engine)
        .recorder(obs.clone())
        .build()
        .run(trace);
    obs.snapshot().render()
}

#[test]
fn metric_snapshots_identical_across_thread_counts() {
    for (name, nprocs, body) in ARCHETYPES {
        let trace = trace_of(nprocs, 0xdead, body);
        let baseline = snapshot_of(&trace, 1, Engine::Sweep);
        assert!(baseline.contains("mcc_events_total"), "{name}: {baseline}");
        assert!(baseline.contains("mcc_shards_total"), "{name}: {baseline}");
        for threads in [2usize, 4] {
            assert_eq!(
                snapshot_of(&trace, threads, Engine::Sweep),
                baseline,
                "{name}: metric snapshot diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn chrome_trace_is_valid_json_and_covers_the_pipeline() {
    let trace = trace_of(4, 0xdead, bugs::adlb::buggy);
    let obs = RecorderHandle::enabled();
    AnalysisSession::builder().threads(4).recorder(obs.clone()).build().run(&trace);
    let json = obs.to_chrome_trace();
    let doc = serde_json::parse_value_str(&json).expect("chrome trace must parse as JSON");

    let Some(Value::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing: {json}");
    };
    let names: BTreeSet<&str> = events
        .iter()
        .filter_map(|e| match e.get("name") {
            Some(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    for phase in [
        "check.run",
        "check.preprocess",
        "check.matching",
        "check.dag",
        "check.regions",
        "check.detect",
        "check.shard",
        "check.detect.intra",
        "check.detect.inter",
        "check.merge",
    ] {
        assert!(names.contains(phase), "span `{phase}` missing from trace: {names:?}");
    }
    // Every event is a complete-span record with the fields Perfetto
    // needs, and parent links point at recorded span ids.
    let mut ids = BTreeSet::new();
    for e in events {
        assert!(matches!(e.get("ph"), Some(Value::Str(s)) if s == "X"), "{json}");
        assert!(matches!(e.get("ts"), Some(Value::Int(_))));
        assert!(matches!(e.get("dur"), Some(Value::Int(_))));
        if let Some(args) = e.get("args") {
            if let Some(Value::Int(id)) = args.get("id") {
                ids.insert(*id);
            }
        }
    }
    for e in events {
        if let Some(args) = e.get("args") {
            if let Some(Value::Int(parent)) = args.get("parent") {
                assert!(ids.contains(parent), "dangling parent span id {parent}");
            }
        }
    }
    assert!(
        matches!(doc.get("metrics"), Some(Value::Obj(o)) if !o.is_empty()),
        "metrics object missing from trace: {json}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The snapshot contract holds for any archetype at any seed, and
    /// for both engines at their own baselines.
    #[test]
    fn metric_snapshots_thread_invariant_at_any_seed(case in 0..8usize, seed in 0..u64::MAX) {
        let (name, nprocs, body) = ARCHETYPES[case];
        let trace = trace_of(nprocs, seed, body);
        let baseline = snapshot_of(&trace, 1, Engine::Sweep);
        for threads in [2usize, 4] {
            let got = snapshot_of(&trace, threads, Engine::Sweep);
            prop_assert_eq!(&got, &baseline, "{} diverged at {} threads", name, threads);
        }
        let naive1 = snapshot_of(&trace, 1, Engine::Naive);
        let naive4 = snapshot_of(&trace, 4, Engine::Naive);
        prop_assert_eq!(&naive4, &naive1, "{} naive snapshot diverged", name);
    }
}

//! Integration test for the paper's Figure 2: all four memory consistency
//! error archetypes are detected, each with the correct scope and
//! conflicting pair, and with byte-precise diagnostics.

use mc_checker::apps::bugs::{archetypes, trace_of};
use mc_checker::prelude::*;

#[test]
fn fig2a_intra_epoch_put_store() {
    let report = AnalysisSession::new().run(&trace_of(2, 5, archetypes::fig2a));
    let e = report.errors().next().expect("fig2a detected");
    assert!(matches!(e.scope, ErrorScope::IntraEpoch { rank: Rank(0), .. }));
    let ops = [e.a.op.as_str(), e.b.op.as_str()];
    assert!(ops.contains(&"MPI_Put") && ops.contains(&"store"));
}

#[test]
fn fig2b_active_target_across_processes() {
    let report = AnalysisSession::new().run(&trace_of(3, 5, archetypes::fig2b));
    let e = report.errors().next().expect("fig2b detected");
    match e.scope {
        ErrorScope::CrossProcess { target, .. } => assert_eq!(target, Rank(1)),
        other => panic!("wrong scope {other:?}"),
    }
    assert_eq!(e.a.op, "MPI_Put");
    assert_eq!(e.b.op, "MPI_Put");
}

#[test]
fn fig2c_passive_target_across_processes() {
    let report = AnalysisSession::new().run(&trace_of(3, 5, archetypes::fig2c));
    let e = report.errors().next().expect("fig2c detected");
    assert!(matches!(e.scope, ErrorScope::CrossProcess { target: Rank(1), .. }));
    let ops = [e.a.op.as_str(), e.b.op.as_str()];
    assert!(ops.contains(&"MPI_Put") && ops.contains(&"MPI_Get"));
    assert_eq!(e.severity, Severity::Error, "shared locks do not serialize");
}

#[test]
fn fig2d_origin_vs_target() {
    let report = AnalysisSession::new().run(&trace_of(2, 5, archetypes::fig2d));
    let e = report.errors().next().expect("fig2d detected");
    assert!(matches!(e.scope, ErrorScope::CrossProcess { target: Rank(1), .. }));
    let ops = [e.a.op.as_str(), e.b.op.as_str()];
    assert!(ops.contains(&"MPI_Put") && ops.contains(&"store"));
}

#[test]
fn diagnostics_point_into_the_archetype_source() {
    for (name, nprocs, body, _) in archetypes::all() {
        let report = AnalysisSession::new().run(&trace_of(nprocs, 5, body));
        let e = report.errors().next().unwrap();
        assert!(
            e.a.loc.file.ends_with("archetypes.rs"),
            "{name}: diagnostics cite the source ({})",
            e.a.loc.file
        );
        assert_eq!(e.a.loc.func, name);
        assert!(e.a.region.is_some(), "{name}: byte-precise footprint reported");
    }
}

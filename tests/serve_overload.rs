//! Overload and resource-governance tests for the daemon: admission
//! control (`--max-sessions`, pressure-aware `Busy`), per-session quotas
//! (events, buffered bytes, rate pacing, deadline), deterministic
//! priority load shedding under a memory ceiling, and the acceptance
//! scenario — a flooder and a slowloris among well-behaved sessions,
//! with the well-behaved reports byte-identical to an unloaded run.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::core::{Confidence, StreamingChecker};
use mc_checker::prelude::*;
use mc_checker::serve::proto::{
    write_frame_with, Frame, FrameReader, SessionOpts, PROTOCOL_VERSION,
};
use mc_checker::serve::{
    client, CodecKind, ProtoError, Registry, RetryPolicy, ServeConfig, Server, ServerHandle,
    SessionReport,
};
use mc_checker::types::{EventKind, RmaKind, RmaOp, SourceLoc};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Mirrors `server::BYTES_REPORT_DELTA`: buffered-byte growth past this
/// triggers a progress report, which is what lands a session's bytes in
/// the supervisor's accounting.
const BYTES_REPORT_DELTA: u64 = 1 << 20;

/// Control traffic is always JSON on the wire.
fn write_json(w: &mut impl std::io::Write, f: &Frame) -> std::io::Result<()> {
    write_frame_with(w, f, CodecKind::Json)
}

/// Starts an in-process daemon and keeps a handle on its registry, so
/// tests can read the shed log directly.
fn start_server(cfg: ServeConfig) -> (String, ServerHandle, Arc<Registry>, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let registry = server.registry();
    let join = thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle, registry, join)
}

/// Reads the integer value of `"key":N` out of a stats/health document.
fn json_field(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let digits: String = doc[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn wait_until(mut f: impl FnMut() -> bool, timeout: Duration) -> bool {
    let start = Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() >= timeout {
            return false;
        }
        thread::sleep(Duration::from_millis(20));
    }
}

/// Next frame from the server, tolerating read-timeout ticks up to a
/// deadline (client sockets carry a short read timeout so a wedged test
/// fails instead of hanging).
fn next_frame_within(reader: &mut FrameReader<TcpStream>, deadline: Duration) -> Frame {
    let start = Instant::now();
    loop {
        match reader.next_frame() {
            Ok(Some(f)) => return f,
            Ok(None) => panic!("connection closed while a frame was expected"),
            Err(ProtoError::Idle) => {
                assert!(start.elapsed() < deadline, "no frame within {deadline:?}");
            }
            Err(e) => panic!("protocol error while reading: {e}"),
        }
    }
}

/// Opens a raw session and returns the reader plus the server-assigned
/// session id.
fn open_session(addr: &str, nprocs: u32, governance: bool) -> (FrameReader<TcpStream>, u64) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut reader = FrameReader::new(stream);
    let opts = SessionOpts { governance, ..SessionOpts::default() };
    write_json(reader.get_mut(), &Frame::Hello { version: PROTOCOL_VERSION, nprocs, opts })
        .unwrap();
    let id = match next_frame_within(&mut reader, Duration::from_secs(5)) {
        Frame::Welcome { session, .. } => session,
        other => panic!("expected Welcome, got {other:?}"),
    };
    (reader, id)
}

/// One-rank event stream that only buffers: a `WinCreate`, then puts to
/// disjoint displacements (no conflicts, so salvage analysis stays
/// cheap) carrying a large function name each, and no closing sync.
/// Events are appended until the local byte accountant crosses
/// `target_bytes`; the function returns the stream and its exact final
/// buffered-byte charge — which is also what the daemon will register,
/// because the crossing event triggers a progress report.
fn buffering_events(func_len: usize, target_bytes: u64) -> (Vec<(EventKind, SourceLoc)>, u64) {
    let mut sc = StreamingChecker::new(1).unwrap();
    let mut out: Vec<(EventKind, SourceLoc)> = Vec::new();
    let wc =
        EventKind::WinCreate { win: WinId(0), base: 0x1000, len: 1 << 30, comm: CommId::WORLD };
    sc.push(Rank(0), wc.clone(), SourceLoc::unknown()).unwrap();
    out.push((wc, SourceLoc::unknown()));
    let func = "f".repeat(func_len);
    let mut i = 0u64;
    while (sc.buffered_bytes() as u64) < target_bytes {
        let kind = EventKind::Rma(RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(0),
            origin_addr: 0x4000_0000 + i * 8,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: i * 8,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        });
        let loc = SourceLoc::new("overload.c", i as u32 + 1, &func);
        sc.push(Rank(0), kind.clone(), loc.clone()).unwrap();
        out.push((kind, loc));
        i += 1;
    }
    (out, sc.buffered_bytes() as u64)
}

/// A stream of exactly 256 events (a `WinCreate` plus 255 disjoint
/// puts), so the final event lands on the daemon's every-256-events
/// progress cadence and the session's full buffered charge registers
/// with the supervisor the moment the stream ends. The charge scales
/// with `func_len`, giving each session a distinct, locally-measured
/// size without megabyte-scale frames.
fn sized_stream(func_len: usize) -> (Vec<(EventKind, SourceLoc)>, u64) {
    let mut sc = StreamingChecker::new(1).unwrap();
    let mut out: Vec<(EventKind, SourceLoc)> = Vec::new();
    let wc =
        EventKind::WinCreate { win: WinId(0), base: 0x1000, len: 1 << 30, comm: CommId::WORLD };
    sc.push(Rank(0), wc.clone(), SourceLoc::unknown()).unwrap();
    out.push((wc, SourceLoc::unknown()));
    let func = "f".repeat(func_len);
    for i in 0..255u64 {
        let kind = EventKind::Rma(RmaOp {
            kind: RmaKind::Put,
            win: WinId(0),
            target: Rank(0),
            origin_addr: 0x4000_0000 + i * 8,
            origin_count: 1,
            origin_dtype: DatatypeId::INT,
            target_disp: i * 8,
            target_count: 1,
            target_dtype: DatatypeId::INT,
        });
        let loc = SourceLoc::new("overload.c", i as u32 + 1, &func);
        sc.push(Rank(0), kind.clone(), loc.clone()).unwrap();
        out.push((kind, loc));
    }
    (out, sc.buffered_bytes() as u64)
}

fn feed(reader: &mut FrameReader<TcpStream>, events: &[(EventKind, SourceLoc)], codec: CodecKind) {
    for (seq, (kind, loc)) in events.iter().enumerate() {
        write_frame_with(
            reader.get_mut(),
            &Frame::Event { seq: seq as u64, rank: 0, kind: kind.clone(), loc: loc.clone() },
            codec,
        )
        .unwrap();
    }
}

/// `--max-sessions 1`: the second `Hello` is refused — governance-aware
/// clients get a typed `Busy` carrying the configured retry hint, legacy
/// clients a plain `Error` — and the slot reopens once the first session
/// finishes.
#[test]
fn session_cap_refuses_hellos_with_typed_busy() {
    let cfg = ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(5),
        max_sessions: 1,
        busy_retry_after: Duration::from_millis(123),
        ..ServeConfig::default()
    };
    let (addr, handle, registry, join) = start_server(cfg);

    let (mut first, _) = open_session(&addr, 1, true);

    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut reader = FrameReader::new(stream);
    let opts = SessionOpts { governance: true, ..SessionOpts::default() };
    write_json(reader.get_mut(), &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1, opts })
        .unwrap();
    match next_frame_within(&mut reader, Duration::from_secs(5)) {
        Frame::Busy { retry_after_ms, message } => {
            assert_eq!(retry_after_ms, 123);
            assert!(message.contains("capacity"), "{message}");
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // A client that never announced governance support must not see the
    // new frame type.
    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut legacy = FrameReader::new(stream);
    write_json(
        legacy.get_mut(),
        &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1, opts: SessionOpts::default() },
    )
    .unwrap();
    match next_frame_within(&mut legacy, Duration::from_secs(5)) {
        Frame::Error { message } => assert!(message.contains("capacity"), "{message}"),
        other => panic!("expected Error for a legacy client, got {other:?}"),
    }

    // Finish the admitted session; the slot reopens.
    write_json(first.get_mut(), &Frame::Finish).unwrap();
    assert!(matches!(next_frame_within(&mut first, Duration::from_secs(5)), Frame::Report { .. }));
    assert!(wait_until(|| registry.fleet().active == 0, Duration::from_secs(5)));
    let (_reader, _) = open_session(&addr, 1, true);

    let health = client::health_tcp(&addr).expect("health");
    assert!(json_field(&health, "rejected") >= Some(2), "{health}");
    assert_eq!(json_field(&health, "max_sessions"), Some(1), "{health}");
    handle.shutdown();
    join.join().unwrap();
}

/// Elevated memory pressure (>= 3/4 of the ceiling) refuses new
/// `Hello`s while existing sessions continue; the pressure clears when
/// the buffering session finishes, and admission resumes.
#[test]
fn elevated_pressure_refuses_new_sessions_until_it_clears() {
    let (events, bytes) = buffering_events(200_000, BYTES_REPORT_DELTA);
    // Ceiling such that the session's charge sits exactly at the 3/4
    // admission threshold but safely below the 9/10 shedding threshold.
    let ceiling = (bytes * 4 / 3) as usize;
    let cfg = ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(10),
        mem_ceiling: ceiling,
        ..ServeConfig::default()
    };
    let (addr, handle, _registry, join) = start_server(cfg);

    let (mut hog, _) = open_session(&addr, 1, true);
    feed(&mut hog, &events, CodecKind::Json);
    assert!(
        wait_until(
            || {
                let health = client::health_tcp(&addr).expect("health");
                json_field(&health, "buffered_bytes") == Some(bytes)
            },
            Duration::from_secs(10),
        ),
        "the hog's progress report never reached the accountant"
    );
    let health = client::health_tcp(&addr).expect("health");
    assert!(health.contains("\"level\":\"elevated\""), "{health}");

    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut reader = FrameReader::new(stream);
    let opts = SessionOpts { governance: true, ..SessionOpts::default() };
    write_json(reader.get_mut(), &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1, opts })
        .unwrap();
    match next_frame_within(&mut reader, Duration::from_secs(5)) {
        Frame::Busy { message, .. } => assert!(message.contains("pressure"), "{message}"),
        other => panic!("expected Busy under elevated pressure, got {other:?}"),
    }

    // The buffering session itself is below every hard quota: it may
    // finish normally, and its exit clears the pressure.
    write_json(hog.get_mut(), &Frame::Finish).unwrap();
    let report = match next_frame_within(&mut hog, Duration::from_secs(10)) {
        Frame::Report { json } => SessionReport::from_json(&json).unwrap(),
        other => panic!("expected Report, got {other:?}"),
    };
    assert_eq!(report.confidence, Confidence::Complete);
    assert!(
        wait_until(
            || {
                let health = client::health_tcp(&addr).expect("health");
                health.contains("\"level\":\"normal\"")
            },
            Duration::from_secs(5),
        ),
        "pressure never cleared after the hog finished"
    );
    let (_reader, _) = open_session(&addr, 1, true);
    handle.shutdown();
    join.join().unwrap();
}

/// The per-session event-count quota evicts with a typed
/// `QuotaExceeded` (legacy clients: a plain `Error`) followed by a
/// degraded report counting exactly the ingested events.
#[test]
fn max_events_quota_evicts_into_degraded_report() {
    let cfg = ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(5),
        quota_max_events: 10,
        ..ServeConfig::default()
    };
    let (addr, handle, _registry, join) = start_server(cfg);

    let (mut reader, _) = open_session(&addr, 1, true);
    for seq in 0..12u64 {
        write_json(
            reader.get_mut(),
            &Frame::Event {
                seq,
                rank: 0,
                kind: EventKind::Barrier { comm: CommId::WORLD },
                loc: SourceLoc::unknown(),
            },
        )
        .unwrap();
    }
    match next_frame_within(&mut reader, Duration::from_secs(5)) {
        Frame::QuotaExceeded { quota, limit, observed } => {
            assert_eq!(quota, "max-events");
            assert_eq!(limit, 10);
            assert_eq!(observed, 11);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    let report = match next_frame_within(&mut reader, Duration::from_secs(5)) {
        Frame::Report { json } => SessionReport::from_json(&json).unwrap(),
        other => panic!("expected Report, got {other:?}"),
    };
    assert_eq!(report.confidence, Confidence::Degraded);
    assert_eq!(report.events_ingested, 11);

    // Legacy client: same eviction, plain Error.
    let (mut legacy, _) = open_session(&addr, 1, false);
    for seq in 0..12u64 {
        write_json(
            legacy.get_mut(),
            &Frame::Event {
                seq,
                rank: 0,
                kind: EventKind::Barrier { comm: CommId::WORLD },
                loc: SourceLoc::unknown(),
            },
        )
        .unwrap();
    }
    match next_frame_within(&mut legacy, Duration::from_secs(5)) {
        Frame::Error { message } => assert!(message.contains("max-events"), "{message}"),
        other => panic!("expected Error for a legacy client, got {other:?}"),
    }
    handle.shutdown();
    join.join().unwrap();
}

/// The per-session buffered-bytes quota evicts a session whose checker
/// charge grows past the limit.
#[test]
fn max_buffered_bytes_quota_evicts_hoarders() {
    let cfg = ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(5),
        quota_max_bytes: 60_000,
        ..ServeConfig::default()
    };
    let (addr, handle, _registry, join) = start_server(cfg);

    let (events, _) = buffering_events(1_000, 120_000);
    let (mut reader, _) = open_session(&addr, 1, true);
    feed(&mut reader, &events, CodecKind::Json);
    match next_frame_within(&mut reader, Duration::from_secs(5)) {
        Frame::QuotaExceeded { quota, limit, observed } => {
            assert_eq!(quota, "max-buffered-bytes");
            assert_eq!(limit, 60_000);
            assert!(observed > 60_000, "observed {observed} must exceed the limit");
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    let report = match next_frame_within(&mut reader, Duration::from_secs(5)) {
        Frame::Report { json } => SessionReport::from_json(&json).unwrap(),
        other => panic!("expected Report, got {other:?}"),
    };
    assert_eq!(report.confidence, Confidence::Degraded);
    handle.shutdown();
    join.join().unwrap();
}

/// The event-rate quota paces instead of evicting: the stream completes
/// with a full report, the client sees a `Throttled` advisory, and the
/// fleet counts the session as throttled exactly once.
#[test]
fn event_rate_quota_paces_without_evicting() {
    let cfg = ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(10),
        quota_event_rate: 200,
        ..ServeConfig::default()
    };
    let (addr, handle, registry, join) = start_server(cfg);

    let (mut reader, _) = open_session(&addr, 1, true);
    for seq in 0..400u64 {
        write_json(
            reader.get_mut(),
            &Frame::Event {
                seq,
                rank: 0,
                kind: EventKind::Barrier { comm: CommId::WORLD },
                loc: SourceLoc::unknown(),
            },
        )
        .unwrap();
    }
    write_json(reader.get_mut(), &Frame::Finish).unwrap();
    let mut throttled_frames = 0;
    let report = loop {
        match next_frame_within(&mut reader, Duration::from_secs(30)) {
            Frame::Throttled { retry_after_ms: _ } => throttled_frames += 1,
            Frame::Report { json } => break SessionReport::from_json(&json).unwrap(),
            other => panic!("unexpected frame {other:?}"),
        }
    };
    assert!(throttled_frames >= 1, "the crossing must be announced");
    assert_eq!(report.confidence, Confidence::Complete, "pacing never degrades");
    assert_eq!(report.events_ingested, 400);
    assert_eq!(registry.fleet().throttled, 1, "one crossing, one count");
    handle.shutdown();
    join.join().unwrap();
}

/// The wall-clock deadline evicts an open-ended session through the
/// same typed path.
#[test]
fn session_deadline_evicts_stale_sessions() {
    let cfg = ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(10),
        session_deadline: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    };
    let (addr, handle, _registry, join) = start_server(cfg);

    let (mut reader, _) = open_session(&addr, 1, true);
    write_json(
        reader.get_mut(),
        &Frame::Event {
            seq: 0,
            rank: 0,
            kind: EventKind::Barrier { comm: CommId::WORLD },
            loc: SourceLoc::unknown(),
        },
    )
    .unwrap();
    // Say nothing further; the deadline must fire well before the idle
    // timeout would.
    match next_frame_within(&mut reader, Duration::from_secs(5)) {
        Frame::QuotaExceeded { quota, limit, observed } => {
            assert_eq!(quota, "deadline");
            assert_eq!(limit, 300);
            assert!(observed >= 300, "elapsed {observed}ms must be past the deadline");
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    let report = match next_frame_within(&mut reader, Duration::from_secs(5)) {
        Frame::Report { json } => SessionReport::from_json(&json).unwrap(),
        other => panic!("expected Report, got {other:?}"),
    };
    assert_eq!(report.confidence, Confidence::Degraded);
    assert_eq!(report.events_ingested, 1);
    handle.shutdown();
    join.join().unwrap();
}

/// One run of the shedding scenario: four sessions with distinct,
/// locally-measured buffer charges under a ceiling sized so that
/// crossing into Critical requires all four — and relieving it requires
/// exactly the two largest. Returns the shed log and every session's
/// report JSON (victims degraded, survivors complete), in session-id
/// order.
fn shed_scenario(tick_ms: u64, codec: CodecKind) -> (Vec<u64>, Vec<String>) {
    let streams: Vec<(Vec<(EventKind, SourceLoc)>, u64)> =
        [1400, 1300, 1200, 1100].iter().map(|&len| sized_stream(len)).collect();
    let r: Vec<u64> = streams.iter().map(|(_, bytes)| *bytes).collect();
    let total: u64 = r.iter().sum();
    assert!(
        r[0] > r[1] && r[1] > r[2] && r[2] > r[3],
        "charges must be distinct and descending: {r:?}"
    );
    // Critical (>= 9/10) only once all four sessions have registered;
    // shedding to the 3/4 target must need the largest two victims.
    let lower = ((r[0] + r[1] + r[2]) * 10 / 9 + 1).max((total - r[0] - r[1]) * 4 / 3 + 1);
    let upper = (total * 10 / 9).min((total - r[0]) * 4 / 3);
    assert!(lower + 65_536 < upper, "scenario sizing collapsed: {lower}..{upper} for {r:?}");
    let ceiling = ((lower + upper) / 2) as usize;

    let cfg = ServeConfig {
        tick: Duration::from_millis(tick_ms),
        idle_timeout: Duration::from_secs(20),
        mem_ceiling: ceiling,
        ..ServeConfig::default()
    };
    let (addr, handle, registry, join) = start_server(cfg);

    // Admit all four up front (feeding would trip pressure-aware
    // admission), sequentially so the session ids are deterministic.
    let mut sessions: Vec<(FrameReader<TcpStream>, u64)> =
        (0..4).map(|_| open_session(&addr, 1, true)).collect();
    let ids: Vec<u64> = sessions.iter().map(|(_, id)| *id).collect();
    assert_eq!(ids, vec![1, 2, 3, 4], "sequential admission must assign sequential ids");

    // Feed one session at a time and wait for its charge to register, so
    // the supervisor observes the same deterministic sequence of fleet
    // states in every run. The last session's registration tips the
    // accountant into Critical and shedding starts draining the total
    // immediately, so its arrival is observed via the shed log below,
    // not via a racy read of the momentary fleet total.
    let mut registered = 0u64;
    for (i, (reader, _)) in sessions.iter_mut().enumerate() {
        feed(reader, &streams[i].0, codec);
        registered += r[i];
        let expect = registered;
        if i < 3 {
            assert!(
                wait_until(|| registry.fleet().buffered_bytes == expect, Duration::from_secs(10)),
                "session {} never registered its {} bytes",
                i + 1,
                r[i]
            );
        }
    }

    // The janitor crosses into Critical and sheds the two largest.
    assert!(
        wait_until(|| registry.shed_log().len() == 2, Duration::from_secs(10)),
        "shedding never happened (log: {:?})",
        registry.shed_log()
    );
    let shed = registry.shed_log();

    let mut reports = Vec::new();
    for (reader, id) in sessions.iter_mut() {
        let victim = shed.contains(id);
        if !victim {
            write_json(reader.get_mut(), &Frame::Finish).unwrap();
        }
        let json = loop {
            match next_frame_within(reader, Duration::from_secs(10)) {
                Frame::QuotaExceeded { quota, limit, .. } => {
                    assert!(victim, "session {id} evicted without being shed");
                    assert_eq!(quota, "memory-pressure");
                    assert_eq!(limit, ceiling as u64);
                }
                Frame::Report { json } => break json,
                other => panic!("unexpected frame {other:?}"),
            }
        };
        let report = SessionReport::from_json(&json).unwrap();
        assert_eq!(
            report.confidence,
            if victim { Confidence::Degraded } else { Confidence::Complete },
            "session {id}"
        );
        reports.push(json);
    }
    // One shedding pass settles the pressure: no victim beyond the
    // necessary two, ever.
    assert_eq!(registry.shed_log().len(), 2);
    handle.shutdown();
    join.join().unwrap();
    (shed, reports)
}

/// Shedding is deterministic: the same four unequal sessions shed the
/// same victims in the same largest-buffer-first order, and every
/// session's report is byte-identical, across supervisor tick lengths
/// and both wire codecs.
#[test]
fn shedding_order_and_reports_are_deterministic() {
    let mut baseline: Option<(Vec<u64>, Vec<String>)> = None;
    for &tick_ms in &[15u64, 30, 60] {
        for codec in [CodecKind::Json, CodecKind::Binary] {
            let (shed, reports) = shed_scenario(tick_ms, codec);
            assert_eq!(
                shed,
                vec![1, 2],
                "largest-buffer-first order broke at tick {tick_ms}ms / {codec:?}"
            );
            match &baseline {
                None => baseline = Some((shed, reports)),
                Some((shed0, reports0)) => {
                    assert_eq!(&shed, shed0, "shed order diverged at {tick_ms}ms / {codec:?}");
                    assert_eq!(
                        &reports, reports0,
                        "reports diverged at tick {tick_ms}ms / {codec:?}"
                    );
                }
            }
        }
    }
}

/// The acceptance scenario: under a hard ceiling, an event-flooder and a
/// slowloris run alongside fourteen well-behaved sessions. The daemon's
/// own accounting never exceeds the ceiling, only the flooder is shed
/// (the slowloris dies of idleness), and every well-behaved report is
/// byte-identical to an unloaded run.
#[test]
fn overload_spares_well_behaved_sessions() {
    type BugBody = fn(&mut mc_checker::prelude::Proc);
    let cases: [(&'static str, u32, BugBody); 7] = [
        ("emulate", 4, bugs::emulate::buggy),
        ("emulate-fixed", 4, bugs::emulate::fixed),
        ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
        ("jacobi-fixed", 4, bugs::jacobi::fixed),
        ("adlb", 4, bugs::adlb::buggy),
        ("pingpong", 2, bugs::pingpong::buggy),
        ("emulate-2", 4, bugs::emulate::buggy),
    ];
    let traces: Vec<(&'static str, Trace)> = (0..14)
        .map(|i| {
            let (name, nprocs, body) = cases[i % cases.len()];
            (name, trace_of(nprocs, 0xbeef + i as u64, body))
        })
        .collect();
    let policy = RetryPolicy {
        retries: 40,
        base_backoff: Duration::from_millis(25),
        max_backoff: Duration::from_millis(250),
        reply_deadline: Duration::from_secs(15),
        ..RetryPolicy::default()
    };

    // Unloaded baseline: same traces, same client path, no hostiles.
    let baseline_cfg = ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (addr, handle, _registry, join) = start_server(baseline_cfg);
    let baseline: Vec<String> = traces
        .iter()
        .map(|(name, trace)| {
            let opts = SessionOpts::default();
            let (report, _) = client::submit_durable_tcp(&addr, trace, &opts, &policy)
                .unwrap_or_else(|e| panic!("{name}: baseline submit failed: {e}"));
            assert_eq!(report.confidence, Confidence::Complete, "{name}");
            report.to_json()
        })
        .collect();
    handle.shutdown();
    join.join().unwrap();

    // The governed run: 24 MiB ceiling, fast janitor, short idle so the
    // slowloris dies promptly.
    let ceiling = 24 << 20;
    let cfg = ServeConfig {
        tick: Duration::from_millis(5),
        idle_timeout: Duration::from_millis(600),
        mem_ceiling: ceiling,
        ..ServeConfig::default()
    };
    let (addr, handle, registry, join) = start_server(cfg);

    // The slowloris: one event, then silence. Holds its socket open from
    // the main thread for the whole scenario.
    let (mut slowloris, slowloris_id) = open_session(&addr, 1, true);
    write_json(
        slowloris.get_mut(),
        &Frame::Event {
            seq: 0,
            rank: 0,
            kind: EventKind::Barrier { comm: CommId::WORLD },
            loc: SourceLoc::unknown(),
        },
    )
    .unwrap();

    // The flooder: giant events, no syncs, as fast as the socket takes
    // them, until the daemon cuts it off.
    let flooder_addr = addr.clone();
    let flooder = thread::spawn(move || {
        let (mut reader, id) = open_session(&flooder_addr, 1, true);
        let wc =
            EventKind::WinCreate { win: WinId(0), base: 0x1000, len: 1 << 30, comm: CommId::WORLD };
        if write_json(
            reader.get_mut(),
            &Frame::Event { seq: 0, rank: 0, kind: wc, loc: SourceLoc::unknown() },
        )
        .is_err()
        {
            return id;
        }
        let func = "f".repeat(8 << 10);
        for i in 0..8_000u64 {
            let kind = EventKind::Rma(RmaOp {
                kind: RmaKind::Put,
                win: WinId(0),
                target: Rank(0),
                origin_addr: 0x4000_0000 + i * 8,
                origin_count: 1,
                origin_dtype: DatatypeId::INT,
                target_disp: i * 8,
                target_count: 1,
                target_dtype: DatatypeId::INT,
            });
            let frame = Frame::Event {
                seq: 1 + i,
                rank: 0,
                kind,
                loc: SourceLoc::new("flood.c", i as u32 + 1, &func),
            };
            if write_frame_with(reader.get_mut(), &frame, CodecKind::Json).is_err() {
                break; // evicted: the daemon closed the socket on us
            }
        }
        id
    });

    let workers: Vec<_> = traces
        .iter()
        .map(|(name, trace)| {
            let addr = addr.clone();
            let policy = policy.clone();
            let trace = trace.clone();
            let name = *name;
            thread::spawn(move || {
                let opts = SessionOpts::default();
                let (report, _) = client::submit_durable_tcp(&addr, &trace, &opts, &policy)
                    .unwrap_or_else(|e| panic!("{name}: submit under load failed: {e}"));
                report.to_json()
            })
        })
        .collect();

    let flooder_id = flooder.join().expect("flooder thread");
    let under_load: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // The slowloris is idle-salvaged (degraded report), never shed.
    let report = match next_frame_within(&mut slowloris, Duration::from_secs(10)) {
        Frame::Report { json } => SessionReport::from_json(&json).unwrap(),
        other => panic!("slowloris expected a salvage report, got {other:?}"),
    };
    assert_eq!(report.confidence, Confidence::Degraded);
    assert_eq!(report.events_ingested, 1);

    // Only the flooder was shed, and the accountant never saw the fleet
    // above the ceiling.
    assert!(
        wait_until(|| !registry.shed_log().is_empty(), Duration::from_secs(10)),
        "the flooder was never shed"
    );
    assert!(!registry.shed_log().contains(&slowloris_id), "the slowloris must idle out, not shed");
    assert_eq!(registry.shed_log(), vec![flooder_id], "shed something other than the flooder");
    let f = registry.fleet();
    assert!(
        f.peak_accounted_bytes <= ceiling as u64,
        "accounting peaked at {} over the {} ceiling",
        f.peak_accounted_bytes,
        ceiling
    );
    for (i, (json, base)) in under_load.iter().zip(baseline.iter()).enumerate() {
        assert_eq!(json, base, "{}: report diverged under load", traces[i].0);
    }
    handle.shutdown();
    join.join().unwrap();
}

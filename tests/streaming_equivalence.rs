//! The streaming (online) checker must agree with the batch checker on
//! the entire bug suite — same findings on the buggy variants, silence on
//! the fixed ones — while keeping its buffer bounded.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::core::streaming::StreamingChecker;
use mc_checker::prelude::*;

fn keys(v: &[ConsistencyError]) -> Vec<String> {
    let mut k: Vec<String> = v.iter().map(|e| e.dedup_key()).collect();
    k.sort();
    k
}

#[test]
fn streaming_matches_batch_on_buggy_suite() {
    for (spec, body) in bugs::table2_cases() {
        if spec.nprocs > 8 {
            continue; // lockopts@64 is covered by the batch tests
        }
        let trace = trace_of(spec.nprocs, 5, body);
        let batch = AnalysisSession::new().run(&trace);
        let (streamed, _) = StreamingChecker::run_over(&trace);
        assert_eq!(
            keys(&streamed),
            keys(&batch.diagnostics),
            "{}: streaming and batch disagree",
            spec.name
        );
        assert!(!streamed.is_empty(), "{}: bug found while streaming", spec.name);
    }
}

#[test]
fn streaming_matches_batch_on_fixed_suite() {
    for (spec, body) in bugs::fixed_cases() {
        if spec.nprocs > 8 {
            continue;
        }
        let trace = trace_of(spec.nprocs, 5, body);
        let (streamed, _) = StreamingChecker::run_over(&trace);
        assert!(streamed.is_empty(), "{} (fixed) flagged by streaming", spec.name);
    }
}

#[test]
fn streaming_matches_batch_on_extension_cases() {
    for (spec, buggy, fixed) in bugs::extension_cases() {
        let trace = trace_of(spec.nprocs, 5, buggy);
        let batch = AnalysisSession::new().run(&trace);
        let (streamed, _) = StreamingChecker::run_over(&trace);
        assert_eq!(keys(&streamed), keys(&batch.diagnostics), "{}", spec.name);

        let trace = trace_of(spec.nprocs, 5, fixed);
        let (streamed, _) = StreamingChecker::run_over(&trace);
        assert!(streamed.is_empty(), "{} (fixed)", spec.name);
    }
}

#[test]
fn streaming_buffer_bounded_on_iterative_app() {
    // Jacobi runs many fence-bounded iterations; the streaming buffer
    // must stay well below the trace size.
    let trace = trace_of(4, 5, bugs::jacobi::fixed);
    let (_, stats) = StreamingChecker::run_over(&trace);
    assert!(stats.regions_flushed > 2);
    assert!(
        stats.peak_buffered < stats.total_events,
        "peak {} < total {}",
        stats.peak_buffered,
        stats.total_events
    );
}

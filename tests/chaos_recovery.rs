//! Durability under chaos: every bug archetype, streamed through a
//! fault-injecting TCP proxy, must still end with the exact report a
//! batch analysis produces — the durable client resumes through drops,
//! resets, partial writes, delays, and bit flips; the daemon parks and
//! recovers sessions instead of losing them. A journal damaged at an
//! arbitrary byte must come back through recovery degraded, never as a
//! panic or a silently different report.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::core::streaming::StreamingChecker;
use mc_checker::core::Confidence;
use mc_checker::prelude::*;
use mc_checker::serve::journal::{read_journal, FsyncPolicy, Journal};
use mc_checker::serve::proto::{write_frame_with, Frame, FrameReader, ProtoError, SessionOpts};
use mc_checker::serve::CodecKind;
use mc_checker::serve::{
    client, ChaosProxy, FaultKind, FaultSchedule, ServeConfig, Server, ServerHandle,
};
use mc_checker::types::Rank;
use proptest::prelude::*;
use std::fs;

/// These tests drive the protocol by hand; everything they send is
/// handshake/control traffic, which is always JSON on the wire.
fn write_frame(w: &mut impl std::io::Write, f: &Frame) -> std::io::Result<()> {
    write_frame_with(w, f, CodecKind::Json)
}

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

type BugBody = fn(&mut Proc);

/// The full bug gallery, as in `streaming_vs_batch.rs`.
fn archetypes() -> [(&'static str, u32, BugBody); 8] {
    [
        ("adlb", 4, bugs::adlb::buggy),
        ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
        ("bt_broadcast", 4, bugs::bt_broadcast::buggy),
        ("emulate", 4, bugs::emulate::buggy),
        ("jacobi", 4, bugs::jacobi::buggy),
        ("lockopts", 4, bugs::lockopts::buggy),
        ("pingpong", 2, bugs::pingpong::buggy),
        ("fig2c", 3, bugs::archetypes::fig2c),
    ]
}

fn start_server(cfg: ServeConfig) -> (String, ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle, join)
}

/// Daemon config for chaos runs: quick ticks, frequent acks, generous
/// resume grace (the client's retry budget decides, not the janitor).
fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(5),
        ack_interval: 8,
        resume_grace: Duration::from_secs(60),
        ..ServeConfig::default()
    }
}

/// Client policy for chaos runs: fast, deterministic backoff.
fn chaos_policy(seed: u64) -> client::RetryPolicy {
    client::RetryPolicy {
        retries: 12,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        reply_deadline: Duration::from_secs(10),
        jitter_seed: seed,
        throttle: None,
    }
}

/// Total client→server bytes of a durable submission — the space the
/// fault position is drawn from.
fn wire_len(trace: &Trace) -> u64 {
    client::encode_stream(&client::flatten_events(trace), 0, CodecKind::Json, 1)
        .iter()
        .map(|f| f.len() as u64)
        .sum()
}

/// Streams `trace` through a chaos proxy carrying `schedule` and asserts
/// the final report is exactly the batch report.
fn run_through_fault(name: &str, trace: &Trace, schedule: FaultSchedule, seed: u64) {
    let batch = AnalysisSession::new().run(trace).diagnostics;
    let (addr, handle, join) = start_server(chaos_cfg());
    let mut proxy = ChaosProxy::start(&addr, schedule).expect("start chaos proxy");

    let (report, stats) = client::submit_durable_tcp(
        proxy.addr(),
        trace,
        &SessionOpts::default(),
        &chaos_policy(seed),
    )
    .unwrap_or_else(|e| {
        panic!("{name}/{}/seed{seed}: durable submit failed: {e}", schedule.kind.name())
    });

    let tag = format!("{name}/{}/seed{seed} ({stats:?})", schedule.kind.name());
    assert_eq!(report.confidence, Confidence::Complete, "{tag}");
    assert_eq!(report.events_ingested, trace.total_events() as u64, "{tag}");
    assert_eq!(report.findings, batch, "{tag}: findings diverge from batch");
    let a = serde_json::to_string(&report.findings).unwrap();
    let b = serde_json::to_string(&batch).unwrap();
    assert_eq!(a, b, "{tag}: serialized findings diverge from batch");

    proxy.stop();
    handle.shutdown();
    join.join().unwrap();
}

/// Broad sweep: all 8 archetypes × all 5 fault kinds, one fixed seed
/// per combination. Every run must end batch-identical.
#[test]
fn every_archetype_survives_every_fault_kind() {
    for (i, (name, nprocs, body)) in archetypes().into_iter().enumerate() {
        let trace = trace_of(nprocs, 0xdead, body);
        let max_pos = wire_len(&trace);
        for (j, kind) in FaultKind::ALL.into_iter().enumerate() {
            let seed = (i * FaultKind::ALL.len() + j) as u64;
            let schedule = FaultSchedule::from_seed(seed, kind, max_pos);
            run_through_fault(name, &trace, schedule, seed);
        }
    }
}

/// Deep sweep: one archetype, every fault kind, 16 seeds each — the
/// fault lands at 16 different stream positions per kind.
#[test]
fn sixteen_seeds_per_fault_on_one_archetype() {
    let trace = trace_of(4, 0xdead, bugs::mpi3_queue::buggy as BugBody);
    let max_pos = wire_len(&trace);
    for kind in FaultKind::ALL {
        for seed in 0..16u64 {
            let schedule = FaultSchedule::from_seed(seed, kind, max_pos);
            run_through_fault("mpi3_queue", &trace, schedule, seed);
        }
    }
}

/// Sending the whole stream twice (duplicate seqs 0..n) is idempotent:
/// the daemon skips the duplicates and the report matches batch exactly.
#[test]
fn duplicate_resend_is_idempotent() {
    let trace = trace_of(4, 0xdead, bugs::emulate::buggy as BugBody);
    let batch = AnalysisSession::new().run(&trace).diagnostics;
    let (addr, handle, join) = start_server(chaos_cfg());

    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
    let mut reader = FrameReader::new(stream);
    let opts = SessionOpts { durable: true, ..SessionOpts::default() };
    write_frame(
        reader.get_mut(),
        &Frame::Hello { version: mc_checker::serve::PROTOCOL_VERSION, nprocs: 4, opts },
    )
    .unwrap();
    assert!(matches!(read_progress(&mut reader), Some(Frame::Welcome { .. })));

    let encoded = client::encode_stream(&client::flatten_events(&trace), 0, CodecKind::Json, 1);
    for round in 0..2 {
        for bytes in &encoded {
            use std::io::Write;
            reader.get_mut().write_all(bytes).unwrap();
        }
        let _ = round;
        drain_acks(&mut reader);
    }
    write_frame(reader.get_mut(), &Frame::Finish).unwrap();

    let report = loop {
        match read_progress(&mut reader) {
            Some(Frame::Report { json }) => {
                break mc_checker::serve::SessionReport::from_json(&json).unwrap()
            }
            Some(Frame::Ack { .. }) => {}
            Some(other) => panic!("unexpected frame {other:?}"),
            None => panic!("daemon closed before the report"),
        }
    };
    assert_eq!(report.events_ingested, trace.total_events() as u64, "duplicates must be skipped");
    assert_eq!(report.confidence, Confidence::Complete);
    assert_eq!(report.findings, batch);
    handle.shutdown();
    join.join().unwrap();
}

/// Reads the next frame, waiting through idle timeouts (bounded).
fn read_progress<R: std::io::Read>(reader: &mut FrameReader<R>) -> Option<Frame> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match reader.next_frame() {
            Ok(f) => return f,
            Err(ProtoError::Idle) => {
                assert!(Instant::now() < deadline, "no frame within 10s");
            }
            Err(e) => panic!("protocol error: {e}"),
        }
    }
}

/// Discards buffered `Ack`s until the socket goes idle.
fn drain_acks<R: std::io::Read>(reader: &mut FrameReader<R>) {
    loop {
        match reader.next_frame() {
            Ok(Some(Frame::Ack { .. })) => {}
            Ok(Some(other)) => panic!("unexpected frame while draining acks: {other:?}"),
            Ok(None) => return,
            Err(ProtoError::Idle) => return,
            Err(e) => panic!("protocol error: {e}"),
        }
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mcc-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// The crash story end to end, in process: a durable session streams
/// half its events against daemon A (journaling with fsync=always), the
/// connection dies, daemon A shuts down entirely; daemon B recovers the
/// session from the journal directory, the client resumes by sequence
/// number, and the final report is byte-identical to batch.
#[test]
fn daemon_restart_recovers_journal_and_report_matches_batch() {
    let trace = trace_of(4, 0xdead, bugs::mpi3_queue::buggy as BugBody);
    let batch = AnalysisSession::new().run(&trace).diagnostics;
    let dir = tmpdir("restart");
    let cfg = |recover| ServeConfig {
        journal_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Always,
        recover,
        ..chaos_cfg()
    };

    // --- Daemon A: stream the first half, then vanish. ---
    let server_a = Server::bind("127.0.0.1:0", cfg(false)).unwrap();
    let addr_a = server_a.local_addr().to_string();
    let registry_a = server_a.registry();
    let handle_a = server_a.handle();
    let join_a = thread::spawn(move || server_a.run().expect("serve loop A"));

    let encoded = client::encode_stream(&client::flatten_events(&trace), 0, CodecKind::Json, 1);
    let half = encoded.len() / 2;
    let session_id;
    {
        let stream = TcpStream::connect(&addr_a).unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let mut reader = FrameReader::new(stream);
        let opts = SessionOpts { durable: true, ..SessionOpts::default() };
        write_frame(
            reader.get_mut(),
            &Frame::Hello { version: mc_checker::serve::PROTOCOL_VERSION, nprocs: 4, opts },
        )
        .unwrap();
        session_id = match read_progress(&mut reader) {
            Some(Frame::Welcome { session, .. }) => session,
            other => panic!("expected Welcome, got {other:?}"),
        };
        use std::io::Write;
        for bytes in &encoded[..half] {
            reader.get_mut().write_all(bytes).unwrap();
        }
        reader.get_mut().flush().unwrap();
        // Wait for an ack so the daemon has provably ingested (and, at
        // fsync=always, journaled) a prefix.
        let acked = match read_progress(&mut reader) {
            Some(Frame::Ack { through }) => through,
            Some(other) => panic!("unexpected frame {other:?}"),
            None => panic!("daemon closed mid-stream"),
        };
        assert!(acked > 0, "daemon must have acked a prefix");
        // Drop the connection abruptly, mid-session.
    }

    // The dead connection parks the durable session...
    let parked = wait_until(|| registry_a.parked_count() == 1, Duration::from_secs(5));
    assert!(parked, "durable session must park on disconnect");
    // ...and then the whole daemon dies.
    handle_a.shutdown();
    join_a.join().unwrap();

    // --- Daemon B: recover from the journal, serve the resume. ---
    let server_b = Server::bind("127.0.0.1:0", cfg(true)).unwrap();
    let addr_b = server_b.local_addr().to_string();
    let registry_b = server_b.registry();
    assert_eq!(registry_b.parked_count(), 1, "recovery must re-park the journaled session");
    let handle_b = server_b.handle();
    let join_b = thread::spawn(move || server_b.run().expect("serve loop B"));

    let stream = TcpStream::connect(&addr_b).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
    let mut reader = FrameReader::new(stream);
    write_frame(reader.get_mut(), &Frame::Resume { session: session_id, from_seq: 0 }).unwrap();
    assert!(matches!(read_progress(&mut reader), Some(Frame::Welcome { .. })));
    let through = match read_progress(&mut reader) {
        Some(Frame::Ack { through }) => through,
        other => panic!("expected resume Ack, got {other:?}"),
    };
    assert!(through > 0, "recovered session must remember its progress");
    assert!(through <= half as u64);
    {
        use std::io::Write;
        for bytes in &encoded[through as usize..] {
            reader.get_mut().write_all(bytes).unwrap();
        }
        reader.get_mut().flush().unwrap();
    }
    drain_acks(&mut reader);
    write_frame(reader.get_mut(), &Frame::Finish).unwrap();
    let report = loop {
        match read_progress(&mut reader) {
            Some(Frame::Report { json }) => {
                break mc_checker::serve::SessionReport::from_json(&json).unwrap()
            }
            Some(Frame::Ack { .. }) => {}
            Some(other) => panic!("unexpected frame {other:?}"),
            None => panic!("daemon B closed before the report"),
        }
    };

    assert_eq!(report.confidence, Confidence::Complete);
    assert_eq!(report.events_ingested, trace.total_events() as u64);
    assert_eq!(report.findings, batch, "recovered report diverges from batch");
    let a = serde_json::to_string(&report.findings).unwrap();
    let b = serde_json::to_string(&batch).unwrap();
    assert_eq!(a, b, "recovered report not byte-identical to batch");

    // The delivered session's journal is retired from disk.
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("session-"))
        .collect();
    assert!(leftovers.is_empty(), "journal must be retired after delivery: {leftovers:?}");

    handle_b.shutdown();
    join_b.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// A session whose journal finished before the crash is recovered as a
/// retired report: a resume gets the full report without resending.
#[test]
fn finished_journal_recovers_to_a_retired_report() {
    let trace = trace_of(2, 0xdead, bugs::pingpong::buggy as BugBody);
    let batch = AnalysisSession::new().run(&trace).diagnostics;
    let dir = tmpdir("retired");

    // Write a complete journal by hand — Open, every event, Finish.
    let opts = SessionOpts { durable: true, ..SessionOpts::default() };
    let mut j = Journal::create(&dir, 7, 2, &opts, 0, FsyncPolicy::Never).unwrap();
    let mut seq = 0u64;
    let mut idx = vec![0usize; trace.nprocs()];
    let mut remaining = trace.total_events();
    while remaining > 0 {
        for (r, ix) in idx.iter_mut().enumerate() {
            if *ix < trace.procs[r].events.len() {
                let ev = &trace.procs[r].events[*ix];
                j.append_event(seq, r as u32, &ev.kind, &trace.procs[r].loc(ev.loc)).unwrap();
                seq += 1;
                *ix += 1;
                remaining -= 1;
            }
        }
    }
    j.append_finish().unwrap();
    drop(j);

    let cfg = ServeConfig { journal_dir: Some(dir.clone()), recover: true, ..chaos_cfg() };
    let (addr, handle, join) = start_server(cfg);
    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
    let mut reader = FrameReader::new(stream);
    write_frame(reader.get_mut(), &Frame::Resume { session: 7, from_seq: 0 }).unwrap();
    assert!(matches!(read_progress(&mut reader), Some(Frame::Welcome { .. })));
    let report = loop {
        match read_progress(&mut reader) {
            Some(Frame::Report { json }) => {
                break mc_checker::serve::SessionReport::from_json(&json).unwrap()
            }
            Some(Frame::Ack { .. }) => {}
            Some(other) => panic!("unexpected frame {other:?}"),
            None => panic!("daemon closed before the report"),
        }
    };
    assert_eq!(report.confidence, Confidence::Complete);
    assert_eq!(report.findings, batch, "recovered finished session diverges from batch");

    handle.shutdown();
    join.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// Resuming a session nobody knows draws `Gone`, and the durable client
/// is expected to fall back to a fresh submission (which the retry loop
/// does; here we check the frame itself).
#[test]
fn resume_of_unknown_session_draws_gone() {
    let (addr, handle, join) = start_server(chaos_cfg());
    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
    let mut reader = FrameReader::new(stream);
    write_frame(reader.get_mut(), &Frame::Resume { session: 999, from_seq: 0 }).unwrap();
    assert!(matches!(read_progress(&mut reader), Some(Frame::Gone { session: 999 })));
    handle.shutdown();
    join.join().unwrap();
}

fn wait_until(mut f: impl FnMut() -> bool, timeout: Duration) -> bool {
    let start = Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() >= timeout {
            return false;
        }
        thread::sleep(Duration::from_millis(25));
    }
}

/// Writes an UNFINISHED journal of the adlb bug (the crash-recovery
/// workhorse case) and returns its path plus the events written.
fn written_journal(tag: &str) -> (PathBuf, PathBuf, usize) {
    let dir = tmpdir(tag);
    let trace = trace_of(2, 5, bugs::adlb::buggy as BugBody);
    let opts = SessionOpts { durable: true, ..SessionOpts::default() };
    let mut j = Journal::create(&dir, 3, 2, &opts, 0, FsyncPolicy::Never).unwrap();
    let mut seq = 0u64;
    let mut idx = vec![0usize; trace.nprocs()];
    let mut remaining = trace.total_events();
    while remaining > 0 {
        for (r, ix) in idx.iter_mut().enumerate() {
            if *ix < trace.procs[r].events.len() {
                let ev = &trace.procs[r].events[*ix];
                j.append_event(seq, r as u32, &ev.kind, &trace.procs[r].loc(ev.loc)).unwrap();
                seq += 1;
                *ix += 1;
                remaining -= 1;
            }
        }
    }
    let path = j.path().to_path_buf();
    drop(j);
    (dir, path, seq as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite (d): truncate the session journal at ANY byte; the
    /// tolerant reader must return a clean prefix — no panic, dense
    /// seqs from 0 — and replaying it through the streaming checker in
    /// degraded mode must not panic either.
    #[test]
    fn journal_truncated_anywhere_recovers_a_prefix(cut in 0usize..4000) {
        let (dir, path, written) = written_journal("prop-cut");
        let data = fs::read(&path).unwrap();
        let cut = cut.min(data.len());
        fs::write(&path, &data[..cut]).unwrap();

        let rs = read_journal(&path).expect("tolerant read of a truncated journal");
        prop_assert!(rs.events.len() <= written);
        prop_assert!(!rs.finished, "an unfinished journal cannot read as finished");
        for (i, (seq, ..)) in rs.events.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64, "recovered seqs must be dense from 0");
        }

        let mut checker = StreamingChecker::new(rs.nprocs as usize).expect("rebuild checker");
        checker
            .replay(rs.events.into_iter().map(|(_, r, k, l)| (Rank(r), k, l)))
            .expect("replay never fails on a clean prefix");
        let _findings = checker.finish_degraded(); // must not panic
        fs::remove_dir_all(&dir).ok();
    }

    /// Satellite (d): flip ANY bit of the journal; recovery must come
    /// back Salvaged/Degraded or as a clean shorter prefix — never a
    /// panic, and never events past the corruption.
    #[test]
    fn journal_bit_flip_never_panics_recovery(pos in 0usize..4000, bit in 0u8..8) {
        let (dir, path, written) = written_journal("prop-flip");
        let mut data = fs::read(&path).unwrap();
        let pos = pos % data.len();
        data[pos] ^= 1 << bit;
        fs::write(&path, &data).unwrap();

        // The reader either stops at the corrupt record (clean prefix)
        // or rejects the file; both are fine, a panic is not.
        if let Ok(rs) = read_journal(&path) {
            prop_assert!(rs.events.len() <= written);
            for (i, (seq, ..)) in rs.events.iter().enumerate() {
                prop_assert_eq!(*seq, i as u64, "recovered seqs must be dense from 0");
            }
            let mut checker = StreamingChecker::new(rs.nprocs.max(1) as usize).expect("rebuild checker");
            checker
                .replay(rs.events.into_iter().map(|(_, r, k, l)| (Rank(r), k, l)))
                .expect("replay never fails on a clean prefix");
            let _ = checker.finish_degraded();
        }
        fs::remove_dir_all(&dir).ok();
    }
}

/// Recovery over a directory holding a damaged journal must not panic
/// the daemon at startup — the damaged session parks with whatever clean
/// prefix survived, or is skipped entirely.
#[test]
fn recover_over_damaged_directory_never_panics() {
    let (dir, path, _written) = written_journal("damaged-dir");
    let mut data = fs::read(&path).unwrap();
    let mid = data.len() / 2;
    data.truncate(mid.max(1));
    data[mid / 2] ^= 0x40;
    fs::write(&path, &data).unwrap();

    let cfg = ServeConfig { journal_dir: Some(dir.clone()), recover: true, ..chaos_cfg() };
    let server = Server::bind("127.0.0.1:0", cfg).expect("recovery must tolerate damage");
    let registry: Arc<_> = server.registry();
    assert!(registry.parked_count() <= 1);
    drop(server);
    let _ = fs::remove_dir_all(&dir);
}

/// The failure-aware pipeline through the crash story: a *rank-failure*
/// session (the `pingpong_reexpose` recovery workload) streams durably,
/// daemon A dies mid-session, daemon B recovers the journal and serves
/// the resume. The recovered report must carry `recovered` confidence
/// and be byte-identical to an uninterrupted daemon run and to batch.
#[test]
fn daemon_restart_preserves_a_rank_failure_report() {
    use mc_checker::apps::bugs::{recovery_gallery, trace_under_faults};

    let (spec, faults, body) = recovery_gallery::gallery().remove(1);
    assert_eq!(spec.name, "pingpong_reexpose");
    let (trace, error) = trace_under_faults(spec.nprocs, 11, faults(), body);
    assert!(error.is_none(), "survivable failure is not an error");
    let batch = AnalysisSession::new().run(&trace);
    assert_eq!(batch.confidence, Confidence::Recovered);

    // Uninterrupted daemon run, for the byte-identity baseline.
    let (addr0, handle0, join0) = start_server(chaos_cfg());
    let (uninterrupted, _stats) = client::submit_durable_tcp(
        &addr0,
        &trace,
        &SessionOpts { durable: true, ..SessionOpts::default() },
        &chaos_policy(0),
    )
    .expect("uninterrupted submit");
    handle0.shutdown();
    join0.join().unwrap();
    assert_eq!(uninterrupted.confidence, Confidence::Recovered, "session verdict is recovered");
    assert_eq!(uninterrupted.findings, batch.diagnostics);

    let dir = tmpdir("rankfail-restart");
    // The gallery trace is small; ack every other event so a provably
    // journaled prefix exists before the daemon dies.
    let cfg = |recover| ServeConfig {
        journal_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Always,
        recover,
        ack_interval: 2,
        ..chaos_cfg()
    };

    // --- Daemon A: stream the first half, then vanish mid-recovery. ---
    let server_a = Server::bind("127.0.0.1:0", cfg(false)).unwrap();
    let addr_a = server_a.local_addr().to_string();
    let registry_a = server_a.registry();
    let handle_a = server_a.handle();
    let join_a = thread::spawn(move || server_a.run().expect("serve loop A"));

    let encoded = client::encode_stream(&client::flatten_events(&trace), 0, CodecKind::Json, 1);
    let half = encoded.len() / 2;
    let session_id;
    {
        let stream = TcpStream::connect(&addr_a).unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let mut reader = FrameReader::new(stream);
        let opts = SessionOpts { durable: true, ..SessionOpts::default() };
        write_frame(
            reader.get_mut(),
            &Frame::Hello {
                version: mc_checker::serve::PROTOCOL_VERSION,
                nprocs: spec.nprocs,
                opts,
            },
        )
        .unwrap();
        session_id = match read_progress(&mut reader) {
            Some(Frame::Welcome { session, .. }) => session,
            other => panic!("expected Welcome, got {other:?}"),
        };
        use std::io::Write;
        for bytes in &encoded[..half] {
            reader.get_mut().write_all(bytes).unwrap();
        }
        reader.get_mut().flush().unwrap();
        let acked = match read_progress(&mut reader) {
            Some(Frame::Ack { through }) => through,
            Some(other) => panic!("unexpected frame {other:?}"),
            None => panic!("daemon closed mid-stream"),
        };
        assert!(acked > 0, "daemon must have acked a prefix");
    }
    assert!(
        wait_until(|| registry_a.parked_count() == 1, Duration::from_secs(5)),
        "durable session must park on disconnect"
    );
    handle_a.shutdown();
    join_a.join().unwrap();

    // --- Daemon B: recover, resume, finish. ---
    let server_b = Server::bind("127.0.0.1:0", cfg(true)).unwrap();
    let addr_b = server_b.local_addr().to_string();
    assert_eq!(server_b.registry().parked_count(), 1);
    let handle_b = server_b.handle();
    let join_b = thread::spawn(move || server_b.run().expect("serve loop B"));

    let stream = TcpStream::connect(&addr_b).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
    let mut reader = FrameReader::new(stream);
    write_frame(reader.get_mut(), &Frame::Resume { session: session_id, from_seq: 0 }).unwrap();
    assert!(matches!(read_progress(&mut reader), Some(Frame::Welcome { .. })));
    let through = match read_progress(&mut reader) {
        Some(Frame::Ack { through }) => through,
        other => panic!("expected resume Ack, got {other:?}"),
    };
    {
        use std::io::Write;
        for bytes in &encoded[through as usize..] {
            reader.get_mut().write_all(bytes).unwrap();
        }
        reader.get_mut().flush().unwrap();
    }
    drain_acks(&mut reader);
    write_frame(reader.get_mut(), &Frame::Finish).unwrap();
    let report = loop {
        match read_progress(&mut reader) {
            Some(Frame::Report { json }) => {
                break mc_checker::serve::SessionReport::from_json(&json).unwrap()
            }
            Some(Frame::Ack { .. }) => {}
            Some(other) => panic!("unexpected frame {other:?}"),
            None => panic!("daemon B closed before the report"),
        }
    };

    assert_eq!(report.confidence, Confidence::Recovered, "recovered session verdict");
    assert_eq!(report.events_ingested, trace.total_events() as u64);
    assert_eq!(
        report.to_json(),
        uninterrupted.to_json(),
        "rank-failure report must be byte-identical across the daemon restart"
    );
    let a = serde_json::to_string(&report.findings).unwrap();
    let b = serde_json::to_string(&batch.diagnostics).unwrap();
    assert_eq!(a, b, "recovered report not byte-identical to batch");

    handle_b.shutdown();
    join_b.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

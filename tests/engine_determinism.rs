//! Determinism of the sharded conflict engine: the `CheckReport` JSON must
//! be byte-identical at every thread count, on every bug archetype, in
//! both complete and degraded mode, and must match the naive engine.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::prelude::*;
use mc_checker::profiler::{read_trace_dir_tolerant, stream_trace_dir};
use std::fs;

type BugBody = fn(&mut Proc);

/// Every bug archetype in `crates/apps/src/bugs`, at a small scale.
fn archetype_traces() -> Vec<(&'static str, Trace)> {
    let cases: [(&'static str, u32, BugBody); 8] = [
        ("adlb", 4, bugs::adlb::buggy),
        ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
        ("bt_broadcast", 4, bugs::bt_broadcast::buggy),
        ("emulate", 4, bugs::emulate::buggy),
        ("jacobi", 4, bugs::jacobi::buggy),
        ("lockopts", 4, bugs::lockopts::buggy),
        ("pingpong", 2, bugs::pingpong::buggy),
        ("fig2c", 3, bugs::archetypes::fig2c),
    ];
    cases.iter().map(|&(name, n, body)| (name, trace_of(n, 0xdead, body))).collect()
}

#[test]
fn report_json_identical_across_thread_counts() {
    for (name, trace) in archetype_traces() {
        let baseline = AnalysisSession::builder().threads(1).build().run(&trace).to_json();
        assert!(baseline.contains("\"schema_version\": 1"), "{name}");
        for threads in [2usize, 4] {
            let got = AnalysisSession::builder().threads(threads).build().run(&trace).to_json();
            assert_eq!(got, baseline, "{name}: JSON diverged at {threads} threads");
        }
    }
}

#[test]
fn sweep_matches_naive_on_every_archetype() {
    for (name, trace) in archetype_traces() {
        let sweep = AnalysisSession::builder().threads(4).build().run(&trace);
        let naive = AnalysisSession::builder().engine(Engine::Naive).build().run(&trace);
        assert_eq!(sweep.to_json(), naive.to_json(), "{name}: sweep and naive engines disagree");
    }
}

#[test]
fn degraded_report_json_identical_across_thread_counts() {
    // Damage the on-disk trace (truncate one rank mid-line), read it back
    // tolerantly, and require byte-identical degraded reports at every
    // thread count.
    for (name, trace) in archetype_traces() {
        let dir =
            std::env::temp_dir().join(format!("mcc-it-engine-det-{name}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        stream_trace_dir(&trace, &dir).unwrap();
        let victim = dir.join("rank-1.jsonl");
        let data = fs::read(&victim).unwrap();
        fs::write(&victim, &data[..data.len() / 2]).unwrap();
        let (damaged, health) = read_trace_dir_tolerant(&dir).unwrap();
        assert!(!health.is_complete(), "{name}");
        fs::remove_dir_all(&dir).ok();

        let report_at = |threads: usize| {
            let mut report = AnalysisSession::builder()
                .threads(threads)
                .tolerate_truncation(true)
                .build()
                .run(&damaged);
            report.mark_degraded();
            report.to_json()
        };
        let baseline = report_at(1);
        for threads in [2usize, 4] {
            assert_eq!(
                report_at(threads),
                baseline,
                "{name}: degraded JSON diverged at {threads} threads"
            );
        }
    }
}

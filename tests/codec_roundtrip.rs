//! The codec contract, end to end: every wire frame and journal record
//! survives both codecs unchanged, damaged binary input always comes
//! back as a typed error (never a panic, never a silently wrong value),
//! the daemon produces byte-identical reports whichever codec carried
//! the events, and journals written by the JSON-only builds replay —
//! including into `mcc serve --recover` — without any flag.

use std::sync::OnceLock;
use std::time::Duration;

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::codec::{decode_auto, encode_with, CodecKind};
use mc_checker::prelude::*;
use mc_checker::serve::client::{self, SubmitCfg};
use mc_checker::serve::journal::{read_journal, JournalRecord};
use mc_checker::serve::proto::{
    decode_frame, encode_frame_with, EventBatch, Frame, ProtoError, SessionOpts,
};
use mc_checker::serve::{ServeConfig, Server, ServerHandle};
use mc_checker::types::{EventKind, SourceLoc};
use proptest::prelude::*;

type BugBody = fn(&mut Proc);

/// Every bug archetype in `crates/apps/src/bugs`, at a small scale.
fn archetypes() -> [(&'static str, u32, BugBody); 8] {
    [
        ("adlb", 4, bugs::adlb::buggy),
        ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
        ("bt_broadcast", 4, bugs::bt_broadcast::buggy),
        ("emulate", 4, bugs::emulate::buggy),
        ("jacobi", 4, bugs::jacobi::buggy),
        ("lockopts", 4, bugs::lockopts::buggy),
        ("pingpong", 2, bugs::pingpong::buggy),
        ("fig2c", 3, bugs::archetypes::fig2c),
    ]
}

/// Real events from the gallery — far more representative input for the
/// codecs than hand-built values, since every `EventKind` shape a bug
/// archetype produces shows up here.
fn event_pool() -> &'static Vec<(u32, EventKind, SourceLoc)> {
    static POOL: OnceLock<Vec<(u32, EventKind, SourceLoc)>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut pool = Vec::new();
        for (_, nprocs, body) in archetypes() {
            pool.extend(client::flatten_events(&trace_of(nprocs, 0xdead, body)));
        }
        pool
    })
}

fn arb_event() -> impl Strategy<Value = (u32, EventKind, SourceLoc)> {
    (0..event_pool().len()).prop_map(|i| event_pool()[i].clone())
}

fn arb_batch() -> impl Strategy<Value = EventBatch> {
    (0..u32::MAX as u64, proptest::collection::vec(arb_event(), 0..12)).prop_map(
        |(first_seq, events)| {
            let mut b = EventBatch::new(first_seq);
            for (rank, kind, loc) in events {
                b.push(rank, kind, &loc);
            }
            b
        },
    )
}

fn arb_opts() -> impl Strategy<Value = SessionOpts> {
    (1..8u32, 0..4096u32, 0..2u8, 0..2u8).prop_map(|(threads, max_buffered, durable, gov)| {
        SessionOpts { threads, max_buffered, durable: durable == 1, governance: gov == 1 }
    })
}

/// Every `Frame` variant.
fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0..9u32, 0..64u32, arb_opts()).prop_map(|(version, nprocs, opts)| Frame::Hello {
            version,
            nprocs,
            opts
        }),
        (0..9u32, 0..u64::MAX, 0..3usize).prop_map(|(version, session, caps)| {
            Frame::Welcome {
                version,
                session,
                capabilities: (0..caps).map(|i| format!("cap{i}")).collect(),
            }
        }),
        (0..u64::MAX, arb_event()).prop_map(|(seq, (rank, kind, loc))| Frame::Event {
            seq,
            rank,
            kind,
            loc
        }),
        arb_batch().prop_map(Frame::Batch),
        Just(Frame::Finish),
        Just(Frame::Stats),
        Just(Frame::Metrics),
        (0..u64::MAX).prop_map(|through| Frame::Ack { through }),
        (0..u64::MAX, 0..u64::MAX)
            .prop_map(|(session, from_seq)| Frame::Resume { session, from_seq }),
        (0..u64::MAX).prop_map(|session| Frame::Gone { session }),
        (0..100u32).prop_map(|i| Frame::MetricsReport { text: format!("mcc_x {i}\n") }),
        (0..100u32).prop_map(|i| Frame::Report { json: format!("{{\"i\":{i}}}") }),
        (0..100u32).prop_map(|i| Frame::StatsReport { json: format!("{{\"n\":{i}}}") }),
        (0..100u32).prop_map(|i| Frame::Error { message: format!("refused #{i}") }),
    ]
}

/// Every `JournalRecord` variant.
fn arb_journal_record() -> impl Strategy<Value = JournalRecord> {
    prop_oneof![
        (0..u64::MAX, 1..64u32, arb_opts(), 0..4096u32).prop_map(|(session, nprocs, opts, cap)| {
            JournalRecord::Open { session, nprocs, opts, cap }
        }),
        (0..u64::MAX, arb_event()).prop_map(|(seq, (rank, kind, loc))| JournalRecord::Event {
            seq,
            rank,
            kind,
            loc
        }),
        arb_batch().prop_map(JournalRecord::Batch),
        Just(JournalRecord::Finish),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every frame decodes back to itself from either codec's bytes,
    /// with the auto-detecting decoder (the one the daemon runs).
    #[test]
    fn frames_round_trip_through_both_codecs(frame in arb_frame()) {
        for kind in [CodecKind::Json, CodecKind::Binary] {
            let payload = encode_with(kind, &frame);
            let back: Frame = decode_auto(&payload)
                .unwrap_or_else(|e| panic!("{kind} payload failed to decode: {e}"));
            prop_assert_eq!(&back, &frame, "codec {}", kind);
        }
    }

    /// Same contract for everything the WAL can hold.
    #[test]
    fn journal_records_round_trip_through_both_codecs(rec in arb_journal_record()) {
        for kind in [CodecKind::Json, CodecKind::Binary] {
            let payload = encode_with(kind, &rec);
            let back: JournalRecord = decode_auto(&payload)
                .unwrap_or_else(|e| panic!("{kind} payload failed to decode: {e}"));
            prop_assert_eq!(&back, &rec, "codec {}", kind);
        }
    }

    /// A torn (truncated) binary batch frame is a typed error or a
    /// "need more bytes" answer — never a panic, never a wrong frame.
    #[test]
    fn torn_binary_batches_error_out_typed(batch in arb_batch(), cut_back in 1usize..64) {
        let bytes = encode_frame_with(&Frame::Batch(batch), CodecKind::Binary);
        let cut = bytes.len().saturating_sub(cut_back);
        match decode_frame(&bytes[..cut]) {
            Err(ProtoError::Truncated { .. } | ProtoError::Malformed(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error type: {e}"),
            Ok(_) => prop_assert!(false, "a torn frame must not decode"),
        }
    }

    /// A bit-flipped binary batch frame is caught — by the CRC in the
    /// frame header, or (for raw payload bytes) by the binary decoder's
    /// own validation. Either way: typed error, no panic.
    #[test]
    fn bit_flipped_binary_batches_error_out_typed(
        batch in arb_batch(),
        pos in 0..usize::MAX,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_frame_with(&Frame::Batch(batch), CodecKind::Binary);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        match decode_frame(&bytes) {
            Ok(_) | Err(_) => {} // decoding may legitimately still succeed
        }
        // Raw payload damage (no CRC shield) must still come back typed.
        let payload = &bytes[8..];
        let _ = decode_auto::<Frame>(payload);
    }
}

// ---------------------------------------------------------------------------
// Cross-codec end-to-end equality
// ---------------------------------------------------------------------------

fn start_server(cfg: ServeConfig) -> (String, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle, join)
}

const JSON_CFG: SubmitCfg = SubmitCfg { batch_size: 1, prefer_binary: false };
const BINARY_CFG: SubmitCfg = SubmitCfg { batch_size: 64, prefer_binary: true };

/// The whole gallery, submitted twice to the same daemon — once over
/// per-event JSON frames, once over binary batches. The returned
/// reports must be byte-identical.
#[test]
fn gallery_reports_are_byte_identical_across_codecs() {
    let (addr, handle, join) = start_server(ServeConfig::default());
    for (name, nprocs, body) in archetypes() {
        let trace = trace_of(nprocs, 0xdead, body);
        let opts = SessionOpts::default();
        let (json_report, json_info) =
            client::submit_tcp_cfg(&addr, &trace, &opts, &JSON_CFG).expect("json submit");
        let (bin_report, bin_info) =
            client::submit_tcp_cfg(&addr, &trace, &opts, &BINARY_CFG).expect("binary submit");
        assert_eq!(json_info.codec, CodecKind::Json, "{name}");
        assert_eq!(bin_info.codec, CodecKind::Binary, "{name}: server offers binary");
        assert!(
            bin_info.bytes_sent < json_info.bytes_sent,
            "{name}: binary batches must be smaller ({} vs {} bytes)",
            bin_info.bytes_sent,
            json_info.bytes_sent
        );
        assert_eq!(
            json_report.to_json(),
            bin_report.to_json(),
            "{name}: reports must be byte-identical across codecs"
        );
    }
    handle.shutdown();
    join.join().expect("server thread");
}

/// A binary-preferring client against a `--no-binary` daemon falls back
/// to JSON cleanly — same session flow, same report.
#[test]
fn binary_client_falls_back_against_a_json_only_server() {
    let (addr, handle, join) =
        start_server(ServeConfig { no_binary: true, ..ServeConfig::default() });
    let trace = trace_of(2, 0xdead, bugs::pingpong::buggy);
    let opts = SessionOpts::default();
    let (fallback_report, info) =
        client::submit_tcp_cfg(&addr, &trace, &opts, &BINARY_CFG).expect("fallback submit");
    assert_eq!(info.codec, CodecKind::Json, "no `binary` capability → JSON");
    let (json_report, _) =
        client::submit_tcp_cfg(&addr, &trace, &opts, &JSON_CFG).expect("json submit");
    assert_eq!(fallback_report.to_json(), json_report.to_json());
    handle.shutdown();
    join.join().expect("server thread");
}

// ---------------------------------------------------------------------------
// The committed old-format fixture journal
// ---------------------------------------------------------------------------

/// Bytes written by the JSON-only journal format of earlier builds:
/// an unfinished durable pingpong session, 6 events in.
fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/session-7.mccj")
}

#[test]
fn committed_json_journal_replays_without_a_flag() {
    let replay = read_journal(&fixture_path()).expect("old journal replays");
    assert_eq!(replay.session, 7);
    assert_eq!(replay.events.len(), 6);
    assert!(!replay.finished, "fixture is an unfinished session");
    assert!(!replay.torn);
    // The replayed prefix is exactly the pingpong stream's head.
    let expected = client::flatten_events(&trace_of(2, 0xdead, bugs::pingpong::buggy));
    for (i, (seq, rank, kind, loc)) in replay.events.iter().enumerate() {
        assert_eq!(*seq, i as u64);
        assert_eq!((*rank, kind, loc), (expected[i].0, &expected[i].1, &expected[i].2));
    }
}

/// `mcc serve --recover` on a journal dir holding the old-format
/// fixture parks the session for resume — no migration, no flag.
#[test]
fn committed_json_journal_recovers_into_a_parked_session() {
    let dir = std::env::temp_dir().join(format!("mcc-fixture-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(fixture_path(), dir.join("session-7.mccj")).unwrap();
    let cfg = ServeConfig {
        journal_dir: Some(dir.clone()),
        recover: true,
        resume_grace: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    assert_eq!(server.registry().parked_count(), 1, "fixture session is parked, resumable");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));
    handle.shutdown();
    join.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end tests of `mcc explore`'s engine: deterministic reports at
//! every thread count, witness replay, ground truth over the bug
//! gallery, and deadlock-bearing schedules recorded instead of hung.

use mc_checker::apps::bugs;
use mc_checker::explore::{Explorer, Verdict};
use mc_checker::prelude::*;
use std::time::Duration;

/// A program whose behaviour genuinely depends on the delivery decision:
/// under eager delivery rank 0 sees the flag and exits cleanly; under
/// at-close delivery it reads a stale 0 and waits on a barrier rank 1
/// never joins — a schedule-dependent deadlock.
fn conditional_barrier(p: &mut Proc) {
    let flag = p.alloc_i32s(1);
    if p.rank() == 1 {
        p.poke_i32(flag, 1);
    }
    let win = p.win_create(flag, 4, CommId::WORLD);
    p.barrier(CommId::WORLD);
    let mut seen = 1;
    if p.rank() == 0 {
        let dst = p.alloc_i32s(1);
        p.win_lock(LockKind::Shared, 1, win);
        p.get(dst, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
        // Eager delivery: 1. At-close: still 0 — the get completes only
        // at the unlock below.
        seen = p.peek_i32(dst);
        p.win_unlock(1, win);
    }
    p.win_free(win);
    if p.rank() == 0 && seen == 0 {
        p.barrier(CommId::WORLD); // rank 1 has already exited: abandoned
    }
}

/// Hides the panic backtraces of force-unblocked ranks in the deadlock
/// tests, restoring the previous hook afterwards.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn reports_byte_identical_across_thread_counts() {
    for (name, body) in [
        ("fig2a", bugs::archetypes::fig2a as fn(&mut Proc)),
        ("ping-pong buggy", bugs::pingpong::buggy),
        ("ping-pong fixed", bugs::pingpong::fixed),
    ] {
        let json: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&t| Explorer::new(2).with_threads(t).run(body).to_json())
            .collect();
        assert_eq!(json[0], json[1], "{name}: 1 vs 2 threads");
        assert_eq!(json[0], json[2], "{name}: 1 vs 4 threads");
        assert!(json[0].contains("\"schema_version\""), "{name}: report document");
    }
}

/// A gallery case: name, process count, body.
type GalleryCase = (&'static str, u32, fn(&mut Proc));

#[test]
fn gallery_ground_truth_under_exploration() {
    let buggy: [GalleryCase; 4] = [
        ("fig2a", 2, bugs::archetypes::fig2a),
        ("fig2d", 2, bugs::archetypes::fig2d),
        ("ping-pong", 2, bugs::pingpong::buggy),
        ("emulate", 2, bugs::emulate::buggy),
    ];
    for (name, nprocs, body) in buggy {
        let report = Explorer::new(nprocs).run(body);
        assert!(report.first_buggy.is_some(), "{name}: the bug must surface in some schedule");
        assert!(report.has_errors(), "{name}: error-severity findings expected");
        assert_eq!(report.exit_code(), 1, "{name}");
        let witness = &report.findings[0].witness;
        assert!(!witness.is_empty(), "{name}: finding carries its witness");
    }
    let fixed: [GalleryCase; 2] =
        [("ping-pong", 2, bugs::pingpong::fixed), ("emulate", 2, bugs::emulate::fixed)];
    for (name, nprocs, body) in fixed {
        let report = Explorer::new(nprocs).run(body);
        assert_eq!(report.first_buggy, None, "{name} (fixed): no buggy schedule");
        assert!(!report.has_errors(), "{name} (fixed)");
        assert!(!report.exhausted, "{name} (fixed): the space must be covered, not cut");
        assert_eq!(report.exit_code(), 0, "{name} (fixed)");
        assert!(
            report.render().contains("no consistency error in any"),
            "{name} (fixed): exhaustive verdict rendered"
        );
    }
}

#[test]
fn witness_replay_reproduces_the_finding() {
    let report = Explorer::new(2).run(bugs::archetypes::fig2a);
    let finding = &report.findings[0];
    let outcome = Explorer::new(2).replay(&finding.witness, bugs::archetypes::fig2a).unwrap();
    assert_eq!(outcome.witness, finding.witness, "replay follows the witness exactly");
    assert!(outcome.sim_error.is_none());
    let keys: Vec<String> = outcome.findings.iter().map(|e| e.dedup_key()).collect();
    assert!(
        keys.contains(&finding.error.dedup_key()),
        "replayed schedule reproduces the explored finding: {keys:?}"
    );
}

#[test]
fn deadlocking_schedule_is_recorded_with_witness() {
    let report = quiet_panics(|| {
        Explorer::new(2).with_watchdog(Duration::from_millis(300)).run(conditional_barrier)
    });
    let deadlocked: Vec<_> =
        report.schedules.iter().filter(|s| s.verdict == Verdict::Deadlock).collect();
    assert_eq!(deadlocked.len(), 1, "exactly the at-close schedule hangs: {report:?}");
    assert_eq!(deadlocked[0].witness, "c/-", "the hanging decision vector is recorded");
    assert!(deadlocked[0].note.is_some(), "the simulator's deadlock verdict is kept");
    assert!(
        report.schedules.iter().any(|s| s.verdict == Verdict::Clean && s.witness == "e/-"),
        "the eager sibling schedule completes cleanly: {report:?}"
    );
    assert!(!report.has_errors(), "a deadlock is not a memory consistency error");
    assert!(!report.exhausted, "both schedules of the single choice point were visited");
}

#[test]
fn deadlock_under_budget_one_exits_seven() {
    let report = quiet_panics(|| {
        Explorer::new(2)
            .with_watchdog(Duration::from_millis(300))
            .with_max_schedules(1)
            .run(conditional_barrier)
    });
    assert_eq!(report.schedules.len(), 1);
    assert_eq!(report.schedules[0].verdict, Verdict::Deadlock);
    assert!(report.exhausted, "the eager sibling was never tried");
    assert_eq!(report.exit_code(), 7, "budget exhausted without errors is the documented 7");
}

//! Integration tests for the MPI-3 RMA extension (the paper's §V: the
//! analysis carries over to the MPI-3 one-sided model given its ordering
//! relations and ruleset). Covers lock_all epochs, flush consistency
//! order, request-based operations, and the atomics' accumulate-class
//! semantics — within an epoch and across processes.

use mc_checker::prelude::*;

fn scaffold(p: &mut Proc, counter_init: i32) -> (u64, WinId) {
    p.set_func("mpi3");
    let buf = p.alloc_i32s(4);
    p.poke_i32(buf, counter_init);
    let win = p.win_create(buf, 16, CommId::WORLD);
    p.barrier(CommId::WORLD);
    (buf, win)
}

fn check(nprocs: u32, body: impl Fn(&mut Proc) + Send + Sync) -> CheckReport {
    let result =
        run(SimConfig::new(nprocs).with_seed(9).with_delivery(DeliveryPolicy::AtClose), body)
            .unwrap();
    AnalysisSession::new().run(&result.trace.unwrap())
}

#[test]
fn concurrent_same_op_atomics_are_clean() {
    // Every rank fetch_and_ops the shared counter concurrently under
    // lock_all — the flagship pattern MPI-3 atomics exist for.
    let report = check(4, |p| {
        let (_buf, win) = scaffold(p, 0);
        let one = p.alloc_i32s(1);
        p.tstore_i32(one, 1);
        let old = p.alloc_i32s(1);
        p.win_lock_all(win);
        p.fetch_and_op(one, old, DatatypeId::INT, 0, 0, ReduceOp::Sum, win);
        p.win_unlock_all(win);
        p.barrier(CommId::WORLD);
        p.win_free(win);
    });
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
}

#[test]
fn atomic_vs_put_across_processes_conflicts() {
    let report = check(3, |p| {
        let (_buf, win) = scaffold(p, 0);
        let src = p.alloc_i32s(1);
        p.tstore_i32(src, 1);
        if p.rank() == 1 {
            let old = p.alloc_i32s(1);
            p.win_lock_all(win);
            p.fetch_and_op(src, old, DatatypeId::INT, 0, 0, ReduceOp::Sum, win);
            p.win_unlock_all(win);
        } else if p.rank() == 2 {
            p.win_lock_all(win);
            p.put(src, 1, DatatypeId::INT, 0, 0, 1, DatatypeId::INT, win);
            p.win_unlock_all(win);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    });
    assert!(report.has_errors());
    let e = report.errors().next().unwrap();
    let ops = [e.a.op.as_str(), e.b.op.as_str()];
    assert!(ops.contains(&"MPI_Fetch_and_op") && ops.contains(&"MPI_Put"), "{ops:?}");
    assert!(matches!(e.scope, ErrorScope::CrossProcess { target: Rank(0), .. }));
}

#[test]
fn mixed_op_atomics_conflict_across_processes() {
    // SUM vs PROD atomics on the same cell are NON-OV.
    let report = check(3, |p| {
        let (_buf, win) = scaffold(p, 1);
        let src = p.alloc_i32s(1);
        p.tstore_i32(src, 2);
        let old = p.alloc_i32s(1);
        if p.rank() > 0 {
            let op = if p.rank() == 1 { ReduceOp::Sum } else { ReduceOp::Prod };
            p.win_lock_all(win);
            p.fetch_and_op(src, old, DatatypeId::INT, 0, 0, op, win);
            p.win_unlock_all(win);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    });
    assert!(report.has_errors(), "{}", report.render());
}

#[test]
fn flush_orders_get_before_read() {
    // get; flush; load — the MPI-3 idiom that fixes the emulate bug
    // without closing the epoch.
    let report = check(2, |p| {
        let (_buf, win) = scaffold(p, 7);
        if p.rank() == 0 {
            let out = p.alloc_i32s(1);
            p.win_lock_all(win);
            p.get(out, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            p.win_flush(1, win);
            let v = p.tload_i32(out); // safe: the flush completed the get
            p.tstore_i32(out, v + 1);
            p.win_unlock_all(win);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    });
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
}

#[test]
fn missing_flush_is_detected() {
    let report = check(2, |p| {
        let (_buf, win) = scaffold(p, 7);
        if p.rank() == 0 {
            let out = p.alloc_i32s(1);
            p.win_lock_all(win);
            p.get(out, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            let _ = p.tload_i32(out); // races with the pending get
            p.win_unlock_all(win);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    });
    assert!(report.has_errors());
    let e = report.errors().next().unwrap();
    assert_eq!(e.a.op, "MPI_Get");
    assert_eq!(e.b.op, "load");
}

#[test]
fn flush_all_separates_sub_epochs() {
    // Two puts to the same location, separated by flush_all: ordered.
    let report = check(2, |p| {
        let (_buf, win) = scaffold(p, 0);
        if p.rank() == 0 {
            let src = p.alloc_i32s(1);
            p.tstore_i32(src, 5);
            p.win_lock_all(win);
            p.put(src, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            p.win_flush_all(win);
            p.put(src, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            p.win_unlock_all(win);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    });
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
}

#[test]
fn unflushed_double_put_conflicts() {
    let report = check(2, |p| {
        let (_buf, win) = scaffold(p, 0);
        if p.rank() == 0 {
            let src = p.alloc_i32s(1);
            let src2 = p.alloc_i32s(1);
            p.tstore_i32(src, 5);
            p.tstore_i32(src2, 6);
            p.win_lock_all(win);
            p.put(src, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            p.put(src2, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            p.win_unlock_all(win);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    });
    assert!(report.has_errors(), "{}", report.render());
}

#[test]
fn compare_and_swap_election_is_clean() {
    // The classic CAS leader election: everyone CASes the same slot.
    let report = check(4, |p| {
        let (_buf, win) = scaffold(p, -1);
        let me = p.alloc_i32s(1);
        p.tstore_i32(me, p.rank() as i32);
        let expect = p.alloc_i32s(1);
        p.tstore_i32(expect, -1);
        let old = p.alloc_i32s(1);
        p.win_lock_all(win);
        p.compare_and_swap(me, expect, old, DatatypeId::INT, 0, 0, win);
        p.win_unlock_all(win);
        p.barrier(CommId::WORLD);
        p.win_free(win);
    });
    assert_eq!(report.diagnostics.len(), 0, "CAS vs CAS is atomic: {}", report.render());
}

#[test]
fn request_ops_with_wait_are_clean_across_rounds() {
    let report = check(2, |p| {
        let (_buf, win) = scaffold(p, 3);
        if p.rank() == 0 {
            let dst = p.alloc_i32s(1);
            p.win_lock_all(win);
            for _ in 0..3 {
                let req = p.rget(dst, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
                p.wait_req(req);
                let _ = p.tload_i32(dst);
            }
            p.win_unlock_all(win);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    });
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
}

#[test]
fn streaming_checker_handles_mpi3_traces() {
    use mc_checker::core::streaming::StreamingChecker;
    let result = run(SimConfig::new(2).with_seed(9).with_delivery(DeliveryPolicy::AtClose), |p| {
        let (_buf, win) = scaffold(p, 7);
        if p.rank() == 0 {
            let out = p.alloc_i32s(1);
            p.win_lock_all(win);
            p.get(out, 1, DatatypeId::INT, 1, 0, 1, DatatypeId::INT, win);
            let _ = p.tload_i32(out); // bug
            p.win_unlock_all(win);
        }
        p.barrier(CommId::WORLD);
        p.win_free(win);
    })
    .unwrap();
    let trace = result.trace.unwrap();
    let batch = AnalysisSession::new().run(&trace);
    let (streamed, _) = StreamingChecker::run_over(&trace);
    assert_eq!(streamed.len(), batch.diagnostics.len());
    assert!(!streamed.is_empty());
}

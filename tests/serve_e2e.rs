//! End-to-end tests of the checker daemon: concurrent sessions over real
//! sockets, batch-equivalent reports, handshake rejection, bounded-memory
//! degradation, and salvage of sessions that die mid-stream — with the
//! supervisor's `STATS` verb proving no session ever leaks.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::core::Confidence;
use mc_checker::prelude::*;
use mc_checker::serve::proto::{
    write_frame_with, Frame, FrameReader, SessionOpts, PROTOCOL_VERSION,
};
use mc_checker::serve::CodecKind;
use mc_checker::serve::{client, ServeConfig, Server, ServerHandle};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

/// These tests drive the protocol by hand; everything they send is
/// handshake/control traffic, which is always JSON on the wire.
fn write_frame(w: &mut impl std::io::Write, f: &Frame) -> std::io::Result<()> {
    write_frame_with(w, f, CodecKind::Json)
}

/// Starts an in-process daemon with test-friendly timeouts; returns its
/// address and a shutdown handle (the server thread joins on drop of the
/// test, via shutdown).
fn start_server(cfg: ServeConfig) -> (String, ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle, join)
}

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    }
}

/// Reads the integer value of `"key":N` out of a stats document.
fn json_field(stats: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = stats.find(&needle)? + needle.len();
    let digits: String = stats[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn wait_until(mut f: impl FnMut() -> bool, timeout: Duration) -> bool {
    let start = Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() >= timeout {
            return false;
        }
        thread::sleep(Duration::from_millis(25));
    }
}

/// The acceptance scenario: six concurrent client sessions — buggy and
/// clean mixed — each receiving exactly the findings a batch
/// `AnalysisSession` produces over its trace, all `Complete`.
#[test]
fn concurrent_sessions_each_get_their_batch_report() {
    type BugBody = fn(&mut Proc);
    let cases: [(&'static str, u32, BugBody); 6] = [
        ("emulate", 4, bugs::emulate::buggy),
        ("emulate-fixed", 4, bugs::emulate::fixed),
        ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
        ("jacobi-fixed", 4, bugs::jacobi::fixed),
        ("adlb", 4, bugs::adlb::buggy),
        ("pingpong", 2, bugs::pingpong::buggy),
    ];
    let (addr, handle, join) = start_server(quick_cfg());

    let workers: Vec<_> = cases
        .iter()
        .map(|&(name, nprocs, body)| {
            let addr = addr.clone();
            thread::spawn(move || {
                let trace = trace_of(nprocs, 0xdead, body);
                let batch = AnalysisSession::new().run(&trace).diagnostics;
                let report = client::submit_tcp(&addr, &trace, &SessionOpts::default())
                    .unwrap_or_else(|e| panic!("{name}: submit failed: {e}"));
                assert_eq!(report.confidence, Confidence::Complete, "{name}");
                assert_eq!(report.findings, batch, "{name}: daemon diverged from batch");
                assert_eq!(report.events_ingested, trace.total_events() as u64, "{name}");
                (name, report.findings.len())
            })
        })
        .collect();
    let mut buggy_with_findings = 0;
    for w in workers {
        let (name, n) = w.join().expect("client thread");
        if !name.ends_with("-fixed") {
            assert!(n > 0, "{name}: buggy case must produce findings");
            buggy_with_findings += 1;
        } else {
            assert_eq!(n, 0, "{name}: fixed case must be clean");
        }
    }
    assert_eq!(buggy_with_findings, 4);

    let stats = client::stats_tcp(&addr).expect("stats");
    assert_eq!(json_field(&stats, "sessions_active"), Some(0), "{stats}");
    assert_eq!(json_field(&stats, "sessions_completed"), Some(6), "{stats}");
    assert_eq!(json_field(&stats, "sessions_salvaged"), Some(0), "{stats}");
    handle.shutdown();
    join.join().unwrap();
}

/// A client killed mid-stream is salvaged: the supervisor ends the
/// session as salvaged (never leaked) and counts its events.
#[test]
fn killed_session_is_salvaged_not_leaked() {
    let (addr, handle, join) = start_server(quick_cfg());

    {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = FrameReader::new(stream);
        write_frame(
            reader.get_mut(),
            &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 2, opts: SessionOpts::default() },
        )
        .unwrap();
        assert!(matches!(reader.next_frame().unwrap(), Some(Frame::Welcome { .. })));
        for rank in 0..2u32 {
            write_frame(
                reader.get_mut(),
                &Frame::Event {
                    seq: rank as u64,
                    rank,
                    kind: mc_checker::types::EventKind::Barrier { comm: CommId::WORLD },
                    loc: mc_checker::types::SourceLoc::unknown(),
                },
            )
            .unwrap();
        }
        // Drop the connection with the stream unfinished — a dead client.
    }

    let salvaged = wait_until(
        || {
            let stats = client::stats_tcp(&addr).expect("stats");
            json_field(&stats, "sessions_active") == Some(0)
                && json_field(&stats, "sessions_salvaged") == Some(1)
        },
        Duration::from_secs(5),
    );
    let stats = client::stats_tcp(&addr).expect("stats");
    assert!(salvaged, "session neither salvaged nor reaped: {stats}");
    assert_eq!(json_field(&stats, "events_ingested"), Some(2), "{stats}");
    handle.shutdown();
    join.join().unwrap();
}

/// A session that goes silent is idle-timed-out; the daemon pushes a
/// degraded report before closing, and the registry records a salvage.
#[test]
fn idle_session_receives_degraded_report() {
    let (addr, handle, join) = start_server(quick_cfg());

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = FrameReader::new(stream);
    write_frame(
        reader.get_mut(),
        &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1, opts: SessionOpts::default() },
    )
    .unwrap();
    assert!(matches!(reader.next_frame().unwrap(), Some(Frame::Welcome { .. })));
    write_frame(
        reader.get_mut(),
        &Frame::Event {
            seq: 0,
            rank: 0,
            kind: mc_checker::types::EventKind::Barrier { comm: CommId::WORLD },
            loc: mc_checker::types::SourceLoc::unknown(),
        },
    )
    .unwrap();
    // ... and then say nothing until the idle timeout fires.
    let report = match reader.next_frame().expect("daemon pushes a report before closing") {
        Some(Frame::Report { json }) => mc_checker::serve::SessionReport::from_json(&json).unwrap(),
        Some(other) => panic!("unexpected frame {other:?}"),
        None => panic!("connection closed without a salvage report"),
    };
    assert_eq!(report.confidence, Confidence::Degraded);
    assert_eq!(report.events_ingested, 1);

    let stats = client::stats_tcp(&addr).expect("stats");
    assert_eq!(json_field(&stats, "sessions_active"), Some(0), "{stats}");
    assert_eq!(json_field(&stats, "sessions_salvaged"), Some(1), "{stats}");
    handle.shutdown();
    join.join().unwrap();
}

/// Bad handshakes get an `Error` frame, not a dropped connection, and are
/// counted as rejections — zero ranks, absurd rank counts, and version
/// mismatches alike.
#[test]
fn bad_hellos_are_answered_with_error_frames() {
    let (addr, handle, join) = start_server(quick_cfg());

    let hellos = [
        Frame::Hello { version: PROTOCOL_VERSION, nprocs: 0, opts: SessionOpts::default() },
        Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1 << 20, opts: SessionOpts::default() },
        Frame::Hello { version: PROTOCOL_VERSION + 7, nprocs: 2, opts: SessionOpts::default() },
    ];
    for hello in hellos {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = FrameReader::new(stream);
        write_frame(reader.get_mut(), &hello).unwrap();
        match reader.next_frame().unwrap() {
            Some(Frame::Error { message }) => {
                assert!(!message.is_empty(), "refusal must say why");
            }
            other => panic!("expected an Error frame for {hello:?}, got {other:?}"),
        }
    }
    let stats = client::stats_tcp(&addr).expect("stats");
    assert_eq!(json_field(&stats, "hellos_rejected"), Some(3), "{stats}");
    assert_eq!(json_field(&stats, "sessions_active"), Some(0), "{stats}");
    handle.shutdown();
    join.join().unwrap();
}

/// A tiny per-session buffer cap degrades the report instead of letting
/// the daemon buffer without bound.
#[test]
fn hard_buffer_cap_degrades_instead_of_buffering_unboundedly() {
    let cfg = ServeConfig { hard_watermark: 4, ..quick_cfg() };
    let (addr, handle, join) = start_server(cfg);

    let trace = trace_of(2, 0xdead, bugs::emulate::buggy);
    let report = client::submit_tcp(&addr, &trace, &SessionOpts::default()).expect("submit");
    assert_eq!(report.confidence, Confidence::Degraded);
    assert!(report.evictions >= 1, "the cap must have forced an eviction");
    assert!(report.peak_buffered <= 4, "peak {} exceeds the cap", report.peak_buffered);
    for f in &report.findings {
        assert_eq!(f.confidence, Confidence::Degraded);
    }
    handle.shutdown();
    join.join().unwrap();
}

/// Serializes tests that install a process-global recorder: the client
/// reads `mcc_obs::global()` when deciding whether to stamp a session
/// with a trace context, so two tests swapping it concurrently would
/// race.
static GLOBAL_OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The cross-process tracing acceptance path, in-process: a client with
/// an enabled recorder stamps its session, and the daemon's
/// `serve.session` span exports `remoteTrace`/`remoteParent` pointing at
/// the client's trace id and `client.submit` span id — exactly what
/// `mcc trace-merge` rewrites into a parent edge.
#[test]
fn trace_context_links_daemon_session_to_client_span() {
    let _serialize = GLOBAL_OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server_obs = RecorderHandle::enabled();
    let cfg = ServeConfig { recorder: server_obs.clone(), ..quick_cfg() };
    let (addr, handle, join) = start_server(cfg);

    let client_obs = RecorderHandle::enabled();
    mc_checker::obs::set_global(client_obs.clone());
    let trace = trace_of(2, 0xdead, bugs::pingpong::buggy);
    let report = client::submit_tcp(&addr, &trace, &SessionOpts::default()).expect("submit");
    mc_checker::obs::set_global(RecorderHandle::disabled());
    assert_eq!(report.confidence, Confidence::Complete);

    let trace_id = client_obs.trace_id().expect("the client must have stamped a trace id");
    let submit = client_obs
        .spans()
        .into_iter()
        .find(|s| s.name == "client.submit")
        .expect("the client records a client.submit span");

    handle.shutdown();
    join.join().unwrap();

    let daemon_trace = server_obs.to_chrome_trace();
    let link = format!("\"remoteTrace\":{trace_id},\"remoteParent\":{}", submit.id);
    assert!(
        daemon_trace.contains("\"name\":\"serve.session\""),
        "daemon trace must contain the session span: {daemon_trace}"
    );
    assert!(
        daemon_trace.contains(&link),
        "daemon trace must carry the remote link `{link}`: {daemon_trace}"
    );
}

/// Mixed-version safety, both directions. An opted-out (pre-tracectx)
/// server never announces the capability, so a new client stays silent
/// and the session completes; a client without a recorder (an old
/// build) sends nothing, and the daemon trace carries no remote links.
#[test]
fn tracectx_unaware_peers_round_trip_cleanly() {
    let _serialize = GLOBAL_OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // New client, opted-out server.
    let server_obs = RecorderHandle::enabled();
    let cfg = ServeConfig { no_tracectx: true, recorder: server_obs.clone(), ..quick_cfg() };
    let (addr, handle, join) = start_server(cfg);
    mc_checker::obs::set_global(RecorderHandle::enabled());
    let trace = trace_of(2, 0xdead, bugs::pingpong::buggy);
    let report = client::submit_tcp(&addr, &trace, &SessionOpts::default())
        .expect("a tracing client must interoperate with an opted-out server");
    mc_checker::obs::set_global(RecorderHandle::disabled());
    assert_eq!(report.confidence, Confidence::Complete);
    handle.shutdown();
    join.join().unwrap();
    assert!(
        !server_obs.to_chrome_trace().contains("remoteTrace"),
        "an opted-out server must not record remote links"
    );

    // Old client (no recorder installed), new server.
    let server_obs = RecorderHandle::enabled();
    let cfg = ServeConfig { recorder: server_obs.clone(), ..quick_cfg() };
    let (addr, handle, join) = start_server(cfg);
    let report = client::submit_tcp(&addr, &trace, &SessionOpts::default())
        .expect("a non-tracing client must interoperate with a tracing server");
    assert_eq!(report.confidence, Confidence::Complete);
    handle.shutdown();
    join.join().unwrap();
    assert!(
        !server_obs.to_chrome_trace().contains("remoteTrace"),
        "a silent client must leave no remote links"
    );
}

/// An opted-out server does not list `tracectx` in its `Welcome` and
/// refuses a `TraceCtx` frame the way a pre-tracectx build refuses any
/// unknown frame: with an `Error`, not a hang or a crash.
#[test]
fn opted_out_server_refuses_tracectx_frames() {
    let cfg = ServeConfig { no_tracectx: true, ..quick_cfg() };
    let (addr, handle, join) = start_server(cfg);

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = FrameReader::new(stream);
    write_frame(
        reader.get_mut(),
        &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 2, opts: SessionOpts::default() },
    )
    .unwrap();
    match reader.next_frame().unwrap() {
        Some(Frame::Welcome { capabilities, .. }) => {
            assert!(
                !capabilities.iter().any(|c| c == "tracectx"),
                "--no-tracectx must drop the capability, got {capabilities:?}"
            );
        }
        other => panic!("expected Welcome, got {other:?}"),
    }
    write_frame(reader.get_mut(), &Frame::TraceCtx { trace_id: 7, parent_span: 3 }).unwrap();
    match reader.next_frame().unwrap() {
        Some(Frame::Error { message }) => assert!(!message.is_empty()),
        other => panic!("expected an Error frame, got {other:?}"),
    }
    handle.shutdown();
    join.join().unwrap();
}

/// The `HEALTH` verb answers mid-session with a parseable snapshot whose
/// session gauges reflect the live registry.
#[test]
fn health_verb_reports_live_counters() {
    let (addr, handle, join) = start_server(quick_cfg());

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = FrameReader::new(stream);
    write_frame(
        reader.get_mut(),
        &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1, opts: SessionOpts::default() },
    )
    .unwrap();
    assert!(matches!(reader.next_frame().unwrap(), Some(Frame::Welcome { .. })));
    write_frame(reader.get_mut(), &Frame::Health).unwrap();
    let health = match reader.next_frame().unwrap() {
        Some(Frame::HealthReport { json }) => json,
        other => panic!("expected HealthReport, got {other:?}"),
    };
    let doc = serde_json::parse_value_str(&health).expect("health must be valid JSON");
    drop(doc);
    assert_eq!(json_field(&health, "schema_version"), Some(2), "{health}");
    assert!(health.contains("\"pressure\""), "v2 must carry the pressure section: {health}");
    assert!(health.contains("\"admission\""), "v2 must carry the admission section: {health}");
    assert!(
        health.contains("\"level\":\"normal\""),
        "an unconfigured ceiling reads as normal pressure: {health}"
    );
    let active = json_field(&health, "active").expect("active gauge");
    assert_eq!(active, 1, "this session itself must be counted: {health}");

    // The standalone client helper sees the same document shape.
    drop(reader);
    let via_client = client::health_tcp(&addr).expect("health over a dedicated connection");
    assert!(json_field(&via_client, "uptime_ms").is_some(), "{via_client}");
    handle.shutdown();
    join.join().unwrap();
}

/// The client may ask for a lower cap than the server's; the request is
/// honored, and the stats document remains parseable JSON throughout.
#[test]
fn client_requested_cap_and_stats_json_shape() {
    let (addr, handle, join) = start_server(quick_cfg());

    let trace = trace_of(2, 0xdead, bugs::emulate::buggy);
    let opts = SessionOpts { threads: 2, max_buffered: 4, ..SessionOpts::default() };
    let report = client::submit_tcp(&addr, &trace, &opts).expect("submit");
    assert_eq!(report.confidence, Confidence::Degraded);
    assert!(report.peak_buffered <= 4);

    let stats = client::stats_tcp(&addr).expect("stats");
    let parsed = serde_json::parse_value_str(&stats).expect("stats must be valid JSON");
    drop(parsed);
    handle.shutdown();
    join.join().unwrap();
}

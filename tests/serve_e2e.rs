//! End-to-end tests of the checker daemon: concurrent sessions over real
//! sockets, batch-equivalent reports, handshake rejection, bounded-memory
//! degradation, and salvage of sessions that die mid-stream — with the
//! supervisor's `STATS` verb proving no session ever leaks.

use mc_checker::apps::bugs::{self, trace_of};
use mc_checker::core::Confidence;
use mc_checker::prelude::*;
use mc_checker::serve::proto::{
    write_frame_with, Frame, FrameReader, SessionOpts, PROTOCOL_VERSION,
};
use mc_checker::serve::CodecKind;
use mc_checker::serve::{client, ServeConfig, Server, ServerHandle};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

/// These tests drive the protocol by hand; everything they send is
/// handshake/control traffic, which is always JSON on the wire.
fn write_frame(w: &mut impl std::io::Write, f: &Frame) -> std::io::Result<()> {
    write_frame_with(w, f, CodecKind::Json)
}

/// Starts an in-process daemon with test-friendly timeouts; returns its
/// address and a shutdown handle (the server thread joins on drop of the
/// test, via shutdown).
fn start_server(cfg: ServeConfig) -> (String, ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle, join)
}

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        tick: Duration::from_millis(20),
        idle_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    }
}

/// Reads the integer value of `"key":N` out of a stats document.
fn json_field(stats: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = stats.find(&needle)? + needle.len();
    let digits: String = stats[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn wait_until(mut f: impl FnMut() -> bool, timeout: Duration) -> bool {
    let start = Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() >= timeout {
            return false;
        }
        thread::sleep(Duration::from_millis(25));
    }
}

/// The acceptance scenario: six concurrent client sessions — buggy and
/// clean mixed — each receiving exactly the findings a batch
/// `AnalysisSession` produces over its trace, all `Complete`.
#[test]
fn concurrent_sessions_each_get_their_batch_report() {
    type BugBody = fn(&mut Proc);
    let cases: [(&'static str, u32, BugBody); 6] = [
        ("emulate", 4, bugs::emulate::buggy),
        ("emulate-fixed", 4, bugs::emulate::fixed),
        ("mpi3_queue", 4, bugs::mpi3_queue::buggy),
        ("jacobi-fixed", 4, bugs::jacobi::fixed),
        ("adlb", 4, bugs::adlb::buggy),
        ("pingpong", 2, bugs::pingpong::buggy),
    ];
    let (addr, handle, join) = start_server(quick_cfg());

    let workers: Vec<_> = cases
        .iter()
        .map(|&(name, nprocs, body)| {
            let addr = addr.clone();
            thread::spawn(move || {
                let trace = trace_of(nprocs, 0xdead, body);
                let batch = AnalysisSession::new().run(&trace).diagnostics;
                let report = client::submit_tcp(&addr, &trace, &SessionOpts::default())
                    .unwrap_or_else(|e| panic!("{name}: submit failed: {e}"));
                assert_eq!(report.confidence, Confidence::Complete, "{name}");
                assert_eq!(report.findings, batch, "{name}: daemon diverged from batch");
                assert_eq!(report.events_ingested, trace.total_events() as u64, "{name}");
                (name, report.findings.len())
            })
        })
        .collect();
    let mut buggy_with_findings = 0;
    for w in workers {
        let (name, n) = w.join().expect("client thread");
        if !name.ends_with("-fixed") {
            assert!(n > 0, "{name}: buggy case must produce findings");
            buggy_with_findings += 1;
        } else {
            assert_eq!(n, 0, "{name}: fixed case must be clean");
        }
    }
    assert_eq!(buggy_with_findings, 4);

    let stats = client::stats_tcp(&addr).expect("stats");
    assert_eq!(json_field(&stats, "sessions_active"), Some(0), "{stats}");
    assert_eq!(json_field(&stats, "sessions_completed"), Some(6), "{stats}");
    assert_eq!(json_field(&stats, "sessions_salvaged"), Some(0), "{stats}");
    handle.shutdown();
    join.join().unwrap();
}

/// A client killed mid-stream is salvaged: the supervisor ends the
/// session as salvaged (never leaked) and counts its events.
#[test]
fn killed_session_is_salvaged_not_leaked() {
    let (addr, handle, join) = start_server(quick_cfg());

    {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = FrameReader::new(stream);
        write_frame(
            reader.get_mut(),
            &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 2, opts: SessionOpts::default() },
        )
        .unwrap();
        assert!(matches!(reader.next_frame().unwrap(), Some(Frame::Welcome { .. })));
        for rank in 0..2u32 {
            write_frame(
                reader.get_mut(),
                &Frame::Event {
                    seq: rank as u64,
                    rank,
                    kind: mc_checker::types::EventKind::Barrier { comm: CommId::WORLD },
                    loc: mc_checker::types::SourceLoc::unknown(),
                },
            )
            .unwrap();
        }
        // Drop the connection with the stream unfinished — a dead client.
    }

    let salvaged = wait_until(
        || {
            let stats = client::stats_tcp(&addr).expect("stats");
            json_field(&stats, "sessions_active") == Some(0)
                && json_field(&stats, "sessions_salvaged") == Some(1)
        },
        Duration::from_secs(5),
    );
    let stats = client::stats_tcp(&addr).expect("stats");
    assert!(salvaged, "session neither salvaged nor reaped: {stats}");
    assert_eq!(json_field(&stats, "events_ingested"), Some(2), "{stats}");
    handle.shutdown();
    join.join().unwrap();
}

/// A session that goes silent is idle-timed-out; the daemon pushes a
/// degraded report before closing, and the registry records a salvage.
#[test]
fn idle_session_receives_degraded_report() {
    let (addr, handle, join) = start_server(quick_cfg());

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = FrameReader::new(stream);
    write_frame(
        reader.get_mut(),
        &Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1, opts: SessionOpts::default() },
    )
    .unwrap();
    assert!(matches!(reader.next_frame().unwrap(), Some(Frame::Welcome { .. })));
    write_frame(
        reader.get_mut(),
        &Frame::Event {
            seq: 0,
            rank: 0,
            kind: mc_checker::types::EventKind::Barrier { comm: CommId::WORLD },
            loc: mc_checker::types::SourceLoc::unknown(),
        },
    )
    .unwrap();
    // ... and then say nothing until the idle timeout fires.
    let report = match reader.next_frame().expect("daemon pushes a report before closing") {
        Some(Frame::Report { json }) => mc_checker::serve::SessionReport::from_json(&json).unwrap(),
        Some(other) => panic!("unexpected frame {other:?}"),
        None => panic!("connection closed without a salvage report"),
    };
    assert_eq!(report.confidence, Confidence::Degraded);
    assert_eq!(report.events_ingested, 1);

    let stats = client::stats_tcp(&addr).expect("stats");
    assert_eq!(json_field(&stats, "sessions_active"), Some(0), "{stats}");
    assert_eq!(json_field(&stats, "sessions_salvaged"), Some(1), "{stats}");
    handle.shutdown();
    join.join().unwrap();
}

/// Bad handshakes get an `Error` frame, not a dropped connection, and are
/// counted as rejections — zero ranks, absurd rank counts, and version
/// mismatches alike.
#[test]
fn bad_hellos_are_answered_with_error_frames() {
    let (addr, handle, join) = start_server(quick_cfg());

    let hellos = [
        Frame::Hello { version: PROTOCOL_VERSION, nprocs: 0, opts: SessionOpts::default() },
        Frame::Hello { version: PROTOCOL_VERSION, nprocs: 1 << 20, opts: SessionOpts::default() },
        Frame::Hello { version: PROTOCOL_VERSION + 7, nprocs: 2, opts: SessionOpts::default() },
    ];
    for hello in hellos {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = FrameReader::new(stream);
        write_frame(reader.get_mut(), &hello).unwrap();
        match reader.next_frame().unwrap() {
            Some(Frame::Error { message }) => {
                assert!(!message.is_empty(), "refusal must say why");
            }
            other => panic!("expected an Error frame for {hello:?}, got {other:?}"),
        }
    }
    let stats = client::stats_tcp(&addr).expect("stats");
    assert_eq!(json_field(&stats, "hellos_rejected"), Some(3), "{stats}");
    assert_eq!(json_field(&stats, "sessions_active"), Some(0), "{stats}");
    handle.shutdown();
    join.join().unwrap();
}

/// A tiny per-session buffer cap degrades the report instead of letting
/// the daemon buffer without bound.
#[test]
fn hard_buffer_cap_degrades_instead_of_buffering_unboundedly() {
    let cfg = ServeConfig { hard_watermark: 4, ..quick_cfg() };
    let (addr, handle, join) = start_server(cfg);

    let trace = trace_of(2, 0xdead, bugs::emulate::buggy);
    let report = client::submit_tcp(&addr, &trace, &SessionOpts::default()).expect("submit");
    assert_eq!(report.confidence, Confidence::Degraded);
    assert!(report.evictions >= 1, "the cap must have forced an eviction");
    assert!(report.peak_buffered <= 4, "peak {} exceeds the cap", report.peak_buffered);
    for f in &report.findings {
        assert_eq!(f.confidence, Confidence::Degraded);
    }
    handle.shutdown();
    join.join().unwrap();
}

/// The client may ask for a lower cap than the server's; the request is
/// honored, and the stats document remains parseable JSON throughout.
#[test]
fn client_requested_cap_and_stats_json_shape() {
    let (addr, handle, join) = start_server(quick_cfg());

    let trace = trace_of(2, 0xdead, bugs::emulate::buggy);
    let opts = SessionOpts { threads: 2, max_buffered: 4, durable: false };
    let report = client::submit_tcp(&addr, &trace, &opts).expect("submit");
    assert_eq!(report.confidence, Confidence::Degraded);
    assert!(report.peak_buffered <= 4);

    let stats = client::stats_tcp(&addr).expect("stats");
    let parsed = serde_json::parse_value_str(&stats).expect("stats must be valid JSON");
    drop(parsed);
    handle.shutdown();
    join.join().unwrap();
}
